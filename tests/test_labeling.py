"""Tests for the disk-labeling phase (Section 4.6)."""

import numpy as np
import pytest

from repro.core.labeling import ClusterLabeler, draw_labeling_sets
from repro.core.similarity import JaccardSimilarity, SimilarityTable
from repro.data.transactions import Transaction

CLUSTER_A = [Transaction({1, 2, 3}), Transaction({1, 2, 4}), Transaction({2, 3, 4})]
CLUSTER_B = [Transaction({7, 8, 9}), Transaction({7, 8, 10})]


@pytest.fixture
def labeler():
    return ClusterLabeler([CLUSTER_A, CLUSTER_B], theta=0.4)


class TestClusterLabeler:
    def test_neighbor_counts(self, labeler):
        counts = labeler.neighbor_counts(Transaction({1, 2, 5}))
        # {1,2,5} vs A members: j({1,2,3})=0.5, j({1,2,4})=0.5, j({2,3,4})=0.2
        assert counts.tolist() == [2, 0]

    def test_assign_to_cluster_with_most_normalised_neighbors(self, labeler):
        assert labeler.assign(Transaction({1, 2, 3, 4})) == 0
        assert labeler.assign(Transaction({7, 8})) == 1

    def test_no_neighbors_is_outlier(self, labeler):
        assert labeler.assign(Transaction({99})) == -1

    def test_normalisation_uses_li_size(self):
        """N_i / (|L_i| + 1)^f: with equal raw counts the smaller labeling
        set wins."""
        big = [Transaction({1, 2, i}) for i in range(3, 9)]
        small = [Transaction({1, 2, 10})]
        labeler = ClusterLabeler([big, small], theta=0.4)
        point = Transaction({1, 2})
        counts = labeler.neighbor_counts(point)
        # every rep contains {1,2}: jaccard 2/3 >= 0.4 everywhere
        assert counts.tolist() == [6, 1]
        scores = labeler.scores(point)
        assert scores[0] > scores[1]  # raw count dominates here
        assert labeler.assign(point) == 0

    def test_assign_all_streams(self, labeler):
        labels = labeler.assign_all(
            [Transaction({1, 2, 3}), Transaction({7, 8, 9}), Transaction({42})]
        )
        assert labels.tolist() == [0, 1, -1]

    def test_fast_path_matches_scalar_path(self):
        points = [Transaction(frozenset({i, i + 1, (i * 3) % 7})) for i in range(20)]
        fast = ClusterLabeler([CLUSTER_A, CLUSTER_B], theta=0.25)
        slow = ClusterLabeler(
            [CLUSTER_A, CLUSTER_B],
            theta=0.25,
            similarity=lambda a, b: JaccardSimilarity()(a, b),
        )
        assert slow.index is None
        assert fast.index is not None
        for p in points:
            assert fast.neighbor_counts(p).tolist() == slow.neighbor_counts(p).tolist()
            assert fast.assign(p) == slow.assign(p)

    def test_custom_similarity_table(self):
        table = SimilarityTable({("p", "a1"): 0.9, ("p", "b1"): 0.3})
        labeler = ClusterLabeler([["a1"], ["b1"]], theta=0.5, similarity=table)
        assert labeler.assign("p") == 0

    def test_point_with_items_outside_vocabulary(self, labeler):
        # items unseen in any labeling set only enlarge the union
        point = Transaction({1, 2, 3, 777, 888})
        counts = labeler.neighbor_counts(point)
        expected = sum(
            1 for rep in CLUSTER_A if JaccardSimilarity()(point, rep) >= 0.4
        )
        assert counts[0] == expected

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterLabeler([], theta=0.5)
        with pytest.raises(ValueError, match="non-empty"):
            ClusterLabeler([[]], theta=0.5)
        with pytest.raises(ValueError, match="non-empty"):
            ClusterLabeler([[], []], theta=0.5)
        with pytest.raises(ValueError, match="theta"):
            ClusterLabeler([[Transaction({1})]], theta=2.0)


class TestEmptyLabelingSet:
    """A cluster whose L_i drew zero points must never win an assignment.

    The normaliser for an empty set is ``(0+1)^f = 1`` -- its score is
    ``0 / 1 = 0``, never positive, so it can only "win" if every other
    cluster also scores 0, and that case is an outlier (-1) by
    definition."""

    def test_empty_set_is_never_assigned(self):
        labeler = ClusterLabeler([CLUSTER_A, []], theta=0.4)
        assert labeler.assign(Transaction({1, 2, 3})) == 0
        # a point nobody neighbors is an outlier, not a member of the
        # empty cluster
        assert labeler.assign(Transaction({99})) == -1

    def test_empty_set_scores_zero_not_spurious(self):
        labeler = ClusterLabeler([[], CLUSTER_B], theta=0.4)
        scores = labeler.scores(Transaction({7, 8, 9}))
        assert scores[0] == 0.0
        assert scores[1] > 0.0
        assert labeler.assign(Transaction({7, 8, 9})) == 1

    def test_empty_set_with_scalar_similarity_path(self):
        labeler = ClusterLabeler(
            [CLUSTER_A, []],
            theta=0.4,
            similarity=lambda a, b: JaccardSimilarity()(a, b),
        )
        assert labeler.index is None
        assert labeler.assign(Transaction({1, 2, 3})) == 0
        assert labeler.assign(Transaction({99})) == -1

    def test_assign_all_with_empty_set(self):
        labeler = ClusterLabeler([CLUSTER_A, [], CLUSTER_B], theta=0.4)
        labels = labeler.assign_all(
            [Transaction({1, 2, 3}), Transaction({7, 8, 9}), Transaction({42})]
        )
        assert labels.tolist() == [0, 2, -1]


class TestDrawLabelingSets:
    def test_fraction_and_min_points(self):
        points = [Transaction({i}) for i in range(20)]
        clusters = [list(range(12)), list(range(12, 20))]
        sets = draw_labeling_sets(clusters, points, fraction=0.25, rng=0)
        assert len(sets[0]) == 3
        assert len(sets[1]) == 2

    def test_min_points_floor(self):
        points = [Transaction({i}) for i in range(4)]
        sets = draw_labeling_sets([[0], [1, 2, 3]], points, fraction=0.1, rng=0)
        assert len(sets[0]) == 1
        assert len(sets[1]) == 1

    def test_representatives_come_from_their_cluster(self):
        points = [Transaction({i}) for i in range(10)]
        clusters = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        sets = draw_labeling_sets(clusters, points, fraction=0.6, rng=1)
        for cluster, li in zip(clusters, sets):
            member_items = {points[i].items for i in cluster}
            assert all(rep.items in member_items for rep in li)

    def test_deterministic(self):
        points = [Transaction({i}) for i in range(30)]
        clusters = [list(range(15)), list(range(15, 30))]
        a = draw_labeling_sets(clusters, points, rng=5)
        b = draw_labeling_sets(clusters, points, rng=5)
        assert [[r.items for r in li] for li in a] == [[r.items for r in li] for li in b]

    def test_validation(self):
        points = [Transaction({1})]
        with pytest.raises(ValueError, match="fraction"):
            draw_labeling_sets([[0]], points, fraction=0.0)
        with pytest.raises(ValueError, match="min_points"):
            draw_labeling_sets([[0]], points, min_points=0)
        with pytest.raises(ValueError, match="non-empty"):
            draw_labeling_sets([[]], points)
