"""Tests for the transaction data model."""

import numpy as np
import pytest

from repro.data.transactions import Transaction, TransactionDataset


class TestTransaction:
    def test_items_deduplicate(self):
        t = Transaction([1, 2, 2, 3])
        assert len(t) == 3
        assert t.items == frozenset({1, 2, 3})

    def test_equality_ignores_tid(self):
        assert Transaction([1, 2], tid="a") == Transaction([2, 1], tid="b")
        assert hash(Transaction([1, 2], tid="a")) == hash(Transaction([1, 2]))

    def test_equality_with_plain_sets(self):
        assert Transaction([1, 2]) == {1, 2}
        assert Transaction([1, 2]) == frozenset({1, 2})
        assert Transaction([1, 2]) != {1, 3}

    def test_membership_and_iteration(self):
        t = Transaction("abc")
        assert "a" in t
        assert "z" not in t
        assert sorted(t) == ["a", "b", "c"]

    def test_set_operations(self):
        a = Transaction([1, 2, 3])
        b = Transaction([2, 3, 4])
        assert a & b == {2, 3}
        assert a | b == {1, 2, 3, 4}

    def test_jaccard_example_1_1(self):
        # transactions (a) and (b) of Example 1.1 share 3 of 5 items
        a = Transaction([1, 2, 3, 5])
        b = Transaction([2, 3, 4, 5])
        assert a.jaccard(b) == pytest.approx(3 / 5)

    def test_jaccard_identical(self):
        t = Transaction([1, 2])
        assert t.jaccard(t) == 1.0

    def test_jaccard_disjoint(self):
        assert Transaction([1]).jaccard(Transaction([2])) == 0.0

    def test_jaccard_empty_pair_is_zero(self):
        assert Transaction([]).jaccard(Transaction([])) == 0.0

    def test_jaccard_accepts_plain_sets(self):
        assert Transaction([1, 2]).jaccard({1, 2, 3, 4}) == pytest.approx(0.5)


class TestTransactionDataset:
    def test_wraps_plain_iterables(self):
        ds = TransactionDataset([[1, 2], {2, 3}])
        assert isinstance(ds[0], Transaction)
        assert ds[1] == {2, 3}

    def test_vocabulary_is_sorted_union(self):
        ds = TransactionDataset([[3, 1], [2]])
        assert ds.vocabulary == [1, 2, 3]
        assert ds.n_items == 3

    def test_explicit_vocabulary_preserved(self):
        ds = TransactionDataset([[1]], vocabulary=[3, 1, 2])
        assert ds.vocabulary == [3, 1, 2]
        assert ds.item_index(3) == 0

    def test_explicit_vocabulary_rejects_unknown_items(self):
        with pytest.raises(ValueError, match="outside the vocabulary"):
            TransactionDataset([[1, 9]], vocabulary=[1, 2])

    def test_duplicate_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TransactionDataset([[1]], vocabulary=[1, 1])

    def test_indicator_matrix_example_1_1(self):
        # the paper's Example 1.1 boolean view of 4 transactions
        ds = TransactionDataset(
            [{1, 2, 3, 5}, {2, 3, 4, 5}, {1, 4}, {6}],
            vocabulary=[1, 2, 3, 4, 5, 6],
        )
        expected = np.array(
            [
                [1, 1, 1, 0, 1, 0],
                [0, 1, 1, 1, 1, 0],
                [1, 0, 0, 1, 0, 0],
                [0, 0, 0, 0, 0, 1],
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(ds.indicator_matrix(), expected)

    def test_indicator_matrix_cached(self):
        ds = TransactionDataset([[1, 2]])
        assert ds.indicator_matrix() is ds.indicator_matrix()

    def test_sizes(self):
        ds = TransactionDataset([[1, 2, 3], [4], []])
        assert ds.sizes().tolist() == [3, 1, 0]

    def test_subset_shares_vocabulary(self):
        ds = TransactionDataset([[1], [2], [3]])
        sub = ds.subset([0, 2])
        assert len(sub) == 2
        assert sub.vocabulary == ds.vocabulary
        assert sub[1] == {3}

    def test_slicing_returns_dataset(self):
        ds = TransactionDataset([[1], [2], [3]])
        sub = ds[1:]
        assert isinstance(sub, TransactionDataset)
        assert len(sub) == 2
        assert sub.vocabulary == ds.vocabulary

    def test_len_and_iteration(self):
        ds = TransactionDataset([[1], [2]])
        assert len(ds) == 2
        assert [t.items for t in ds] == [frozenset({1}), frozenset({2})]

    def test_mixed_unsortable_items_keep_insertion_order(self):
        ds = TransactionDataset([[1, "a"], ["b"]])
        assert set(ds.vocabulary) == {1, "a", "b"}
        assert ds.n_items == 3

    def test_empty_dataset(self):
        ds = TransactionDataset([])
        assert len(ds) == 0
        assert ds.vocabulary == []
        assert ds.indicator_matrix().shape == (0, 0)
