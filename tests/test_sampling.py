"""Tests for reservoir sampling (Section 4.6, [Vit85])."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import reservoir_sample, reservoir_sample_skip, sample_indices


@pytest.mark.parametrize("sampler", [reservoir_sample, reservoir_sample_skip])
class TestBothAlgorithms:
    def test_small_stream_returned_whole(self, sampler):
        sample, indices = sampler([10, 20, 30], 5, rng=0)
        assert sample == [10, 20, 30]
        assert indices == [0, 1, 2]

    def test_exact_size(self, sampler):
        sample, indices = sampler(range(1000), 50, rng=1)
        assert len(sample) == 50
        assert len(indices) == 50

    def test_indices_match_items(self, sampler):
        items = [f"row{i}" for i in range(200)]
        sample, indices = sampler(items, 20, rng=2)
        assert sample == [items[i] for i in indices]

    def test_indices_sorted_and_unique(self, sampler):
        _, indices = sampler(range(500), 40, rng=3)
        assert indices == sorted(set(indices))

    def test_deterministic_for_seed(self, sampler):
        a = sampler(range(300), 30, rng=42)
        b = sampler(range(300), 30, rng=42)
        assert a == b

    def test_works_with_generator_stream(self, sampler):
        stream = (i * i for i in range(100))
        sample, indices = sampler(stream, 10, rng=4)
        assert all(sample[k] == indices[k] ** 2 for k in range(10))

    def test_invalid_size(self, sampler):
        with pytest.raises(ValueError):
            sampler(range(10), 0)

    def test_accepts_random_instance(self, sampler):
        rng = random.Random(7)
        sample, _ = sampler(range(100), 5, rng=rng)
        assert len(sample) == 5

    def test_rough_uniformity(self, sampler):
        """Every element should be selected with probability s/n; check
        the empirical inclusion rates over many runs are within a loose
        band (both algorithms implement the same distribution)."""
        n, s, runs = 40, 10, 1500
        counts = Counter()
        for seed in range(runs):
            _, indices = sampler(range(n), s, rng=seed)
            counts.update(indices)
        expected = runs * s / n
        for i in range(n):
            assert abs(counts[i] - expected) < expected * 0.25, (
                f"element {i} selected {counts[i]} times, expected ~{expected}"
            )


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 50))
    def test_both_algorithms_return_valid_samples(self, n, s):
        a_sample, a_idx = reservoir_sample(range(n), s, rng=n * 31 + s)
        b_sample, b_idx = reservoir_sample_skip(range(n), s, rng=n * 31 + s)
        expected_size = min(n, s)
        assert len(a_sample) == len(b_sample) == expected_size
        assert all(0 <= i < n for i in a_idx)
        assert all(0 <= i < n for i in b_idx)

    def test_skip_inclusion_frequencies_match_algorithm_r(self):
        """Fixed-seed chi-square check that Algorithm X draws from the
        same per-index inclusion distribution as Algorithm R.

        Both algorithms must include every index with probability
        ``s/n``; beyond that, the two empirical inclusion-count vectors
        must be statistically indistinguishable.  The homogeneity
        statistic ``sum (x_i - r_i)^2 / (x_i + r_i)`` is approximately
        ``(1 - s/n) * chi2(n - 1)`` under the null (inclusions within a
        run are negatively correlated, which only shrinks it), so with
        ``n=20`` its mean is ~14 and 45 is far beyond the 99.9th
        percentile -- yet a few percent of systematic bias on a handful
        of indices blows well past it.  Seeds are fixed: deterministic,
        no flake budget.
        """
        n, s, trials = 20, 5, 3000
        x_counts = Counter()
        r_counts = Counter()
        for seed in range(trials):
            _, idx = reservoir_sample_skip(range(n), s, rng=seed)
            x_counts.update(idx)
            _, idx = reservoir_sample(range(n), s, rng=trials + seed)
            r_counts.update(idx)

        homogeneity = sum(
            (x_counts[i] - r_counts[i]) ** 2 / (x_counts[i] + r_counts[i])
            for i in range(n)
        )
        assert homogeneity < 45.0, f"chi-square statistic {homogeneity:.1f}"

        # and each algorithm individually matches the uniform s/n rate
        expected = trials * s / n
        for counts in (x_counts, r_counts):
            goodness = sum(
                (counts[i] - expected) ** 2 / expected for i in range(n)
            )
            assert goodness < 45.0, f"goodness-of-fit {goodness:.1f}"


class TestSampleIndices:
    def test_range_sample(self):
        indices = sample_indices(100, 10, rng=0)
        assert len(indices) == 10
        assert all(0 <= i < 100 for i in indices)

    def test_full_coverage_when_size_exceeds_n(self):
        assert sample_indices(5, 10, rng=0) == [0, 1, 2, 3, 4]
