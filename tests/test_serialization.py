"""Tests for JSON persistence of clustering results."""

import io
import json

import numpy as np
import pytest

from repro.core.dendrogram import Dendrogram
from repro.core.links import LinkTable
from repro.core.pipeline import RockPipeline
from repro.core.rock import cluster_with_links
from repro.core.serialization import (
    FORMAT_VERSION,
    load_result,
    pipeline_result_from_dict,
    pipeline_result_to_dict,
    rock_result_from_dict,
    rock_result_to_dict,
    save_result,
)
from repro.core.similarity import (
    JaccardSimilarity,
    LpSimilarity,
    MissingAwareJaccard,
    OverlapSimilarity,
    SimilarityTable,
    similarity_from_dict,
    similarity_to_dict,
)
from repro.data.transactions import Transaction, TransactionDataset


@pytest.fixture
def rock_result():
    table = LinkTable(5)
    for i, j, c in [(0, 1, 4), (1, 2, 3), (3, 4, 5)]:
        table.increment(i, j, c)
    return cluster_with_links(table, k=2, f_theta=1 / 3)


@pytest.fixture
def pipeline_result():
    ds = TransactionDataset(
        [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}, {8, 10, 11}] * 5
    )
    return RockPipeline(k=2, theta=0.4, sample_size=20, seed=0).fit(ds)


class TestRockResultRoundTrip:
    def test_dict_round_trip(self, rock_result):
        back = rock_result_from_dict(rock_result_to_dict(rock_result))
        assert back.clusters == rock_result.clusters
        assert back.merges == rock_result.merges
        assert back.stopped_early == rock_result.stopped_early
        assert back.n_points == rock_result.n_points

    def test_file_round_trip(self, rock_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(rock_result, path)
        back = load_result(path)
        assert back.clusters == rock_result.clusters

    def test_stream_round_trip(self, rock_result):
        buffer = io.StringIO()
        save_result(rock_result, buffer)
        buffer.seek(0)
        back = load_result(buffer)
        assert back.merges == rock_result.merges

    def test_dendrogram_rebuildable_from_loaded(self, rock_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(rock_result, path)
        tree = Dendrogram.from_result(load_result(path))
        assert tree.cut(len(rock_result.clusters)) == rock_result.clusters

    def test_json_is_plain(self, rock_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(rock_result, path)
        data = json.loads(path.read_text())
        assert data["format"] == "rock-result"
        assert isinstance(data["clusters"][0][0], int)


class TestPipelineResultRoundTrip:
    def test_round_trip(self, pipeline_result, tmp_path):
        path = tmp_path / "pipeline.json"
        save_result(pipeline_result, path)
        back = load_result(path)
        assert np.array_equal(back.labels, pipeline_result.labels)
        assert back.clusters == pipeline_result.clusters
        assert back.sample_indices == pipeline_result.sample_indices
        assert back.outlier_indices == pipeline_result.outlier_indices
        assert back.timings == pytest.approx(pipeline_result.timings)
        assert back.rock_result.merges == pipeline_result.rock_result.merges

    def test_derived_accessors_work_after_load(self, pipeline_result, tmp_path):
        path = tmp_path / "pipeline.json"
        save_result(pipeline_result, path)
        back = load_result(path)
        assert back.n_clusters == pipeline_result.n_clusters
        assert back.cluster_sizes() == pipeline_result.cluster_sizes()
        assert back.clustering_seconds() >= 0


class TestSimilarityRecorded:
    def test_default_similarity_round_trips_as_none(self, pipeline_result):
        data = pipeline_result_to_dict(pipeline_result)
        assert data["version"] == FORMAT_VERSION
        assert data["similarity"] is None
        assert pipeline_result_from_dict(data).similarity is None

    def test_named_similarity_round_trips(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}] * 6
        )
        result = RockPipeline(
            k=2, theta=0.4, sample_size=20, seed=0,
            similarity=OverlapSimilarity(),
        ).fit(ds)
        back = pipeline_result_from_dict(pipeline_result_to_dict(result))
        assert isinstance(back.similarity, OverlapSimilarity)

    def test_version1_files_still_load(self, pipeline_result):
        data = pipeline_result_to_dict(pipeline_result)
        # forge a version-1 file: no similarity entry existed back then
        data["version"] = 1
        del data["similarity"]
        data["rock_result"]["version"] = 1
        back = pipeline_result_from_dict(data)
        assert back.similarity is None
        assert np.array_equal(back.labels, pipeline_result.labels)

    @pytest.mark.parametrize(
        "similarity",
        [
            JaccardSimilarity(),
            OverlapSimilarity(),
            MissingAwareJaccard(),
            LpSimilarity(p=1.0, scale=3.0),
            LpSimilarity(p=float("inf")),
        ],
    )
    def test_builtin_similarities_round_trip(self, similarity):
        back = similarity_from_dict(similarity_to_dict(similarity))
        assert type(back) is type(similarity)
        if isinstance(similarity, LpSimilarity):
            assert back.p == similarity.p
            assert back.scale == similarity.scale

    def test_custom_similarity_recorded_by_name_only(self):
        table = SimilarityTable({("a", "b"): 0.5})
        data = similarity_to_dict(table)
        assert data == {"name": "SimilarityTable", "custom": True}
        assert similarity_from_dict(data) is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown similarity"):
            similarity_from_dict({"name": "from-the-future"})


class TestErrors:
    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            save_result({"not": "a result"}, io.StringIO())

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "mystery"}')
        with pytest.raises(ValueError, match="not a saved clustering"):
            load_result(path)

    def test_version_mismatch_rejected(self, rock_result):
        data = rock_result_to_dict(rock_result)
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            rock_result_from_dict(data)

    def test_cross_format_rejected(self, rock_result):
        data = rock_result_to_dict(rock_result)
        with pytest.raises(ValueError, match="expected format"):
            pipeline_result_from_dict(data)
