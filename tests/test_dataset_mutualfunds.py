"""Tests for the mutual-funds replica generator."""

import pytest

from repro.core.similarity import MissingAwareJaccard
from repro.datasets.mutualfunds import (
    N_PAIR_CLUSTERS,
    N_TRADING_DAYS,
    PAPER_TOTAL_FUNDS,
    TABLE4_GROUPS,
    generate_mutual_funds,
)


@pytest.fixture(scope="module")
def funds():
    return generate_mutual_funds(
        groups=TABLE4_GROUPS[:4], n_pairs=3, n_outliers=10, n_days=120, seed=0
    )


class TestSpec:
    def test_table4_group_sizes(self):
        sizes = {name: size for name, size, _ in TABLE4_GROUPS}
        assert sizes["Growth 2"] == 107
        assert sizes["Growth 3"] == 70
        assert sizes["Bonds 7"] == 26
        assert sizes["Financial Service"] == 3
        assert len(TABLE4_GROUPS) == 16

    def test_default_totals(self):
        data = generate_mutual_funds(n_days=30, seed=1)
        assert len(data.series) == PAPER_TOTAL_FUNDS
        grouped = sum(size for _, size, _ in TABLE4_GROUPS)
        pairs = 3 * N_PAIR_CLUSTERS  # two members + one satellite each
        outliers = PAPER_TOTAL_FUNDS - grouped - pairs
        assert data.group_labels.count("") == outliers


class TestStructure:
    def test_dataset_one_column_per_movement_day(self, funds):
        assert len(funds.dataset.schema) == 120 - 1

    def test_labels_align(self, funds):
        assert len(funds.group_labels) == len(funds.series)
        for record, label in zip(funds.dataset, funds.group_labels):
            assert record.label == label or (label == "" and record.label == "")

    def test_same_group_funds_highly_similar(self, funds):
        sim = MissingAwareJaccard()
        by_group = {}
        for i, label in enumerate(funds.group_labels):
            if label and not label.startswith("Pair"):
                by_group.setdefault(label, []).append(i)
        for members in by_group.values():
            a, b = members[0], members[1]
            assert sim(funds.dataset[a], funds.dataset[b]) >= 0.75

    def test_cross_group_funds_dissimilar(self, funds):
        sim = MissingAwareJaccard()
        groups = {}
        for i, label in enumerate(funds.group_labels):
            if label:
                groups.setdefault(label, []).append(i)
        names = sorted(groups)
        a = groups[names[0]][0]
        b = groups[names[1]][0]
        assert sim(funds.dataset[a], funds.dataset[b]) < 0.5

    def test_outliers_dissimilar_to_everyone(self, funds):
        sim = MissingAwareJaccard()
        outlier = funds.group_labels.index("")
        others = [i for i in range(len(funds.dataset)) if i != outlier][:10]
        for i in others:
            assert sim(funds.dataset[outlier], funds.dataset[i]) < 0.6

    def test_young_funds_have_missing_values(self):
        data = generate_mutual_funds(
            groups=TABLE4_GROUPS[:2], n_pairs=0, n_outliers=0,
            n_days=100, young_fund_fraction=1.0, seed=3,
        )
        assert data.dataset.missing_fraction() > 0.1

    def test_no_young_funds_no_missing(self):
        data = generate_mutual_funds(
            groups=TABLE4_GROUPS[:1], n_pairs=0, n_outliers=0,
            n_days=50, young_fund_fraction=0.0, seed=3,
        )
        assert data.dataset.missing_fraction() == 0.0

    def test_prices_positive(self, funds):
        for series in funds.series[:20]:
            assert all(v > 0 for v in series.observations.values())

    def test_deterministic(self):
        a = generate_mutual_funds(groups=TABLE4_GROUPS[:2], n_pairs=1, n_outliers=2, n_days=40, seed=9)
        b = generate_mutual_funds(groups=TABLE4_GROUPS[:2], n_pairs=1, n_outliers=2, n_days=40, seed=9)
        assert [r.values for r in a.dataset] == [r.values for r in b.dataset]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_mutual_funds(fidelity=0.0)
        with pytest.raises(ValueError):
            generate_mutual_funds(young_fund_fraction=1.5)
        with pytest.raises(ValueError):
            generate_mutual_funds(n_days=1)
