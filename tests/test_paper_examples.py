"""Exact reproductions of the paper's worked examples (Sections 1 and 3).

These tests pin the combinatorial facts the paper states verbatim --
distances in Example 1.1, Jaccard coefficients and link counts in
Example 1.2 / Figure 1 -- so any regression in the similarity, neighbor,
or link machinery is caught against ground truth from the text.
"""

import math
from itertools import combinations

import numpy as np
import pytest

from repro.baselines.centroid import centroid_cluster, squared_euclidean_matrix
from repro.core.links import compute_links
from repro.core.neighbors import compute_neighbor_graph
from repro.core.similarity import JaccardSimilarity
from repro.data.transactions import Transaction, TransactionDataset


@pytest.fixture(scope="module")
def example_1_1():
    """Transactions (a)-(d) of Example 1.1 over items 1..6."""
    return TransactionDataset(
        [{1, 2, 3, 5}, {2, 3, 4, 5}, {1, 4}, {6}],
        vocabulary=[1, 2, 3, 4, 5, 6],
    )


@pytest.fixture(scope="module")
def figure_1():
    """The two overlapping transaction clusters of Figure 1 /
    Example 1.2: all 3-subsets of {1..5} and of {1,2,6,7}."""
    big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
    small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
    ds = TransactionDataset([Transaction(t) for t in big + small])
    index = {t.items: i for i, t in enumerate(ds)}
    return ds, index, [0] * len(big) + [1] * len(small)


class TestExample11:
    def test_distance_between_first_two_is_sqrt_2(self, example_1_1):
        d2 = squared_euclidean_matrix(example_1_1.indicator_matrix().astype(float))
        assert math.sqrt(d2[0, 1]) == pytest.approx(math.sqrt(2))
        # and it is the smallest pairwise distance
        masked = d2 + np.eye(4) * 1e9
        assert masked.min() == pytest.approx(2.0)

    def test_distance_third_fourth_is_sqrt_3(self, example_1_1):
        d2 = squared_euclidean_matrix(example_1_1.indicator_matrix().astype(float))
        assert math.sqrt(d2[2, 3]) == pytest.approx(math.sqrt(3))

    def test_centroid_distances_after_first_merge(self, example_1_1):
        """Paper: after merging (a), (b), the centroid (0.5,1,1,0.5,1,0)
        sits at distance sqrt(3.5) and sqrt(4.5) from (c) and (d)."""
        m = example_1_1.indicator_matrix().astype(float)
        centroid = (m[0] + m[1]) / 2
        assert centroid.tolist() == [0.5, 1.0, 1.0, 0.5, 1.0, 0.0]
        d_c = ((centroid - m[2]) ** 2).sum()
        d_d = ((centroid - m[3]) ** 2).sum()
        assert d_c == pytest.approx(3.5)
        assert d_d == pytest.approx(4.5)

    def test_centroid_algorithm_merges_disjoint_transactions(self, example_1_1):
        """The paper's punchline: {1,4} and {6} -- no common item -- end
        in one cluster under the centroid algorithm at k=2."""
        result = centroid_cluster(example_1_1, k=2, eliminate_singletons=False)
        assert [2, 3] in [sorted(c) for c in result.clusters]

    def test_rock_with_one_common_item_rule_keeps_them_apart(self, example_1_1):
        """Section 1.2: with neighbors = 'share at least one item',
        {1,4} and {6} have no links and are never merged."""
        graph = compute_neighbor_graph(example_1_1, theta=1e-9)
        links = compute_links(graph)
        assert links.get(2, 3) == 0

    def test_ripple_effect_mean_spreading(self):
        """Section 1.1's ripple example: the distance between the two
        spread-out means is smaller than a member's distance to its own
        mean."""
        mean1 = np.array([1 / 3] * 3 + [0.0] * 3)
        mean2 = np.array([0.0] * 3 + [1 / 3] * 3)
        point = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        d_means = np.linalg.norm(mean1 - mean2)
        d_point = np.linalg.norm(point - mean1)
        assert d_means < d_point
        # and the merged mean is even further from the point
        merged = np.array([1 / 6] * 6)
        assert np.linalg.norm(point - merged) > d_point


class TestExample12Jaccard:
    def test_coefficient_range_within_cluster(self, figure_1):
        ds, index, _ = figure_1
        sim = JaccardSimilarity()
        assert sim({1, 2, 3}, {3, 4, 5}) == pytest.approx(0.2)
        assert sim({1, 2, 3}, {1, 2, 4}) == pytest.approx(0.5)

    def test_cross_cluster_pair_same_coefficient(self):
        """{1,2,3} and {1,2,7} are in different clusters yet share the
        maximal Jaccard value 0.5 -- the paper's motivating confusion."""
        sim = JaccardSimilarity()
        assert sim({1, 2, 3}, {1, 2, 7}) == pytest.approx(0.5)


class TestExample12Links:
    THETA = 0.5

    def links(self, figure_1):
        ds, index, _ = figure_1
        graph = compute_neighbor_graph(ds, theta=self.THETA)
        return compute_links(graph), index

    def test_same_cluster_pair_has_5_links(self, figure_1):
        links, index = self.links(figure_1)
        assert links.get(index[frozenset({1, 2, 3})], index[frozenset({1, 2, 4})]) == 5

    def test_cross_cluster_pair_has_3_links(self, figure_1):
        links, index = self.links(figure_1)
        assert links.get(index[frozenset({1, 2, 3})], index[frozenset({1, 2, 6})]) == 3

    def test_section_3_2_small_cluster_counts(self, figure_1):
        links, index = self.links(figure_1)
        # {1,2,6} has 5 links with {1,2,7} in its own cluster ...
        assert links.get(index[frozenset({1, 2, 6})], index[frozenset({1, 2, 7})]) == 5
        # ... and {1,6,7} has 2 links with every transaction in the small
        # cluster and 0 with every non-{1,2,x} one in the big cluster
        f167 = index[frozenset({1, 6, 7})]
        for other in [{1, 2, 6}, {1, 2, 7}, {2, 6, 7}]:
            assert links.get(f167, index[frozenset(other)]) == 2
        for other in [{3, 4, 5}, {1, 3, 4}, {2, 4, 5}]:
            assert links.get(f167, index[frozenset(other)]) == 0

    def test_common_neighbor_identities(self, figure_1):
        """The paper lists the exact common neighbors of ({1,2,3},{1,2,4}):
        {1,2,5}, {1,2,6}, {1,2,7}, {1,3,4} and {2,3,4}."""
        ds, index, _ = figure_1
        graph = compute_neighbor_graph(ds, theta=self.THETA)
        adjacency = graph.adjacency
        a = index[frozenset({1, 2, 3})]
        b = index[frozenset({1, 2, 4})]
        common = {
            i for i in range(len(ds)) if adjacency[a, i] and adjacency[b, i]
        }
        expected = {
            index[frozenset(s)]
            for s in [{1, 2, 5}, {1, 2, 6}, {1, 2, 7}, {1, 3, 4}, {2, 3, 4}]
        }
        assert common == expected

    def test_max_link_partner_stays_home(self, figure_1):
        """Section 3.2's operative claim: every transaction's strongest
        link partner belongs to its own cluster."""
        ds, index, truth = figure_1
        links, _ = self.links(figure_1)
        for i in range(len(ds)):
            row = links.row(i)
            best = max(row.values())
            assert any(truth[j] == truth[i] for j, c in row.items() if c == best)
