"""Tests for the chunked multiprocessing assignment executor."""

import numpy as np
import pytest

from repro.core.similarity import SimilarityTable
from repro.data.transactions import Transaction
from repro.serve import AssignmentEngine, RockModel, ServeMetrics, assign_stream
from repro.serve.parallel import _chunks, default_workers

CLUSTER_A = [Transaction({1, 2, 3}), Transaction({1, 2, 4}), Transaction({2, 3, 4})]
CLUSTER_B = [Transaction({7, 8, 9}), Transaction({7, 8, 10})]


@pytest.fixture
def model():
    return RockModel(
        labeling_sets=[CLUSTER_A, CLUSTER_B],
        theta=0.4,
        f_theta=(1 - 0.4) / (1 + 0.4),
    )


@pytest.fixture
def points():
    out = []
    for i in range(200):
        if i % 3 == 0:
            out.append(Transaction({1, 2, (i % 4) + 3}))
        elif i % 3 == 1:
            out.append(Transaction({7, 8, (i % 3) + 9}))
        else:
            out.append(Transaction({100 + i}))
    return out


class TestAssignStream:
    def test_serial_matches_engine(self, model, points):
        expected = AssignmentEngine(model).assign_batch(points)
        got = assign_stream(model, iter(points), workers=1, chunk_size=17)
        assert np.array_equal(got, expected)

    def test_parallel_matches_serial_and_preserves_order(self, model, points):
        expected = assign_stream(model, points, workers=1, chunk_size=16)
        got = assign_stream(model, iter(points), workers=2, chunk_size=16)
        assert np.array_equal(got, expected)

    def test_chunk_size_does_not_change_labels(self, model, points):
        a = assign_stream(model, points, workers=2, chunk_size=7)
        b = assign_stream(model, points, workers=2, chunk_size=64)
        assert np.array_equal(a, b)

    def test_unserialisable_model_falls_back_to_serial(self, points):
        table = SimilarityTable({("p", "a1"): 0.9})
        model = RockModel(
            labeling_sets=[["a1"], ["b1"]], theta=0.5, f_theta=0.3,
            similarity=table,
        )
        labels = assign_stream(model, ["p", "zzz"], workers=4)
        assert labels.tolist() == [0, -1]

    def test_metrics_recorded(self, model, points):
        metrics = ServeMetrics()
        assign_stream(model, points, workers=2, chunk_size=32, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["points"] == len(points)
        assert "assign_stream" in snap["latency"]

    def test_worker_metrics_merged_into_sink(self, model, points):
        """Regression: workers>1 used to discard all per-worker metrics.

        The sink must see the same per-batch activity a serial run
        records -- point counts, cache lookups, batch-size histogram,
        and assign_batch latencies all come back via worker snapshots.
        """
        metrics = ServeMetrics()
        assign_stream(model, iter(points), workers=2, chunk_size=25, metrics=metrics)
        snap = metrics.snapshot()
        n_chunks = -(-len(points) // 25)
        assert snap["requests"] == n_chunks
        assert snap["points"] == len(points)
        assert snap["outliers"] > 0  # the fixture plants outliers
        cache = snap["cache"]
        # every point reaches each worker's LRU; in-batch duplicates
        # are deduplicated, so lookups is positive but <= points
        assert 0 < cache["lookups"] <= len(points)
        assert cache["hits"] + cache["misses"] == cache["lookups"]
        assert cache["uncacheable"] == 0
        assert snap["latency"]["assign_batch"]["count"] == n_chunks
        assert snap["latency"]["assign_stream"]["count"] == 1
        assert sum(snap["batch_sizes"].values()) == n_chunks

    def test_parallel_labels_are_int64_array(self, model, points):
        labels = assign_stream(model, iter(points), workers=2, chunk_size=16)
        assert isinstance(labels, np.ndarray)
        assert labels.dtype == np.int64
        assert labels.shape == (len(points),)

    def test_empty_stream(self, model):
        assert assign_stream(model, [], workers=2).shape == (0,)

    def test_validation(self, model):
        with pytest.raises(ValueError, match="chunk_size"):
            assign_stream(model, [], chunk_size=0)


def test_chunks_helper():
    assert list(_chunks(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
    assert list(_chunks([], 3)) == []


def test_default_workers_bounded():
    assert 1 <= default_workers() <= 8
