"""Tests for neighbor-graph computation (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import (
    NeighborGraph,
    adjacency_from_similarity_matrix,
    compute_neighbor_graph,
)
from repro.core.similarity import JaccardSimilarity, MissingAwareJaccard, SimilarityTable
from repro.data.records import MISSING, CategoricalDataset, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset


class TestNeighborGraph:
    def test_validation_square(self):
        with pytest.raises(ValueError, match="square"):
            NeighborGraph(np.zeros((2, 3), dtype=bool))

    def test_validation_hollow(self):
        adj = np.eye(2, dtype=bool)
        with pytest.raises(ValueError, match="diagonal"):
            NeighborGraph(adj)

    def test_validation_symmetric(self):
        adj = np.zeros((2, 2), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError, match="symmetric"):
            NeighborGraph(adj)

    def test_neighbor_lists_and_degrees(self):
        adj = np.array(
            [[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=bool
        )
        g = NeighborGraph(adj)
        assert [list(l) for l in g.neighbor_lists()] == [[1, 2], [0], [0]]
        assert g.degrees().tolist() == [2, 1, 1]
        assert g.are_neighbors(0, 1)
        assert not g.are_neighbors(1, 2)

    def test_isolated_points(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        g = NeighborGraph(adj)
        assert g.isolated_points().tolist() == [2]

    def test_subgraph_reindexes(self):
        adj = np.array(
            [[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=bool
        )
        sub = NeighborGraph(adj).subgraph([0, 2])
        assert sub.n == 2
        assert not sub.are_neighbors(0, 1)

    def test_empty_graph(self):
        g = NeighborGraph(np.zeros((0, 0), dtype=bool))
        assert g.n == 0
        assert len(g) == 0


class TestThresholding:
    def test_threshold_inclusive(self):
        sim = np.array([[1.0, 0.5], [0.5, 1.0]])
        adj = adjacency_from_similarity_matrix(sim, theta=0.5)
        assert adj[0, 1]

    def test_diagonal_cleared(self):
        sim = np.ones((3, 3))
        adj = adjacency_from_similarity_matrix(sim, theta=0.0)
        assert not adj.diagonal().any()

    def test_theta_one_only_identical(self):
        sim = np.array([[1.0, 0.99], [0.99, 1.0]])
        adj = adjacency_from_similarity_matrix(sim, theta=1.0)
        assert not adj.any()


class TestComputeNeighborGraph:
    def test_example_1_1_at_least_one_common_item(self):
        """Section 1.2: with 'at least one item in common' as the neighbor
        rule, transactions {1,4} and {6} are not neighbors."""
        ds = TransactionDataset([{1, 2, 3, 5}, {2, 3, 4, 5}, {1, 4}, {6}])
        # any positive Jaccard means >= 1 common item; use tiny theta
        g = compute_neighbor_graph(ds, theta=1e-9)
        assert g.are_neighbors(0, 1)
        assert g.are_neighbors(0, 2)
        assert not g.are_neighbors(2, 3)
        assert not g.are_neighbors(0, 3)

    def test_vectorized_equals_bruteforce(self):
        ds = TransactionDataset([{1, 2, 3}, {1, 2}, {3, 4}, {5}, set()])
        fast = compute_neighbor_graph(ds, theta=0.3, method="vectorized")
        slow = compute_neighbor_graph(ds, theta=0.3, method="bruteforce")
        assert np.array_equal(fast.adjacency, slow.adjacency)

    def test_missing_aware_vectorized_equals_bruteforce(self):
        schema = CategoricalSchema(["a", "b", "c"])
        ds = CategoricalDataset(
            schema,
            [["x", "y", MISSING], ["x", "y", "z"], [MISSING, "y", "z"], ["q", "r", "s"]],
        )
        sim = MissingAwareJaccard()
        fast = compute_neighbor_graph(ds, theta=0.5, similarity=sim, method="vectorized")
        slow = compute_neighbor_graph(ds, theta=0.5, similarity=sim, method="bruteforce")
        assert np.array_equal(fast.adjacency, slow.adjacency)

    def test_categorical_default_jaccard_uses_av_encoding(self):
        schema = CategoricalSchema(["a", "b"])
        ds = CategoricalDataset(schema, [["x", "y"], ["x", "y"], ["p", "q"]])
        g = compute_neighbor_graph(ds, theta=0.99)
        assert g.are_neighbors(0, 1)
        assert not g.are_neighbors(0, 2)

    def test_similarity_table_bruteforce(self):
        table = SimilarityTable({("a", "b"): 0.9, ("b", "c"): 0.2})
        g = compute_neighbor_graph(["a", "b", "c"], theta=0.5, similarity=table)
        assert g.are_neighbors(0, 1)
        assert not g.are_neighbors(1, 2)

    def test_vectorized_unavailable_raises(self):
        table = SimilarityTable({})
        with pytest.raises(ValueError, match="no bulk path"):
            compute_neighbor_graph(["a"], theta=0.5, similarity=table, method="vectorized")

    def test_invalid_theta_rejected(self):
        with pytest.raises(ValueError, match="theta"):
            compute_neighbor_graph(TransactionDataset([{1}]), theta=1.5)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            compute_neighbor_graph(TransactionDataset([{1}]), theta=0.5, method="magic")

    def test_out_of_range_similarity_rejected(self):
        bad = lambda a, b: 2.0
        with pytest.raises(ValueError, match="normalised"):
            compute_neighbor_graph([1, 2], theta=0.5, similarity=bad)

    def test_theta_recorded(self):
        g = compute_neighbor_graph(TransactionDataset([{1}, {2}]), theta=0.4)
        assert g.theta == 0.4


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sets(st.integers(0, 8), max_size=6), min_size=1, max_size=12),
    st.floats(0.0, 1.0),
)
def test_vectorized_bruteforce_agree_on_random_data(sets, theta):
    ds = TransactionDataset([Transaction(s) for s in sets])
    fast = compute_neighbor_graph(ds, theta=theta, method="vectorized")
    slow = compute_neighbor_graph(ds, theta=theta, method="bruteforce")
    assert np.array_equal(fast.adjacency, slow.adjacency)
