"""Tests for the end-to-end ROCK pipeline (Figure 2)."""

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline
from repro.core.similarity import MissingAwareJaccard
from repro.data.records import CategoricalDataset, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset
from repro.datasets import small_synthetic_basket


def two_cluster_transactions(n_per_cluster=30, seed=0):
    import random

    rng = random.Random(seed)
    a_items = list(range(0, 12))
    b_items = list(range(20, 32))
    txns, labels = [], []
    for _ in range(n_per_cluster):
        txns.append(Transaction(rng.sample(a_items, 6)))
        labels.append(0)
        txns.append(Transaction(rng.sample(b_items, 6)))
        labels.append(1)
    return TransactionDataset(txns), labels


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RockPipeline(k=0, theta=0.5)
        with pytest.raises(ValueError):
            RockPipeline(k=2, theta=1.5)
        with pytest.raises(ValueError):
            RockPipeline(k=2, theta=0.5, sample_size=0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RockPipeline(k=1, theta=0.5).fit(TransactionDataset([]))

    def test_everything_pruned_raises(self):
        ds = TransactionDataset([{1}, {2}, {3}])
        with pytest.raises(ValueError, match="pruned"):
            RockPipeline(k=1, theta=0.9).fit(ds)


class TestFullDataClustering:
    def test_two_clusters_no_sampling(self):
        ds, labels = two_cluster_transactions()
        result = RockPipeline(k=2, theta=0.3, seed=0).fit(ds)
        assert result.n_clusters == 2
        for cluster in result.clusters:
            assert len({labels[i] for i in cluster}) == 1

    def test_labels_align_with_clusters(self):
        ds, _ = two_cluster_transactions()
        result = RockPipeline(k=2, theta=0.3, seed=0).fit(ds)
        for c, members in enumerate(result.clusters):
            for i in members:
                assert result.labels[i] == c

    def test_clusters_sorted_by_size(self):
        ds, _ = two_cluster_transactions()
        result = RockPipeline(k=2, theta=0.3, seed=0).fit(ds)
        sizes = result.cluster_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_isolated_points_become_outliers(self):
        ds, labels = two_cluster_transactions(n_per_cluster=15)
        with_noise = TransactionDataset(list(ds) + [Transaction({999})])
        result = RockPipeline(k=2, theta=0.3, seed=0).fit(with_noise)
        assert result.labels[len(ds)] == -1
        assert len(ds) in result.outlier_indices

    def test_timings_recorded(self):
        ds, _ = two_cluster_transactions(n_per_cluster=10)
        result = RockPipeline(k=2, theta=0.3).fit(ds)
        assert set(result.timings) == {"sample", "neighbors", "links", "cluster", "label"}
        assert result.clustering_seconds() >= 0.0


class TestSamplingAndLabeling:
    def test_sampled_run_labels_remaining(self):
        ds, labels = two_cluster_transactions(n_per_cluster=60)
        result = RockPipeline(k=2, theta=0.3, sample_size=40, seed=3).fit(ds)
        assert len(result.sample_indices) == 40
        assigned = (result.labels >= 0).sum()
        assert assigned > 100  # nearly everything labeled
        # labeled points land with their own cluster
        wrong = 0
        for cluster in result.clusters:
            truth = {labels[i] for i in cluster}
            if len(truth) > 1:
                wrong += 1
        assert wrong == 0

    def test_label_remaining_false_leaves_non_sample_unlabeled(self):
        ds, _ = two_cluster_transactions(n_per_cluster=60)
        result = RockPipeline(k=2, theta=0.3, sample_size=40, seed=3).fit(
            ds, label_remaining=False
        )
        outside = set(range(len(ds))) - set(result.sample_indices)
        assert all(result.labels[i] == -1 for i in outside)

    def test_deterministic_for_seed(self):
        ds, _ = two_cluster_transactions(n_per_cluster=40)
        a = RockPipeline(k=2, theta=0.3, sample_size=30, seed=11).fit(ds)
        b = RockPipeline(k=2, theta=0.3, sample_size=30, seed=11).fit(ds)
        assert np.array_equal(a.labels, b.labels)
        assert a.clusters == b.clusters

    def test_different_seeds_may_sample_differently(self):
        ds, _ = two_cluster_transactions(n_per_cluster=40)
        a = RockPipeline(k=2, theta=0.3, sample_size=30, seed=1).fit(ds)
        b = RockPipeline(k=2, theta=0.3, sample_size=30, seed=2).fit(ds)
        assert a.sample_indices != b.sample_indices


class TestWeeding:
    def test_small_clusters_weeded_to_outliers(self):
        ds, labels = two_cluster_transactions(n_per_cluster=25)
        # two noise points that are neighbors of each other only
        noisy = TransactionDataset(
            list(ds) + [Transaction({100, 101, 102}), Transaction({100, 101, 103})]
        )
        result = RockPipeline(
            k=2, theta=0.3, min_cluster_size=4, outlier_multiple=2.0, seed=0
        ).fit(noisy)
        assert result.n_clusters == 2
        assert result.labels[len(ds)] == -1
        assert result.labels[len(ds) + 1] == -1

    def test_weeding_everything_raises(self):
        ds = TransactionDataset([{1, 2}, {1, 3}, {2, 3}])
        with pytest.raises(ValueError, match="every cluster"):
            RockPipeline(k=1, theta=0.3, min_cluster_size=99).fit(ds)


class TestCategoricalAndCustomSimilarity:
    def test_categorical_dataset_via_missing_aware(self):
        schema = CategoricalSchema(["a", "b", "c"])
        rows = [["x", "y", "z"]] * 5 + [["p", "q", "r"]] * 5
        ds = CategoricalDataset(schema, rows)
        result = RockPipeline(
            k=2, theta=0.9, similarity=MissingAwareJaccard()
        ).fit(ds)
        assert result.n_clusters == 2
        assert sorted(map(len, result.clusters)) == [5, 5]

    def test_plain_list_of_points(self):
        points = [Transaction({1, 2, 3}), Transaction({1, 2, 4}), Transaction({1, 3, 4}),
                  Transaction({8, 9, 10}), Transaction({8, 9, 11}), Transaction({8, 10, 11})]
        result = RockPipeline(k=2, theta=0.4).fit(points)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4, 5]]


class TestOnGeneratedBasket:
    def test_small_basket_recovered(self):
        basket = small_synthetic_basket(n_clusters=3, cluster_size=60, n_outliers=10, seed=4)
        result = RockPipeline(k=3, theta=0.4, min_cluster_size=5, seed=4).fit(
            basket.transactions
        )
        assert result.n_clusters == 3
        from repro.eval import misclassified_count

        wrong = misclassified_count(basket.labels, result.labels.tolist())
        assert wrong <= len(basket.labels) * 0.05
