"""Full-scale end-to-end runs, marked slow.

These mirror the benches at the paper's data sizes, as *tests*: run
with ``pytest -m slow`` when you want the complete evidence from the
test runner rather than the benchmark harness.  They are included in
the default run too (the suite budget allows it) but carry the marker
so constrained environments can deselect them with ``-m "not slow"``.
"""

import pytest

from repro.core import MissingAwareJaccard, RockPipeline
from repro.datasets import generate_mushroom, generate_mutual_funds
from repro.eval import cluster_purities, purity


@pytest.mark.slow
class TestFullMushroom:
    @pytest.fixture(scope="class")
    def outcome(self):
        data = generate_mushroom(seed=3)
        result = RockPipeline(
            k=20, theta=0.8, sample_size=2500, min_cluster_size=4, seed=7
        ).fit(data.dataset)
        return data, result

    def test_paper_table3_shape(self, outcome):
        data, result = outcome
        purities = cluster_purities(result.clusters, data.class_labels)
        assert result.n_clusters >= 10
        assert sum(1 for p in purities if p < 1.0) <= 1
        assert purity(result.clusters, data.class_labels) > 0.99

    def test_largest_latent_sizes_recovered(self, outcome):
        data, result = outcome
        sizes = sorted(result.cluster_sizes(), reverse=True)
        # the four biggest latent clusters (1728, 1728, 1296, 768) come
        # back essentially intact through sample + label
        assert sizes[0] >= 1650
        assert sizes[2] >= 1200
        assert sizes[3] >= 700

    def test_mixed_cluster_found(self, outcome):
        data, result = outcome
        mixed = [
            c for c in result.clusters
            if len({data.class_labels[i] for i in c}) > 1
        ]
        assert len(mixed) == 1
        assert 80 <= len(mixed[0]) <= 120  # the planted 32 + 72


@pytest.mark.slow
class TestFullFunds:
    def test_paper_table4_groups_exact(self):
        funds = generate_mutual_funds(seed=5)
        result = RockPipeline(
            k=40, theta=0.8, similarity=MissingAwareJaccard(),
            min_cluster_size=2, outlier_multiple=1.0, seed=0,
        ).fit(funds.dataset)
        named = {}
        for cluster in result.clusters:
            groups = {funds.group_labels[i] for i in cluster}
            assert len(groups) == 1  # no cluster mixes fund groups
            group = groups.pop()
            if group and not group.startswith("Pair"):
                named[group] = len(cluster)
        from repro.datasets import TABLE4_GROUPS

        for name, size, _ in TABLE4_GROUPS:
            assert named.get(name) == size, name
