"""The resume seam streaming refits rely on: pause + resume == one shot.

Greedy agglomeration is memoryless: the merges that remain after
pausing at ``k'`` clusters depend only on the partition at the pause,
not on how it was reached.  So resuming via ``initial_clusters`` must
reproduce the one-shot run **byte for byte** -- same final clusters,
same merge history (pause prefix + resume suffix), same goodness
floats bit for bit -- across ``merge_method={heap,fast}``.

Merge ids are partition-relative (a resumed run renumbers its starting
clusters 0..m-1), so histories are compared after canonicalising each
step to its *member sets*; goodness floats are compared by their
``float64`` bytes.

Link weights in the property are distinct random integers below
``2**40``: integer-valued floats keep every cross-link sum exact under
any summation order (no float-associativity drift between the
incremental one-shot aggregation and the resume's re-aggregation),
while 40-bit entropy makes an exact goodness tie -- the one legitimate
divergence source, since ties break by heap insertion order --
astronomically unlikely.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import default_f
from repro.core.links import LinkTable
from repro.core.pipeline import RockPipeline
from repro.core.rock import cluster_with_links

F_THETA = default_f(0.5)


def canonical_history(merges, initial_member_sets):
    """Merge steps as id-free ``({left_set, right_set}, goodness_bytes, size)``."""
    members = {i: frozenset(c) for i, c in enumerate(initial_member_sets)}
    out = []
    for step in merges:
        left = members.pop(step.left)
        right = members.pop(step.right)
        members[step.merged] = left | right
        assert step.size == len(left) + len(right)
        out.append(
            (
                frozenset((left, right)),
                np.float64(step.goodness).tobytes(),
                step.size,
            )
        )
    return out


def canonical_clusters(clusters):
    return {frozenset(c) for c in clusters}


@st.composite
def resume_problems(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    picked = draw(
        st.sets(
            st.integers(min_value=0, max_value=len(all_pairs) - 1),
            max_size=min(len(all_pairs), 3 * n),
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    k_final = draw(st.integers(min_value=1, max_value=n - 1))
    k_pause = draw(st.integers(min_value=k_final, max_value=n))
    rng = random.Random(seed)
    weights = rng.sample(range(1, 2**40), len(picked))
    edges = {
        all_pairs[index]: float(weight)
        for index, weight in zip(sorted(picked), weights)
    }
    return n, edges, k_final, k_pause


def make_links(n, edges):
    links = LinkTable(n)
    for (i, j), count in edges.items():
        links.increment(i, j, count)
    return links


class TestClusterWithLinksResume:
    @given(problem=resume_problems())
    @settings(max_examples=60, deadline=None)
    def test_pause_resume_byte_identical_to_one_shot(self, problem):
        n, edges, k_final, k_pause = problem
        for merge_method in ("heap", "fast"):
            links = make_links(n, edges)
            direct = cluster_with_links(
                links, k=k_final, f_theta=F_THETA, merge_method=merge_method
            )
            paused = cluster_with_links(
                links, k=k_pause, f_theta=F_THETA, merge_method=merge_method
            )
            resumed = cluster_with_links(
                links,
                k=k_final,
                f_theta=F_THETA,
                initial_clusters=paused.clusters,
                merge_method=merge_method,
            )
            assert canonical_clusters(resumed.clusters) == canonical_clusters(
                direct.clusters
            ), merge_method
            singletons = [[i] for i in range(n)]
            want = canonical_history(direct.merges, singletons)
            got = canonical_history(paused.merges, singletons) + canonical_history(
                resumed.merges, paused.clusters
            )
            assert got == want, merge_method
            assert resumed.stopped_early == direct.stopped_early or (
                not resumed.merges and paused.stopped_early
            )


class TestPipelineResumeSeam:
    """The pipeline-level seam: a refit resuming from an earlier fit's
    partition over the same sample equals the one-shot fit, including
    sampling and isolated-point pruning in front of the merge loop."""

    def run_pair(self, seed, merge_method, sample_size=None):
        rng = random.Random(seed)
        vocab_a, vocab_b = list(range(12)), list(range(20, 32))
        points = [
            frozenset(rng.sample(vocab_a if i % 2 else vocab_b, 4))
            for i in range(160)
        ]
        params = dict(
            theta=0.3, seed=seed, merge_method=merge_method,
            sample_size=sample_size,
        )
        coarse = RockPipeline(k=8, **params).fit(points)
        fine_pipeline = RockPipeline(k=2, **params)
        direct = fine_pipeline.fit(points)
        resumed = fine_pipeline.fit(
            points, initial_clusters=coarse.clusters
        )
        return coarse, direct, resumed

    def test_refit_byte_identical_across_merge_methods(self):
        for merge_method in ("heap", "fast"):
            for seed in (0, 1, 7):
                coarse, direct, resumed = self.run_pair(seed, merge_method)
                assert resumed.clusters == direct.clusters, (merge_method, seed)
                assert np.array_equal(resumed.labels, direct.labels)
                assert resumed.outlier_indices == direct.outlier_indices
                # merge history: one-shot == coarse prefix + resumed suffix,
                # goodness floats bit for bit
                def tail(result):
                    return [
                        (np.float64(m.goodness).tobytes(), m.size)
                        for m in result.rock_result.merges
                    ]
                assert tail(coarse) + tail(resumed) == tail(direct), (
                    merge_method, seed,
                )

    def test_refit_byte_identical_with_sampling_and_pruning(self):
        for merge_method in ("heap", "fast"):
            coarse, direct, resumed = self.run_pair(
                3, merge_method, sample_size=90
            )
            assert resumed.clusters == direct.clusters
            assert np.array_equal(resumed.labels, direct.labels)

    def test_converged_partition_is_a_fixed_point(self):
        points = [
            frozenset(random.Random(i).sample(range(10), 4))
            for i in range(120)
        ]
        pipeline = RockPipeline(k=3, theta=0.3, seed=5)
        once = pipeline.fit(points)
        again = pipeline.fit(points, initial_clusters=once.clusters)
        assert again.clusters == once.clusters
        assert again.rock_result.merges == []

    def test_invalid_initial_clusters_rejected(self):
        points = [
            frozenset(random.Random(i).sample(range(10), 4))
            for i in range(40)
        ]
        pipeline = RockPipeline(k=2, theta=0.3, seed=5)
        with pytest.raises(ValueError, match="outside"):
            pipeline.fit(points, initial_clusters=[[0, 999]])
        with pytest.raises(ValueError, match="multiple"):
            pipeline.fit(points, initial_clusters=[[0, 1], [1, 2]])

    def test_members_outside_sample_are_dropped(self):
        points = [
            frozenset(random.Random(i).sample(range(10), 4))
            for i in range(120)
        ]
        pipeline = RockPipeline(k=2, theta=0.3, sample_size=60, seed=5)
        # a partition naming every input point: non-sampled members must
        # silently drop out rather than corrupt the merge loop
        result = pipeline.fit(
            points,
            initial_clusters=[list(range(60)), list(range(60, 120))],
        )
        assert result.n_clusters >= 1
        assert len(result.labels) == 120
