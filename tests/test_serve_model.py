"""Tests for the servable RockModel artifact and the pipeline bridge."""

import io
import json

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline
from repro.core.similarity import LpSimilarity, MissingAwareJaccard, SimilarityTable
from repro.data.records import MISSING, CategoricalRecord, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset
from repro.serve import AssignmentEngine, RockModel
from repro.serve.model import MODEL_VERSION

CLUSTER_A = [Transaction({1, 2, 3}), Transaction({1, 2, 4}), Transaction({2, 3, 4})]
CLUSTER_B = [Transaction({7, 8, 9}), Transaction({7, 8, 10})]


@pytest.fixture
def model():
    return RockModel(
        labeling_sets=[CLUSTER_A, CLUSTER_B],
        theta=0.4,
        f_theta=(1 - 0.4) / (1 + 0.4),
        cluster_sizes=[30, 20],
        metadata={"k": 2},
    )


@pytest.fixture
def dataset():
    return TransactionDataset(
        [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}, {8, 10, 11}] * 20
    )


class TestRoundTrip:
    def test_dict_round_trip(self, model):
        back = RockModel.from_dict(model.to_dict())
        assert back.theta == model.theta
        assert back.f_theta == model.f_theta
        assert back.cluster_sizes == model.cluster_sizes
        assert back.metadata == model.metadata
        assert [
            [frozenset(r) for r in li] for li in back.labeling_sets
        ] == [[r.items for r in li] for li in model.labeling_sets]

    def test_file_round_trip(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        back = RockModel.load(path)
        assert back.n_clusters == 2
        # loaded model assigns identically
        points = [Transaction({1, 2, 3}), Transaction({7, 8}), Transaction({42})]
        assert back.labeler().assign_all(points).tolist() == \
            model.labeler().assign_all(points).tolist()

    def test_json_is_plain_and_versioned(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        assert data["format"] == "rock-model"
        assert data["version"] == MODEL_VERSION
        assert data["points"] == "sets"
        assert isinstance(data["labeling_sets"][0][0], list)

    def test_stream_round_trip(self, model):
        buf = io.StringIO()
        model.save(buf)
        buf.seek(0)
        assert RockModel.load(buf).theta == model.theta

    def test_version_mismatch_rejected(self, model):
        data = model.to_dict()
        data["version"] = MODEL_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            RockModel.from_dict(data)

    def test_wrong_format_rejected(self, model):
        data = model.to_dict()
        data["format"] = "pipeline-result"
        with pytest.raises(ValueError, match="format"):
            RockModel.from_dict(data)

    def test_record_representatives_round_trip(self):
        schema = CategoricalSchema(["a", "b", "c"])
        reps = [
            [CategoricalRecord(schema, ["x", "y", MISSING])],
            [CategoricalRecord(schema, ["p", MISSING, "q"])],
        ]
        model = RockModel(
            labeling_sets=reps, theta=0.5, f_theta=0.3,
            similarity=MissingAwareJaccard(),
        )
        back = RockModel.from_dict(model.to_dict())
        assert isinstance(back.similarity, MissingAwareJaccard)
        rep = back.labeling_sets[0][0]
        assert isinstance(rep, CategoricalRecord)
        assert rep.values == ("x", "y", MISSING)

    def test_vector_representatives_round_trip(self):
        model = RockModel(
            labeling_sets=[[[0.0, 1.0]], [[5.0, 5.0]]],
            theta=0.5,
            f_theta=0.3,
            similarity=LpSimilarity(p=2.0, scale=2.0),
        )
        back = RockModel.from_dict(model.to_dict())
        assert isinstance(back.similarity, LpSimilarity)
        assert back.similarity.scale == 2.0
        assert back.labeler().assign([0.1, 0.9]) == 0

    def test_custom_similarity_rejected(self):
        table = SimilarityTable({("a", "b"): 0.9})
        model = RockModel(
            labeling_sets=[["a"], ["b"]], theta=0.5, f_theta=0.3,
            similarity=table,
        )
        with pytest.raises(ValueError, match="custom similarity"):
            model.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            RockModel(labeling_sets=[], theta=0.5, f_theta=0.3)
        with pytest.raises(ValueError, match="non-empty"):
            RockModel(labeling_sets=[[], []], theta=0.5, f_theta=0.3)
        with pytest.raises(ValueError, match="theta"):
            RockModel(labeling_sets=[CLUSTER_A], theta=1.5, f_theta=0.3)


class TestPipelineBridge:
    def test_fit_model_reproduces_labels_on_held_out(self, dataset):
        pipeline = RockPipeline(k=2, theta=0.4, sample_size=40, seed=0)
        result, model = pipeline.fit_model(dataset)
        in_sample = set(result.sample_indices)
        held_out = [i for i in range(len(dataset)) if i not in in_sample]
        assert held_out  # the split is real
        engine = AssignmentEngine(model)
        labels = engine.assign_batch([dataset[i] for i in held_out])
        assert np.array_equal(labels, result.labels[held_out])

    def test_fit_model_survives_json_round_trip(self, dataset, tmp_path):
        pipeline = RockPipeline(k=2, theta=0.4, sample_size=40, seed=0)
        result, model = pipeline.fit_model(dataset)
        path = tmp_path / "model.json"
        model.save(path)
        engine = AssignmentEngine(RockModel.load(path))
        in_sample = set(result.sample_indices)
        held_out = [i for i in range(len(dataset)) if i not in in_sample]
        labels = engine.assign_batch([dataset[i] for i in held_out])
        assert np.array_equal(labels, result.labels[held_out])

    def test_to_model_without_stored_sets_needs_points(self, dataset):
        pipeline = RockPipeline(k=2, theta=0.4, seed=0)  # clusters every point
        result = pipeline.fit(dataset)
        assert result.labeling_sets is None
        with pytest.raises(ValueError, match="original points"):
            pipeline.to_model(result)
        model = pipeline.to_model(result, dataset)
        assert model.n_clusters == result.n_clusters

    def test_labeling_sets_follow_final_cluster_order(self, dataset):
        pipeline = RockPipeline(k=2, theta=0.4, sample_size=40, seed=0)
        result, model = pipeline.fit_model(dataset)
        # each labeling set's representatives belong to its final cluster
        for c, li in enumerate(model.labeling_sets):
            member_items = {dataset[i].items for i in result.clusters[c]}
            assert all(rep.items in member_items for rep in li)

    def test_metadata_records_provenance(self, dataset):
        pipeline = RockPipeline(k=2, theta=0.4, sample_size=40, seed=7)
        _, model = pipeline.fit_model(dataset)
        assert model.metadata["k"] == 2
        assert model.metadata["seed"] == 7
        assert model.metadata["sample_size"] == 40
        assert model.metadata["n_points"] == len(dataset)
        assert model.metadata["uses_default_f"] is True
        assert model.cluster_sizes == result_sizes(dataset, pipeline)


def result_sizes(dataset, pipeline):
    return RockPipeline(
        k=pipeline.k, theta=pipeline.theta,
        sample_size=pipeline.sample_size, seed=pipeline.seed,
    ).fit(dataset).cluster_sizes()


class TestArtifactChecksum:
    """Content checksums written on save and verified on load."""

    def test_save_embeds_sha256_checksum(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        from repro.serve.model import artifact_checksum

        assert data["checksum"] == "sha256:" + artifact_checksum(data)
        assert len(data["checksum"]) == len("sha256:") + 64

    def test_checksum_is_content_addressed(self, model, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        model.save(p1)
        model.save(p2)
        c1 = json.loads(p1.read_text())["checksum"]
        c2 = json.loads(p2.read_text())["checksum"]
        assert c1 == c2  # same content, same digest, mtime-independent

    def test_clean_round_trip_verifies(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        loaded = RockModel.load(path)
        assert loaded.theta == model.theta

    def test_tampered_artifact_fails_fast(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        data["theta"] = 0.7
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="checksum mismatch"):
            RockModel.load(path)

    def test_truncated_labeling_set_fails_fast(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        data["labeling_sets"][0].pop()
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="checksum mismatch"):
            RockModel.load(path)

    def test_pre_checksum_artifacts_still_load(self, model, tmp_path):
        """Artifacts written before checksums existed have no key."""
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        del data["checksum"]
        path.write_text(json.dumps(data))
        loaded = RockModel.load(path)
        assert loaded.theta == model.theta
        assert loaded.n_clusters == model.n_clusters

    def test_checksum_survives_reserialization(self, model, tmp_path):
        """Round-tripping through json.loads/dumps keeps the digest valid."""
        path = tmp_path / "model.json"
        model.save(path)
        data = json.loads(path.read_text())
        (tmp_path / "copy.json").write_text(json.dumps(data))
        loaded = RockModel.load(tmp_path / "copy.json")
        assert loaded.theta == model.theta
