"""Tests for the ASCII table renderer."""

import pytest

from repro.eval.reporting import format_composition_table, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 5")
        assert text.splitlines()[0] == "Table 5"

    def test_floats_fixed_precision(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestCompositionTable:
    def test_layout_matches_paper_tables(self):
        text = format_composition_table(
            [{"republican": 144, "democrat": 22}, {"democrat": 201, "republican": 5}],
            classes=["republican", "democrat"],
        )
        lines = text.splitlines()
        assert "Cluster No" in lines[0]
        assert "No of republican" in lines[0]
        assert "144" in lines[2]
        assert "201" in lines[3]

    def test_absent_class_renders_zero(self):
        text = format_composition_table([{"a": 3}], classes=["a", "b"])
        assert text.splitlines()[-1].split("|")[-1].strip() == "0"
