"""AssignmentIndex tiers vs the dense LabelingIndex -- bitwise equivalence.

The inverted-index fast path (:mod:`repro.serve.index`) is only
admissible as a pure optimisation: for every input, every tier --
``pruned`` (scipy or numpy candidate gather) and ``native`` (the fused
``assign_block`` kernel) -- must produce the same labels *and* the same
winning scores, bit for bit, as the dense matmul of
:class:`~repro.core.labeling.LabelingIndex`.  The hypothesis properties
drive random labeling sets (including empty clusters and empty
representative sets), random points (including empty item sets and
points with zero vocabulary overlap), every interesting theta --
``0.0`` (the every-rep-is-a-neighbor degenerate case) through ``1.0``
-- and categorical records with missing values through all tiers.
"""

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import ClusterLabeler, LabelingIndex
from repro.data.records import MISSING, CategoricalRecord, CategoricalSchema
from repro.data.transactions import Transaction
from repro.native import _BACKEND_NAMES, get_kernels
from repro.serve import (
    AssignmentEngine,
    AssignmentIndex,
    RockModel,
    resolve_assign_backend,
)

# every probed kernel namespace that offers the assign kernel; tests
# loop over whatever works on this machine (numba and/or the C tier)
ASSIGN_KERNELS = [
    kernels
    for kernels in (get_kernels(name) for name in _BACKEND_NAMES)
    if kernels is not None and hasattr(kernels, "assign_block")
]

THETAS = [0.0, 0.2, 0.4, 0.5, 0.75, 1.0]


def make_model(labeling_sets, theta=0.4, **kwargs):
    return RockModel(
        labeling_sets=labeling_sets,
        theta=theta,
        f_theta=(1 - theta) / (1 + theta),
        **kwargs,
    )


def dense_assign_with_scores(index: LabelingIndex, points):
    """The dense reference for ``(labels, best scores)``.

    Mirrors ``StreamClusterer._label_batch``'s dense branch exactly --
    the contract the fast tiers must reproduce bit for bit.
    """
    counts = index.neighbor_counts(points)
    all_scores = counts / index.normalisers
    labels = np.argmax(all_scores, axis=1)
    best = all_scores[np.arange(len(points)), labels]
    outliers = ~counts.any(axis=1)
    labels[outliers] = -1
    best[outliers] = 0.0
    return labels.astype(np.int64), best


def assert_bitwise_equal(ref_labels, ref_best, labels, best):
    assert np.array_equal(ref_labels, labels)
    assert ref_best.tobytes() == np.asarray(best, dtype=np.float64).tobytes()


# -- the equivalence property -------------------------------------------------

rep_sets = st.frozensets(st.integers(min_value=0, max_value=12), max_size=5)
labeling_sets_strategy = st.lists(
    st.lists(rep_sets, max_size=4), min_size=1, max_size=4
).filter(lambda ls: any(len(li) for li in ls))
# points reach past the vocabulary bound on purpose: out-of-vocabulary
# items intersect nothing but still enlarge every union
points_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=20), max_size=6),
    min_size=0,
    max_size=25,
)


class TestTierEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        sets=labeling_sets_strategy,
        points=points_strategy,
        theta=st.sampled_from(THETAS),
        block_size=st.sampled_from([1, 3, 8192]),
    )
    def test_all_tiers_bitwise_identical(self, sets, points, theta, block_size):
        labeling_sets = [[Transaction(s) for s in li] for li in sets]
        batch = [Transaction(p) for p in points]
        f_theta = (1 - theta) / (1 + theta)
        dense = LabelingIndex(labeling_sets, theta, f_theta)
        fast = AssignmentIndex(dense)

        # neighbor counts agree exactly (integers, so plain equality)
        assert np.array_equal(
            dense.neighbor_counts(batch), fast.neighbor_counts(batch)
        )

        ref_labels, ref_best = dense_assign_with_scores(dense, batch)
        assert np.array_equal(dense.assign(batch), ref_labels)

        # pruned tier
        labels, best = fast.assign_with_scores(batch, block_size=block_size)
        assert_bitwise_equal(ref_labels, ref_best, labels, best)

        # native tier(s)
        for kernels in ASSIGN_KERNELS:
            labels, best = fast.assign_with_scores(
                batch, block_size=block_size, kernels=kernels
            )
            assert_bitwise_equal(ref_labels, ref_best, labels, best)

        # the scalar §4.6 labeler agrees point for point
        labeler = ClusterLabeler(
            labeling_sets, theta=theta, f=lambda _t: f_theta
        )
        assert fast.assign(batch).tolist() == [
            labeler.assign(p) for p in batch
        ]

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", None]),
                st.sampled_from(["x", "y", None]),
                st.sampled_from(["1", "2", "3", None]),
            ),
            min_size=1,
            max_size=12,
        ),
        split=st.integers(min_value=1, max_value=11),
        theta=st.sampled_from(THETAS),
    )
    def test_records_with_missing_values(self, rows, split, theta):
        """Categorical records (``None`` = missing) agree across tiers."""
        schema = CategoricalSchema(["f0", "f1", "f2"])
        records = [
            CategoricalRecord(
                schema, [MISSING if v is None else v for v in row]
            )
            for row in rows
        ]
        split = min(split, len(records))
        labeling_sets = [records[:split], records[split:]]
        if all(len(li) == 0 for li in labeling_sets):
            return
        f_theta = (1 - theta) / (1 + theta)
        dense = LabelingIndex(labeling_sets, theta, f_theta)
        fast = AssignmentIndex(dense)
        # query with the records themselves plus an all-missing one
        batch = records + [CategoricalRecord(schema, [MISSING] * 3)]
        ref_labels, ref_best = dense_assign_with_scores(dense, batch)
        labels, best = fast.assign_with_scores(batch)
        assert_bitwise_equal(ref_labels, ref_best, labels, best)
        for kernels in ASSIGN_KERNELS:
            labels, best = fast.assign_with_scores(batch, kernels=kernels)
            assert_bitwise_equal(ref_labels, ref_best, labels, best)

    def test_outlier_short_circuit(self):
        """Zero-overlap points label -1 without touching any arithmetic."""
        dense = LabelingIndex(
            [[Transaction({1, 2})], [Transaction({3, 4})]], 0.5, 0.4
        )
        fast = AssignmentIndex(dense)
        batch = [Transaction({99, 100}), Transaction(set()), Transaction({1, 2})]
        labels, best = fast.assign_with_scores(batch)
        assert labels.tolist() == [-1, -1, 0]
        assert best[:2].tolist() == [0.0, 0.0]
        assert best[2] > 0.0

    def test_empty_batch_every_tier(self):
        dense = LabelingIndex([[Transaction({1})]], 0.5, 0.4)
        fast = AssignmentIndex(dense)
        assert fast.assign([]).shape == (0,)
        for kernels in ASSIGN_KERNELS:
            labels, best = fast.assign_with_scores([], kernels=kernels)
            assert labels.shape == (0,) and best.shape == (0,)

    def test_pickle_roundtrip_preserves_assignments(self):
        """The index ships through pool payloads; behaviour must survive."""
        dense = LabelingIndex(
            [[Transaction({1, 2, 3}), Transaction({2, 3, 4})],
             [Transaction({7, 8})]],
            0.4,
            0.4,
        )
        fast = AssignmentIndex(dense)
        batch = [Transaction({1, 2}), Transaction({7, 8}), Transaction({50})]
        before = fast.assign_with_scores(batch)
        clone = pickle.loads(pickle.dumps(fast))
        assert clone._rep_t is None  # the scipy handle never travels
        after = clone.assign_with_scores(batch)
        assert_bitwise_equal(before[0], before[1], after[0], after[1])


# -- backend resolution and engine wiring -------------------------------------

CLUSTER_A = [Transaction({1, 2, 3}), Transaction({1, 2, 4})]
CLUSTER_B = [Transaction({7, 8, 9}), Transaction({7, 8, 10})]


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown assign backend"):
            resolve_assign_backend("turbo")

    def test_dense_and_pruned_never_probe(self):
        assert resolve_assign_backend("dense") == ("dense", None)
        assert resolve_assign_backend("pruned") == ("pruned", None)

    def test_auto_resolves_to_fast_tier(self):
        backend, kernels = resolve_assign_backend("auto")
        assert backend in ("pruned", "native")
        if backend == "native":
            assert hasattr(kernels, "assign_block")
        else:
            assert kernels is None

    def test_native_degrades_with_warning_when_unavailable(self, monkeypatch):
        import repro.native

        monkeypatch.setattr(repro.native, "get_kernels", lambda *a: None)
        with pytest.warns(RuntimeWarning, match="falling back to 'pruned'"):
            backend, kernels = resolve_assign_backend("native")
        assert backend == "pruned" and kernels is None

    @pytest.mark.skipif(not ASSIGN_KERNELS, reason="no native assign kernel")
    def test_native_resolves_when_available(self):
        backend, kernels = resolve_assign_backend("native")
        assert backend == "native"
        assert hasattr(kernels, "assign_block")


class TestEngineBackends:
    def engine_backends(self):
        backends = ["dense", "pruned"]
        if ASSIGN_KERNELS:
            backends.append("native")
        return backends

    def test_every_backend_matches_the_labeler(self):
        model = make_model([CLUSTER_A, CLUSTER_B])
        labeler = model.labeler()
        batch = [
            Transaction({1, 2}), Transaction({7, 8}), Transaction({42}),
            Transaction({1, 2, 7, 8}), Transaction(set()),
        ]
        expected = labeler.assign_all(batch).tolist()
        for backend in self.engine_backends():
            engine = AssignmentEngine(
                model, assign_backend=backend, cache_size=0
            )
            assert engine.assign_batch(batch).tolist() == expected
            assert engine.assign_backend == backend

    def test_backend_gauge_marks_the_active_tier(self):
        engine = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), assign_backend="pruned"
        )
        gauges = engine.metrics.registry.snapshot()["gauges"]
        assert gauges["serve.assign.backend.pruned"] == 1
        assert gauges["serve.assign.backend.dense"] == 0
        assert gauges["serve.assign.backend.native"] == 0
        assert gauges["serve.assign.backend.fallback"] == 0

    def test_fallback_tier_for_custom_similarity(self):
        from repro.core.similarity import SimilarityTable

        table = SimilarityTable({("p", "a1"): 0.9})
        model = make_model([["a1"], ["b1"]], theta=0.5, similarity=table)
        engine = AssignmentEngine(model, assign_backend="auto")
        assert engine.assign_backend == "fallback"
        assert engine.fast_index is None
        gauges = engine.metrics.registry.snapshot()["gauges"]
        assert gauges["serve.assign.backend.fallback"] == 1

    def test_dense_backend_builds_no_index(self):
        engine = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), assign_backend="dense"
        )
        assert engine.fast_index is None
        assert engine.assign_backend == "dense"

    def test_prebuilt_index_is_reused(self):
        model = make_model([CLUSTER_A, CLUSTER_B])
        donor = AssignmentEngine(model, assign_backend="pruned")
        engine = AssignmentEngine(
            model, assign_backend="pruned", prebuilt_index=donor.fast_index
        )
        assert engine.fast_index is donor.fast_index
        assert engine.assign(Transaction({1, 2})) == 0

    @settings(max_examples=25, deadline=None)
    @given(
        sets=labeling_sets_strategy,
        points=points_strategy,
        theta=st.sampled_from(THETAS),
    )
    def test_engine_tiers_agree_on_random_inputs(self, sets, points, theta):
        labeling_sets = [[Transaction(s) for s in li] for li in sets]
        model = make_model(labeling_sets, theta=theta)
        batch = [Transaction(p) for p in points]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = {
                backend: AssignmentEngine(
                    model, assign_backend=backend, cache_size=0
                ).assign_batch(batch).tolist()
                for backend in ("dense", "pruned", "native")
            }
        assert results["pruned"] == results["dense"]
        assert results["native"] == results["dense"]
