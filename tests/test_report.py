"""Tests for the markdown report generator."""

import pytest

from repro.core.pipeline import RockPipeline
from repro.data.records import CategoricalDataset, CategoricalSchema
from repro.eval.report import clustering_report


@pytest.fixture(scope="module")
def run():
    schema = CategoricalSchema(["a", "b", "c"])
    rows = [["x", "y", "z"]] * 8 + [["p", "q", "r"]] * 6
    dataset = CategoricalDataset(schema, rows, labels=["L1"] * 8 + ["L2"] * 6)
    result = RockPipeline(k=2, theta=0.9, seed=0).fit(dataset)
    return dataset, result


class TestClusteringReport:
    def test_minimal_report(self, run):
        dataset, result = run
        text = clustering_report(result)
        assert text.startswith("# ROCK clustering report")
        assert "## Clusters" in text
        assert "## Quality" not in text  # no truth given

    def test_with_truth_and_dataset(self, run):
        dataset, result = run
        text = clustering_report(
            result,
            truth=dataset.labels(),
            dataset=dataset,
            parameters={"theta": 0.9, "k": 2},
        )
        assert "## Parameters" in text
        assert "| theta | 0.900 |" in text
        assert "## Composition vs ground truth" in text
        assert "## Quality" in text
        assert "purity" in text
        assert "## Cluster characteristics" in text
        assert "(a,x,...)" or True  # characterisation table present
        assert "| a | x | 1.000 |" in text

    def test_quality_values_sane(self, run):
        dataset, result = run
        text = clustering_report(result, truth=dataset.labels())
        purity_line = [l for l in text.splitlines() if l.startswith("| purity")][0]
        assert float(purity_line.split("|")[2]) == pytest.approx(1.0)

    def test_truth_length_mismatch_rejected(self, run):
        dataset, result = run
        with pytest.raises(ValueError, match="align"):
            clustering_report(result, truth=["a"])

    def test_max_characterized_clusters(self, run):
        dataset, result = run
        text = clustering_report(result, dataset=dataset, max_characterized_clusters=1)
        assert "### Cluster 1" in text
        assert "### Cluster 2" not in text

    def test_custom_title(self, run):
        dataset, result = run
        text = clustering_report(result, title="Mushroom run 7")
        assert text.startswith("# Mushroom run 7")
