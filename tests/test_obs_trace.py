"""Tests for repro.obs.trace: span nesting, exception safety, round trips."""

import threading

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer, peak_rss_bytes


class TestSpanNesting:
    def test_single_span_records_timings(self):
        tracer = Tracer()
        with tracer.span("work", n=3) as span:
            pass
        assert span.name == "work"
        assert span.attrs == {"n": 3}
        assert span.wall_seconds >= 0.0
        assert span.cpu_seconds >= 0.0
        assert span.error is None
        assert tracer.spans() == [span]

    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("inner_b"):
                pass
        roots = tracer.spans()
        assert [s.name for s in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        assert tracer.span_names() == {"outer", "inner_a", "inner_b", "leaf"}

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans()] == ["first", "second"]

    def test_span_names_is_a_set(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a"):
                pass
        assert tracer.span_names() == {"a"}


class TestExceptionSafety:
    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        outer = tracer.spans()[0]
        failing = outer.children[0]
        assert failing.error == "ValueError: boom"
        assert outer.error == "ValueError: boom"
        # timings are still filled in on the error path
        assert failing.wall_seconds >= 0.0

    def test_stack_unwinds_after_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("x")
        with tracer.span("good"):
            pass
        # "good" is a new root, not a child of the failed span
        assert [s.name for s in tracer.spans()] == ["bad", "good"]
        assert tracer.spans()[0].children == []


class TestRegistry:
    def test_tracer_owns_a_registry_by_default(self):
        tracer = Tracer()
        assert isinstance(tracer.registry, MetricsRegistry)

    def test_tracer_accepts_shared_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        assert tracer.registry is registry
        tracer.registry.inc("x")
        assert registry.snapshot()["counters"]["x"] == 1


class TestSerialization:
    def test_to_dict_from_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", mode="parallel"):
            with tracer.span("inner", n=5):
                pass
        dumped = tracer.to_dicts()
        restored = [Span.from_dict(d) for d in dumped]
        assert [s.to_dict() for s in restored] == dumped
        assert restored[0].name == "outer"
        assert restored[0].attrs == {"mode": "parallel"}
        assert restored[0].children[0].attrs == {"n": 5}

    def test_iter_spans_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.spans()[0]
        assert [s.name for s in root.iter_spans()] == ["root", "a", "a1", "b"]


class TestThreading:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(label):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # both spans are roots: neither thread saw the other's stack
        assert {s.name for s in tracer.spans()} == {"t0", "t1"}
        assert all(not s.children for s in tracer.spans())


def test_peak_rss_bytes_is_plausible():
    rss = peak_rss_bytes()
    # more than a megabyte, less than a terabyte
    assert 1 << 20 < rss < 1 << 40
