"""Crash-safety of the sharded fit: worker retries, degrade, resume."""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core import rock
from repro.datasets import small_synthetic_basket
from repro.shard import RunDirectory, shard_fit
from repro.shard.checkpoint import KILL_ENV


@pytest.fixture(scope="module")
def basket():
    return small_synthetic_basket(
        n_clusters=3, cluster_size=40, n_outliers=8, seed=7
    )


def _merge_key(result):
    return [
        (m.left, m.right, m.merged, float(m.goodness).hex(), m.size)
        for m in result.merges
    ]


F_THETA = (1 - 0.5) / (1 + 0.5)


class TestRunDirectory:
    def test_unit_round_trip(self, tmp_path):
        run = RunDirectory(tmp_path / "run")
        assert not run.begin({"theta": 0.5})
        assert not run.unit_done("block-00000")
        run.publish_unit("block-00000", {"x": np.arange(5)})
        assert run.unit_done("block-00000")
        np.testing.assert_array_equal(
            run.load_unit("block-00000")["x"], np.arange(5)
        )

    def test_matching_fingerprint_resumes(self, tmp_path):
        run = RunDirectory(tmp_path / "run")
        run.begin({"theta": 0.5})
        run.publish_unit("block-00000", {"x": np.arange(3)})
        again = RunDirectory(tmp_path / "run")
        assert again.begin({"theta": 0.5})
        assert again.unit_done("block-00000")

    def test_changed_fingerprint_wipes_units(self, tmp_path):
        run = RunDirectory(tmp_path / "run")
        run.begin({"theta": 0.5})
        run.publish_unit("block-00000", {"x": np.arange(3)})
        again = RunDirectory(tmp_path / "run")
        assert not again.begin({"theta": 0.7})
        assert not again.unit_done("block-00000")


class TestWorkerCrash:
    def test_killed_worker_is_retried(self, tmp_path, basket, monkeypatch):
        ds = basket.transactions
        reference = rock(ds, k=4, theta=0.5, fit_mode="fused")
        monkeypatch.setenv(KILL_ENV, "block-00002")
        sharded = shard_fit(
            ds, k=4, theta=0.5, f_theta=F_THETA, workers=2,
            block_rows=16, spill_dir=tmp_path / "spill", max_retries=2,
        )
        assert sharded.retries >= 1
        assert not sharded.degraded
        assert _merge_key(sharded.result) == _merge_key(reference)
        assert sharded.result.clusters == reference.clusters

    def test_exhausted_retries_degrade_to_coordinator(
        self, tmp_path, basket, monkeypatch
    ):
        ds = basket.transactions
        reference = rock(ds, k=4, theta=0.5, fit_mode="fused")
        monkeypatch.setenv(KILL_ENV, "block-00002:2")
        with pytest.warns(RuntimeWarning, match="coordinator process"):
            sharded = shard_fit(
                ds, k=4, theta=0.5, f_theta=F_THETA, workers=2,
                block_rows=16, spill_dir=tmp_path / "spill", max_retries=1,
            )
        assert sharded.degraded
        assert sharded.retries == 2
        assert _merge_key(sharded.result) == _merge_key(reference)
        assert sharded.result.clusters == reference.clusters


RESUME_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.datasets import small_synthetic_basket
    from repro.shard import shard_fit

    spill = sys.argv[1]
    ds = small_synthetic_basket(
        n_clusters=3, cluster_size=40, n_outliers=8, seed=7
    ).transactions
    fit = shard_fit(
        ds, k=4, theta=0.5, f_theta=(1 - 0.5) / (1 + 0.5),
        block_rows=16, spill_dir=spill,
    )
    labels = np.asarray(fit.result.labels(), dtype=np.int64)
    print("RESUMED", fit.resumed_units)
    print("LABELS", labels.tobytes().hex())
    """
)


class TestCoordinatorResume:
    def test_sigkilled_fit_resumes_byte_identical(self, tmp_path):
        spill = tmp_path / "spill"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = {
            **os.environ,
            "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", ""),
        }

        # run 1: the coordinator SIGKILLs itself at block-00005
        crashed = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT, str(spill)],
            env={**env, KILL_ENV: "block-00005"},
            capture_output=True,
            text=True,
        )
        assert crashed.returncode == -signal.SIGKILL
        done = sorted(p.name for p in spill.iterdir() if p.suffix == ".done")
        assert done, "some block units must have completed before the kill"

        # run 2: same spill dir, no kill -- resumes the completed units
        resumed = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT, str(spill)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert resumed.returncode == 0, resumed.stderr
        lines = dict(
            line.split(" ", 1) for line in resumed.stdout.splitlines()
        )
        assert int(lines["RESUMED"]) >= len(done)

        # and a fresh, never-crashed run produces byte-identical labels
        fresh = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT, str(tmp_path / "fresh")],
            env=env,
            capture_output=True,
            text=True,
        )
        assert fresh.returncode == 0, fresh.stderr
        fresh_lines = dict(
            line.split(" ", 1) for line in fresh.stdout.splitlines()
        )
        assert int(fresh_lines["RESUMED"]) == 0
        assert lines["LABELS"] == fresh_lines["LABELS"]

    def test_in_process_resume_counts_units(self, tmp_path, basket):
        ds = basket.transactions
        spill = tmp_path / "spill"
        first = shard_fit(
            ds, k=4, theta=0.5, f_theta=F_THETA, block_rows=16,
            spill_dir=spill,
        )
        assert first.resumed_units == 0
        second = shard_fit(
            ds, k=4, theta=0.5, f_theta=F_THETA, block_rows=16,
            spill_dir=spill,
        )
        assert second.resumed_units > 0
        assert _merge_key(first.result) == _merge_key(second.result)

    def test_changed_config_does_not_resume(self, tmp_path, basket):
        ds = basket.transactions
        spill = tmp_path / "spill"
        shard_fit(
            ds, k=4, theta=0.5, f_theta=F_THETA, block_rows=16,
            spill_dir=spill,
        )
        changed = shard_fit(
            ds, k=4, theta=0.6, f_theta=(1 - 0.6) / (1 + 0.6),
            block_rows=16, spill_dir=spill,
        )
        assert changed.resumed_units == 0
        reference = rock(ds, k=4, theta=0.6, fit_mode="fused")
        assert changed.result.clusters == reference.clusters
