"""Backend fallback: native modes degrade, never crash.

The native kernels are an acceleration, not a requirement: a checkout
without numba (or without any working backend at all) must keep every
existing behaviour byte for byte.  Forced ``native`` modes that cannot
run fall back to the reference paths with exactly one warning; ``auto``
modes stay silent.  These tests simulate the failure modes -- numba
missing (an import hook, which is also the true state of a machine
without the ``[native]`` extra), every backend disabled via
``REPRO_NATIVE=0``, custom goodness callables, and ``min_neighbors > 1``
-- and pin the warning counts, the fallback targets, and the recorded
backend observability (``PipelineResult.backends``, model metadata,
``fit.backend.*`` gauges).
"""

import builtins
import sys
import warnings

import numpy as np
import pytest

import repro.native as native
from repro.core.goodness import naive_goodness
from repro.core.merge import resolve_merge_method
from repro.core.pipeline import RockPipeline
from repro.core.rock import rock
from repro.data.transactions import Transaction, TransactionDataset
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def reset_probe_cache():
    """Every test starts (and leaves) with a cold probe cache."""
    native._reset_for_tests()
    yield
    native._reset_for_tests()


@pytest.fixture
def no_backends(monkeypatch):
    """Disable every native tier, as on a machine with no toolchain."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    native._reset_for_tests()


@pytest.fixture
def no_numba(monkeypatch):
    """Make ``import numba`` fail even if the extra is installed."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba blocked by test")
        return real_import(name, *args, **kwargs)

    monkeypatch.delitem(sys.modules, "numba", raising=False)
    monkeypatch.delitem(sys.modules, "repro.native.numba_backend", raising=False)
    monkeypatch.setattr(builtins, "__import__", blocked)
    native._reset_for_tests()


def baskets(n_clusters: int = 3, per: int = 8, seed: int = 3):
    rng = np.random.default_rng(seed)
    txns = []
    for c in range(n_clusters):
        pool = np.arange(c * 12, c * 12 + 12)
        for _ in range(per):
            txns.append(Transaction(rng.choice(pool, 6, replace=False).tolist()))
    return TransactionDataset(txns)


class TestProbe:
    def test_numba_absent_probe_returns_none(self, no_numba):
        assert native.get_kernels("numba") is None
        # auto never promotes without numba unless REPRO_NATIVE opts in
        assert not native.auto_native() or native.available_backend() == "numba"

    def test_numba_absent_is_not_fatal(self, no_numba):
        """The full fit still runs (C tier or pure-Python fallback)."""
        data = baskets()
        result = rock(data, k=3, theta=0.5)
        assert len(result.clusters) >= 1

    def test_disabled_env_kills_every_tier(self, no_backends):
        assert native.get_kernels() is None
        assert native.available_backend() is None
        assert not native.native_available()
        assert not native.auto_native()
        assert native.backend_info() == {"backend": None, "disabled": True}

    def test_backend_env_restricts_probe(self, monkeypatch):
        cext = native.get_kernels("cext")
        if cext is None:
            pytest.skip("C tier unavailable")
        monkeypatch.setenv("REPRO_NATIVE_BACKEND", "cext")
        native._reset_for_tests()
        assert native.available_backend() == "cext"

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown native backend"):
            native.get_kernels("turbo")

    def test_broken_kernels_degrade_silently(self, monkeypatch):
        """A tier whose probe blows up is treated as absent."""

        def boom(name):
            raise RuntimeError("toolchain on fire")

        monkeypatch.setattr(native, "_probe", boom, raising=True)
        # get_kernels propagates nothing: _probe is wrapped per-tier, so
        # patching the whole probe simulates total breakage
        with pytest.raises(RuntimeError):
            native.get_kernels()
        # the real guard lives inside _probe: a backend loader that
        # raises is recorded as None
        monkeypatch.undo()
        native._reset_for_tests()

        class BrokenLoader:
            @staticmethod
            def load_kernels():
                raise RuntimeError("jit exploded")

        monkeypatch.setitem(
            sys.modules, "repro.native.numba_backend", BrokenLoader
        )
        assert native.get_kernels("numba") is None


class TestForcedNativeFallsBack:
    def test_merge_custom_goodness_single_warning(self, recwarn):
        custom = lambda c, ni, nj, f: float(c)  # noqa: E731
        with pytest.warns(RuntimeWarning, match="custom goodness"):
            resolved = resolve_merge_method("native", custom)
        assert resolved == "heap"

    def test_merge_no_backend_single_warning(self, no_backends):
        with pytest.warns(RuntimeWarning, match="no native backend"):
            resolved = resolve_merge_method("native")
        assert resolved == "fast"

    def test_fit_no_backend_single_warning(self, no_backends):
        data = baskets()
        reference = rock(data, k=3, theta=0.5, fit_mode="fused")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = rock(data, k=3, theta=0.5, fit_mode="native")
        native_warnings = [
            w for w in caught if "fit_mode='native'" in str(w.message)
        ]
        assert len(native_warnings) == 1
        assert result.clusters == reference.clusters

    def test_fit_min_neighbors_single_warning(self, no_backends):
        data = baskets()
        pipeline = RockPipeline(
            k=3, theta=0.5, min_neighbors=2, fit_mode="native", seed=1
        )
        reference = RockPipeline(
            k=3, theta=0.5, min_neighbors=2, fit_mode="parallel", seed=1
        ).fit(data)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = pipeline.fit(data)
        native_warnings = [
            w for w in caught if "min_neighbors" in str(w.message)
        ]
        assert len(native_warnings) == 1
        assert result.clusters == reference.clusters
        assert np.array_equal(result.labels, reference.labels)

    def test_pipeline_forced_native_no_backend_never_raises(self, no_backends):
        data = baskets()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = RockPipeline(
                k=3, theta=0.5, fit_mode="native", merge_method="native", seed=1
            ).fit(data)
        assert result.backends["fit"] == "fused"
        assert result.backends["merge"] == "fast"


class TestAutoStaysSilent:
    def test_auto_without_opt_in_is_quiet(self, no_numba):
        """Plain checkout: auto modes never warn, never go native."""
        data = baskets()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            result = RockPipeline(k=3, theta=0.5, seed=1).fit(data)
        assert not result.backends["fit"].startswith("native")
        assert not result.backends["merge"].startswith("native")

    def test_auto_disabled_env_is_quiet(self, no_backends):
        data = baskets()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = RockPipeline(k=3, theta=0.5, seed=1).fit(data)
        assert result.backends == {"fit": "auto", "merge": "fast"}


class TestObservability:
    def test_gauges_and_span_attrs_reference_path(self, no_backends):
        tracer = Tracer()
        data = baskets()
        RockPipeline(k=3, theta=0.5, seed=1).fit(data, tracer=tracer)
        gauges = tracer.registry.snapshot()["gauges"]
        assert gauges["fit.backend.native_fit"] == 0
        assert gauges["fit.backend.native_merge"] == 0
        root = next(s for s in tracer.spans() if s.name == "fit")
        assert root.attrs["fit_backend"] == "auto"
        assert root.attrs["merge_backend"] == "fast"

    def test_model_metadata_records_backends(self, no_backends):
        from repro.serve.model import model_from_result

        data = baskets()
        pipeline = RockPipeline(k=3, theta=0.5, seed=1)
        result = pipeline.fit(data)
        model = model_from_result(pipeline, result, points=data)
        assert model.metadata["backends"] == result.backends
        assert model.metadata["backends"]["merge"] == "fast"

    def test_naive_goodness_auto_merge(self, no_backends):
        """Built-in naive goodness still routes through fast under auto."""
        assert resolve_merge_method("auto", naive_goodness) == "fast"


class TestStreamRunnerRefit:
    def test_stream_clusterer_with_native_pipeline(self, no_backends):
        """A native-mode pipeline inside the stream runner degrades too."""
        from repro.stream.runner import StreamClusterer

        pipeline = RockPipeline(k=2, theta=0.5, fit_mode="native", seed=1)
        clusterer = StreamClusterer(
            pipeline, reservoir_size=24, warmup=12, seed=0
        )
        rng = np.random.default_rng(0)
        records = [
            Transaction(
                rng.choice(
                    np.arange(12) if rng.random() < 0.5 else np.arange(12, 24),
                    6,
                    replace=False,
                ).tolist()
            )
            for _ in range(30)
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            clusterer.process(records)
        assert clusterer.model is not None
        assert clusterer.model.metadata["backends"]["fit"] == "fused"
