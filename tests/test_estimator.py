"""Tests for the sklearn-style estimator facade."""

import numpy as np
import pytest

from repro.data.records import CategoricalDataset, CategoricalSchema
from repro.data.transactions import TransactionDataset
from repro.estimator import RockClusterer


class TestProtocol:
    def test_fit_returns_self_and_sets_attributes(self):
        model = RockClusterer(n_clusters=2, theta=0.4)
        out = model.fit(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {7, 8, 9}, {7, 8, 10}, {7, 9, 10}]
        )
        assert out is model
        assert model.n_clusters_ == 2
        assert sorted(map(sorted, model.clusters_)) == [[0, 1, 2], [3, 4, 5]]
        assert model.labels_.tolist() == [0, 0, 0, 1, 1, 1]
        assert model.outlier_indices_ == []

    def test_fit_predict(self):
        labels = RockClusterer(n_clusters=2, theta=0.4).fit_predict(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {7, 8, 9}, {7, 8, 10}, {7, 9, 10}]
        )
        assert isinstance(labels, np.ndarray)
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]

    def test_get_set_params_round_trip(self):
        model = RockClusterer(n_clusters=3, theta=0.6)
        params = model.get_params()
        assert params["n_clusters"] == 3
        model.set_params(theta=0.7, random_state=5)
        assert model.theta == 0.7
        assert model.random_state == 5

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            RockClusterer().set_params(bogus=1)

    def test_y_is_ignored(self):
        model = RockClusterer(n_clusters=2, theta=0.4)
        model.fit(
            [{1, 2}, {1, 2, 3}, {1, 2, 4}, {8, 9}, {8, 9, 10}, {8, 9, 11}],
            y=[0, 0, 0, 1, 1, 1],
        )
        assert model.n_clusters_ == 2

    def test_random_state_determinism(self):
        data = [{1, 2, i} for i in range(3, 30)] + [{50, 51, i} for i in range(52, 79)]
        a = RockClusterer(n_clusters=2, theta=0.3, sample_size=30, random_state=1)
        b = RockClusterer(n_clusters=2, theta=0.3, sample_size=30, random_state=1)
        assert a.fit_predict(data).tolist() == b.fit_predict(data).tolist()


class TestInputCoercion:
    def test_binary_matrix_input(self):
        X = np.array(
            [
                [1, 1, 1, 0, 0, 0, 0, 0],
                [1, 1, 0, 1, 0, 0, 0, 0],
                [1, 0, 1, 1, 0, 0, 0, 0],
                [0, 0, 0, 0, 1, 1, 1, 0],
                [0, 0, 0, 0, 1, 1, 0, 1],
                [0, 0, 0, 0, 1, 0, 1, 1],
            ]
        )
        labels = RockClusterer(n_clusters=2, theta=0.4).fit_predict(X)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_non_2d_array_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            RockClusterer().fit(np.zeros(5))

    def test_transaction_dataset_passthrough(self):
        ds = TransactionDataset(
            [{1, 2}, {1, 2, 3}, {1, 2, 4}, {8, 9}, {8, 9, 10}, {8, 9, 11}]
        )
        model = RockClusterer(n_clusters=2, theta=0.4).fit(ds)
        assert model.n_clusters_ == 2

    def test_categorical_dataset_passthrough(self):
        schema = CategoricalSchema(["a", "b"])
        ds = CategoricalDataset(schema, [["x", "y"]] * 4 + [["p", "q"]] * 4)
        model = RockClusterer(n_clusters=2, theta=0.9).fit(ds)
        assert sorted(map(len, model.clusters_)) == [4, 4]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RockClusterer().fit([])

    def test_nonsense_input_rejected(self):
        with pytest.raises(TypeError):
            RockClusterer().fit(42)

    def test_docstring_example(self):
        import doctest

        import repro.estimator as module

        results = doctest.testmod(module)
        assert results.attempted >= 2
        assert results.failed == 0
