"""Tests for the mushroom replica generator."""

import pytest

from repro.core.encoding import record_to_transaction
from repro.datasets.mushroom import (
    ATTRIBUTES,
    EDIBLE,
    EDIBLE_ODORS,
    IDENTITY_ATTRIBUTES,
    POISONOUS,
    POISONOUS_ODORS,
    TABLE3_ROCK_CLUSTERS,
    build_profiles,
    generate_mushroom,
    small_mushroom,
    _codeword,
)


@pytest.fixture(scope="module")
def data():
    return small_mushroom(seed=0)


class TestSpec:
    def test_table3_totals(self):
        assert sum(e for e, _ in TABLE3_ROCK_CLUSTERS) == 4208
        assert sum(p for _, p in TABLE3_ROCK_CLUSTERS) == 3916
        assert sum(e + p for e, p in TABLE3_ROCK_CLUSTERS) == 8124
        assert len(TABLE3_ROCK_CLUSTERS) == 21

    def test_exactly_one_mixed_cluster(self):
        mixed = [(e, p) for e, p in TABLE3_ROCK_CLUSTERS if e and p]
        assert mixed == [(32, 72)]

    def test_22_attributes(self):
        assert len(ATTRIBUTES) == 22


class TestCodeword:
    def test_cross_family_distance_at_least_3(self):
        for fa in range(16):
            for fb in range(fa + 1, 16):
                for ma in (0, 1):
                    for mb in (0, 1):
                        a = _codeword(fa, ma)
                        b = _codeword(fb, mb)
                        distance = sum(x != y for x, y in zip(a, b))
                        assert distance >= 3, (fa, ma, fb, mb)

    def test_sibling_distance_exactly_2(self):
        for family in range(16):
            a = _codeword(family, 0)
            b = _codeword(family, 1)
            assert sum(x != y for x, y in zip(a, b)) == 2

    def test_too_many_families_rejected(self):
        with pytest.raises(ValueError):
            _codeword(25, 0)
        with pytest.raises(ValueError):
            _codeword(0, 2)


class TestProfiles:
    def test_odor_respects_class(self):
        profiles = build_profiles(seed=0)
        for profile in profiles:
            values, _ = profile.distributions["odor"]
            if profile.is_mixed:
                assert values[0] in EDIBLE_ODORS
                assert values[1] in POISONOUS_ODORS
            elif profile.n_edible:
                assert all(v in EDIBLE_ODORS for v in values)
            else:
                assert all(v in POISONOUS_ODORS for v in values)

    def test_identity_attributes_deterministic(self):
        profiles = build_profiles(seed=0)
        for profile in profiles:
            for attribute in IDENTITY_ATTRIBUTES:
                values, _ = profile.distributions[attribute]
                assert len(values) == 1

    def test_every_attribute_covered_by_distribution_or_chain(self):
        profiles = build_profiles(seed=0)
        for profile in profiles:
            chain_attributes = set(profile.modes[0])
            covered = set(profile.distributions) | chain_attributes
            assert covered == set(ATTRIBUTES)
            # chain and distributions never overlap
            assert not (set(profile.distributions) & chain_attributes)

    def test_consecutive_modes_differ_in_exactly_2_attributes(self):
        profiles = build_profiles(seed=0)
        for profile in profiles:
            modes = profile.modes
            assert len(modes) >= 2
            for a, b in zip(modes, modes[1:]):
                assert set(a) == set(b)
                differing = sum(1 for attr in a if a[attr] != b[attr])
                assert differing == 2

    def test_chain_extremes_farther_than_sibling_offset(self):
        """The euclidean-confusability property: a big cluster's extreme
        modes differ in more attributes than the 3 separating siblings."""
        profiles = build_profiles(seed=0)
        big = max(profiles, key=lambda p: p.size)
        first, last = big.modes[0], big.modes[-1]
        differing = sum(1 for attr in first if first[attr] != last[attr])
        assert differing >= 6

    def test_any_two_clusters_differ_deterministically_in_3_attributes(self):
        """The separation guarantee: every cluster pair differs in >= 3
        deterministic (single-value) attributes, capping cross-cluster
        Jaccard at 19/25 < 0.8."""
        profiles = build_profiles(seed=0)
        deterministic = []
        for profile in profiles:
            deterministic.append({
                a: v[0]
                for a, (v, _) in profile.distributions.items()
                if len(v) == 1
            })
        for i in range(len(profiles)):
            for j in range(i + 1, len(profiles)):
                shared = set(deterministic[i]) & set(deterministic[j])
                differing = sum(
                    1 for a in shared if deterministic[i][a] != deterministic[j][a]
                )
                assert differing >= 3, (i, j)

    def test_siblings_share_variable_distributions(self):
        from repro.datasets.mushroom import (
            IDENTITY_ATTRIBUTES,
            TABLE3_ROCK_CLUSTERS,
            _assign_families,
        )

        profiles = build_profiles(seed=0)
        families = _assign_families(TABLE3_ROCK_CLUSTERS)
        by_family = {}
        for profile, (family, _) in zip(profiles, families):
            by_family.setdefault(family, []).append(profile)
        paired = [members for members in by_family.values() if len(members) == 2]
        assert paired  # opposite-class pairs exist
        for a, b in paired:
            for attribute in a.distributions:
                if attribute in IDENTITY_ATTRIBUTES or attribute == "odor":
                    continue
                assert a.distributions[attribute] == b.distributions[attribute]

    def test_invalid_cluster_spec(self):
        with pytest.raises(ValueError):
            build_profiles(((0, 0),))
        with pytest.raises(ValueError):
            build_profiles(tuple([(1, 0)] * 26))


class TestGeneration:
    def test_record_counts(self, data):
        spec_total = sum(e + p for e, p in [
            (max(1, e // 8) if e else 0, max(1, p // 8) if p else 0)
            for e, p in TABLE3_ROCK_CLUSTERS
        ])
        assert len(data.dataset) == spec_total
        assert len(data.class_labels) == spec_total
        assert len(data.cluster_labels) == spec_total

    def test_class_follows_odor_exactly(self, data):
        odor_index = data.dataset.schema.index("odor")
        for record, label in zip(data.dataset, data.class_labels):
            odor = record.values[odor_index]
            if label == EDIBLE:
                assert odor in EDIBLE_ODORS
            else:
                assert odor in POISONOUS_ODORS

    def test_cluster_class_quotas_exact(self, data):
        from collections import Counter

        per_cluster = Counter()
        for cluster, label in zip(data.cluster_labels, data.class_labels):
            per_cluster[(cluster, label)] += 1
        for profile in data.profiles:
            assert per_cluster.get((profile.index, EDIBLE), 0) == profile.n_edible
            assert per_cluster.get((profile.index, POISONOUS), 0) == profile.n_poisonous

    def test_cross_cluster_records_below_neighbor_threshold(self, data):
        """Any two records from different latent clusters differ on >= 4
        identity attributes, so their Jaccard stays below 0.8 (the
        separation guarantee the replica is built around)."""
        from repro.core.similarity import JaccardSimilarity

        sim = JaccardSimilarity()
        by_cluster = {}
        for i, c in enumerate(data.cluster_labels):
            by_cluster.setdefault(c, []).append(i)
        clusters = sorted(by_cluster)
        for a in clusters[:8]:
            for b in clusters[:8]:
                if a >= b:
                    continue
                ra = data.dataset[by_cluster[a][0]]
                rb = data.dataset[by_cluster[b][0]]
                assert sim(ra, rb) < 0.8

    def test_within_cluster_similarity_often_high(self, data):
        from repro.core.similarity import JaccardSimilarity

        sim = JaccardSimilarity()
        by_cluster = {}
        for i, c in enumerate(data.cluster_labels):
            by_cluster.setdefault(c, []).append(i)
        # take the largest cluster and check a good share of pairs pass 0.8
        largest = max(by_cluster.values(), key=len)[:20]
        high = 0
        total = 0
        for x in range(len(largest)):
            for y in range(x + 1, len(largest)):
                total += 1
                if sim(data.dataset[largest[x]], data.dataset[largest[y]]) >= 0.8:
                    high += 1
        assert high / total > 0.2

    def test_some_missing_stalk_root(self):
        big = generate_mushroom(
            cluster_spec=((200, 0), (0, 200)), missing_stalk_root_rate=0.05, seed=1
        )
        index = big.dataset.schema.index("stalk-root")
        missing = sum(1 for r in big.dataset if r.values[index] is None)
        assert 2 <= missing <= 50

    def test_deterministic(self):
        a = small_mushroom(seed=5)
        b = small_mushroom(seed=5)
        assert [r.values for r in a.dataset] == [r.values for r in b.dataset]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_mushroom(missing_stalk_root_rate=1.5)
