"""Tests for the criterion function and goodness measure (Sections 3.3, 4.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import (
    constant_f,
    criterion_value,
    default_f,
    expected_cross_links,
    expected_intra_links,
    goodness,
    intra_cluster_links,
    naive_goodness,
)
from repro.core.links import LinkTable


class TestDefaultF:
    def test_endpoints(self):
        # Section 3.3: f(1) = 0 (only self as neighbor), f(0) = 1
        assert default_f(1.0) == 0.0
        assert default_f(0.0) == 1.0

    def test_half(self):
        assert default_f(0.5) == pytest.approx(1 / 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            default_f(-0.1)
        with pytest.raises(ValueError):
            default_f(1.1)

    @settings(max_examples=50)
    @given(st.floats(0.0, 1.0))
    def test_monotone_decreasing(self, theta):
        if theta < 1.0:
            assert default_f(theta) > default_f(min(1.0, theta + 0.05)) - 1e-12


class TestConstantF:
    def test_ignores_theta(self):
        f = constant_f(0.25)
        assert f(0.1) == f(0.9) == 0.25

    def test_range_check(self):
        with pytest.raises(ValueError):
            constant_f(1.5)


class TestExpectedLinks:
    def test_theta_one_expected_links_is_n(self):
        # f = 0 => n^(1+0) = n, the paper's sanity check
        assert expected_intra_links(10, 0.0) == 10.0

    def test_theta_zero_expected_links_is_n_cubed(self):
        assert expected_intra_links(10, 1.0) == 1000.0

    def test_cross_links_additive_definition(self):
        value = expected_cross_links(3, 4, 0.5)
        assert value == pytest.approx(7.0**2 - 3.0**2 - 4.0**2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            expected_intra_links(-1, 0.5)
        with pytest.raises(ValueError):
            expected_cross_links(-1, 2, 0.5)

    @settings(max_examples=50)
    @given(st.integers(1, 500), st.integers(1, 500), st.floats(0.01, 1.0))
    def test_cross_links_positive_for_positive_f(self, ni, nj, f):
        assert expected_cross_links(ni, nj, f) > 0.0


class TestGoodness:
    def test_normalisation_divides_expectation(self):
        f = 1 / 3
        expected = expected_cross_links(5, 7, f)
        assert goodness(10, 5, 7, f) == pytest.approx(10 / expected)

    def test_zero_links_zero_goodness(self):
        assert goodness(0, 3, 3, 0.5) == 0.0

    def test_degenerate_f_zero(self):
        assert goodness(1, 3, 3, 0.0) == math.inf
        assert goodness(0, 3, 3, 0.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            goodness(-1, 2, 2, 0.5)
        with pytest.raises(ValueError):
            goodness(1, 0, 2, 0.5)

    def test_big_cluster_penalised(self):
        """Section 4.2's motivation: with equal cross links, merging with
        the smaller cluster is better."""
        assert goodness(10, 2, 3, 1 / 3) > goodness(10, 2, 30, 1 / 3)

    def test_naive_goodness_is_raw_count(self):
        assert naive_goodness(17, 2, 300, 0.5) == 17.0
        with pytest.raises(ValueError):
            naive_goodness(-1, 1, 1, 0.5)
        with pytest.raises(ValueError):
            naive_goodness(1, 0, 1, 0.5)

    @settings(max_examples=100)
    @given(
        st.integers(0, 1000),
        st.integers(1, 100),
        st.integers(1, 100),
        st.floats(0.05, 1.0),
    )
    def test_monotone_in_links(self, links, ni, nj, f):
        assert goodness(links + 1, ni, nj, f) > goodness(links, ni, nj, f)


class TestCriterion:
    def make_links(self):
        table = LinkTable(6)
        # cluster {0,1,2}: links 0-1: 2, 1-2: 1; cluster {3,4,5}: 3-4: 3
        table.increment(0, 1, 2)
        table.increment(1, 2, 1)
        table.increment(3, 4, 3)
        # a weak cross link that should NOT count intra
        table.increment(2, 3, 5)
        return table

    def test_intra_cluster_links(self):
        links = self.make_links()
        assert intra_cluster_links([0, 1, 2], links) == 3
        assert intra_cluster_links([3, 4, 5], links) == 3
        assert intra_cluster_links([0], links) == 0

    def test_criterion_value(self):
        links = self.make_links()
        f = 1 / 3
        expected = 3 * (3 / 3.0 ** (1 + 2 * f)) + 3 * (3 / 3.0 ** (1 + 2 * f))
        assert criterion_value([[0, 1, 2], [3, 4, 5]], links, f) == pytest.approx(expected)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            criterion_value([[]], self.make_links(), 0.5)

    def test_separating_unlinked_points_beats_lumping(self):
        """The Section 3.3 argument: E_l must penalise assigning points
        with few links between them to one big cluster."""
        table = LinkTable(4)
        table.increment(0, 1, 4)
        table.increment(2, 3, 4)
        f = 1 / 3
        split = criterion_value([[0, 1], [2, 3]], table, f)
        lumped = criterion_value([[0, 1, 2, 3]], table, f)
        assert split > lumped

    def test_all_pairs_linked_prefers_one_cluster(self):
        table = LinkTable(4)
        for i in range(4):
            for j in range(i + 1, 4):
                table.increment(i, j, 2)
        f = 1 / 3
        lumped = criterion_value([[0, 1, 2, 3]], table, f)
        split = criterion_value([[0, 1], [2, 3]], table, f)
        assert lumped > split
