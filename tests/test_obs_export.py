"""Tests for repro.obs.export: JSONL and Prometheus text renderings."""

import json

from repro.obs.export import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    prometheus_name,
    spans_to_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


def make_snapshot():
    r = MetricsRegistry()
    r.inc("fit.links.pairs", 42)
    r.set_gauge("fit.n_clusters", 7)
    h = r.histogram("serve.batch_size", edges=(1, 8, 64))
    for v in (1, 5, 100):
        h.observe(v)
    r.observe("serve.latency.total", 0.25)
    return r.snapshot()


class TestJsonl:
    def test_every_line_parses(self):
        text = metrics_to_jsonl(make_snapshot())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        records = [json.loads(line) for line in lines]
        assert {r["kind"] for r in records} == {"counter", "gauge", "histogram"}

    def test_counter_and_histogram_payloads(self):
        records = {
            r["name"]: r
            for r in map(json.loads,
                         metrics_to_jsonl(make_snapshot()).strip().split("\n"))
        }
        assert records["fit.links.pairs"] == {
            "kind": "counter", "name": "fit.links.pairs", "value": 42,
        }
        hist = records["serve.batch_size"]["value"]
        assert hist["count"] == 3
        assert hist["edges"] == [1.0, 8.0, 64.0]
        assert hist["bucket_counts"] == [1, 1, 0, 1]

    def test_empty_snapshot_renders_empty(self):
        assert metrics_to_jsonl({}) == ""
        assert metrics_to_jsonl(MetricsRegistry().snapshot()) == ""


class TestSpansJsonl:
    def test_path_and_depth(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("neighbors"):
                with tracer.span("block"):
                    pass
            with tracer.span("links"):
                pass
        records = [
            json.loads(line)
            for line in spans_to_jsonl(tracer.to_dicts()).strip().split("\n")
        ]
        by_path = {r["path"]: r for r in records}
        assert set(by_path) == {
            "fit", "fit/neighbors", "fit/neighbors/block", "fit/links",
        }
        assert by_path["fit"]["depth"] == 0
        assert by_path["fit/neighbors/block"]["depth"] == 2
        # the tree is flattened: no inline children arrays
        assert all("children" not in r for r in records)

    def test_empty_input(self):
        assert spans_to_jsonl([]) == ""


class TestPrometheus:
    def test_counter_gets_total_suffix(self):
        text = metrics_to_prometheus(make_snapshot())
        assert "rock_fit_links_pairs_total 42" in text
        assert "# TYPE rock_fit_links_pairs_total counter" in text

    def test_gauge_rendered_plain(self):
        text = metrics_to_prometheus(make_snapshot())
        assert "rock_fit_n_clusters 7" in text
        assert "# TYPE rock_fit_n_clusters gauge" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = metrics_to_prometheus(make_snapshot())
        assert 'rock_serve_batch_size_bucket{le="1.0"} 1' in text
        assert 'rock_serve_batch_size_bucket{le="8.0"} 2' in text
        assert 'rock_serve_batch_size_bucket{le="64.0"} 2' in text
        assert 'rock_serve_batch_size_bucket{le="+Inf"} 3' in text
        assert "rock_serve_batch_size_count 3" in text
        assert "rock_serve_batch_size_sum 106.0" in text

    def test_summary_histogram_has_inf_bucket_only(self):
        text = metrics_to_prometheus(make_snapshot())
        assert 'rock_serve_latency_total_bucket{le="+Inf"} 1' in text
        assert "rock_serve_latency_total_count 1" in text

    def test_no_duplicate_help_or_type_lines(self):
        text = metrics_to_prometheus(make_snapshot())
        help_lines = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        type_lines = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert len(help_lines) == len(set(help_lines))
        assert len(type_lines) == len(set(type_lines))
        assert len(help_lines) == len(type_lines) == 4

    def test_every_sample_line_is_well_formed(self):
        for line in metrics_to_prometheus(make_snapshot()).splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            bare = name_part.split("{", 1)[0]
            assert prometheus_name(bare) == bare  # already sanitised

    def test_tolerates_missing_extrema_keys(self):
        # legacy-merged histograms omit min/max; exporters must not care
        snap = {"histograms": {"h": {"count": 2, "sum": 3.0}}}
        text = metrics_to_prometheus(snap)
        assert "rock_h_count 2" in text
        json_lines = metrics_to_jsonl(snap)
        assert json.loads(json_lines)["value"] == {"count": 2, "sum": 3.0}


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("fit.links.pairs", "rock") == "rock_fit_links_pairs"

    def test_illegal_chars_replaced(self):
        assert prometheus_name("a-b c%d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("9lives") == "_9lives"

    def test_no_prefix(self):
        assert prometheus_name("plain") == "plain"


class TestPrometheusFamilyDedupe:
    """Name collisions across metric kinds must not render twice.

    A combined registry (engine ``serve.*`` + server ``http.*``) can
    produce colliding *sample* names even when family names differ --
    e.g. a gauge ``foo_sum`` next to a histogram ``foo`` (which emits
    ``foo_sum`` itself).  The exporter keeps the first family and drops
    the collider so the page stays parseable.
    """

    def test_gauge_colliding_with_counter_total_is_dropped(self):
        # the counter's exposition name is depth_total; a gauge
        # literally named depth_total would shadow the same sample
        snap = {"counters": {"depth": 3}, "gauges": {"depth_total": 9.0}}
        text = metrics_to_prometheus(snap)
        type_lines = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert type_lines == ["# TYPE rock_depth_total counter"]
        assert "rock_depth_total 3" in text
        assert "rock_depth_total 9.0" not in text

    def test_gauge_colliding_with_histogram_sample_is_dropped(self):
        snap = {
            "gauges": {"lat.sum": 123.0},
            "histograms": {"lat": {"count": 1, "sum": 0.5}},
        }
        text = metrics_to_prometheus(snap)
        sample_names = [
            ln.rsplit(" ", 1)[0].split("{", 1)[0]
            for ln in text.splitlines()
            if ln and not ln.startswith("#") and "{" not in ln
        ]
        assert len(sample_names) == len(set(sample_names))
        # the gauge won (gauges render before histograms); the
        # histogram family was dropped whole, not half-rendered
        assert "rock_lat_sum 123.0" in text
        assert "rock_lat_count" not in text
        assert "rock_lat_bucket" not in text

    def test_dotted_names_colliding_after_sanitising(self):
        snap = {"counters": {"a.b": 1, "a_b": 2}}
        text = metrics_to_prometheus(snap)
        totals = [ln for ln in text.splitlines()
                  if ln.startswith("rock_a_b_total ")]
        assert len(totals) == 1

    def test_combined_engine_and_server_snapshot_is_wellformed(self):
        """The /metrics page shape: serve.* and http.* in one registry."""
        registry = MetricsRegistry()
        registry.inc("serve.requests", 5)
        registry.inc("serve.points", 80)
        registry.histogram("serve.latency.batch").observe(0.01)
        registry.inc("http.requests.assign", 80)
        registry.inc("http.batcher.flushes", 5)
        registry.histogram(
            "http.latency.assign", edges=(0.001, 0.01, 0.1)
        ).observe(0.004)
        registry.histogram("http.batcher.batch_size", edges=(1, 8, 64)
                           ).observe(16)
        text = metrics_to_prometheus(registry.snapshot())
        seen_meta = set()
        for line in text.splitlines():
            if line.startswith("# "):
                kind, name = line.split(" ", 3)[1:3]
                assert (kind, name) not in seen_meta
                seen_meta.add((kind, name))
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            bare = name_part.split("{", 1)[0]
            assert prometheus_name(bare) == bare
        assert "rock_serve_requests_total 5" in text
        assert "rock_http_requests_assign_total 80" in text
        assert 'rock_http_latency_assign_bucket{le="+Inf"} 1' in text
