"""Tests for repro.obs.export: JSONL and Prometheus text renderings."""

import json

from repro.obs.export import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    prometheus_name,
    spans_to_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


def make_snapshot():
    r = MetricsRegistry()
    r.inc("fit.links.pairs", 42)
    r.set_gauge("fit.n_clusters", 7)
    h = r.histogram("serve.batch_size", edges=(1, 8, 64))
    for v in (1, 5, 100):
        h.observe(v)
    r.observe("serve.latency.total", 0.25)
    return r.snapshot()


class TestJsonl:
    def test_every_line_parses(self):
        text = metrics_to_jsonl(make_snapshot())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        records = [json.loads(line) for line in lines]
        assert {r["kind"] for r in records} == {"counter", "gauge", "histogram"}

    def test_counter_and_histogram_payloads(self):
        records = {
            r["name"]: r
            for r in map(json.loads,
                         metrics_to_jsonl(make_snapshot()).strip().split("\n"))
        }
        assert records["fit.links.pairs"] == {
            "kind": "counter", "name": "fit.links.pairs", "value": 42,
        }
        hist = records["serve.batch_size"]["value"]
        assert hist["count"] == 3
        assert hist["edges"] == [1.0, 8.0, 64.0]
        assert hist["bucket_counts"] == [1, 1, 0, 1]

    def test_empty_snapshot_renders_empty(self):
        assert metrics_to_jsonl({}) == ""
        assert metrics_to_jsonl(MetricsRegistry().snapshot()) == ""


class TestSpansJsonl:
    def test_path_and_depth(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("neighbors"):
                with tracer.span("block"):
                    pass
            with tracer.span("links"):
                pass
        records = [
            json.loads(line)
            for line in spans_to_jsonl(tracer.to_dicts()).strip().split("\n")
        ]
        by_path = {r["path"]: r for r in records}
        assert set(by_path) == {
            "fit", "fit/neighbors", "fit/neighbors/block", "fit/links",
        }
        assert by_path["fit"]["depth"] == 0
        assert by_path["fit/neighbors/block"]["depth"] == 2
        # the tree is flattened: no inline children arrays
        assert all("children" not in r for r in records)

    def test_empty_input(self):
        assert spans_to_jsonl([]) == ""


class TestPrometheus:
    def test_counter_gets_total_suffix(self):
        text = metrics_to_prometheus(make_snapshot())
        assert "rock_fit_links_pairs_total 42" in text
        assert "# TYPE rock_fit_links_pairs_total counter" in text

    def test_gauge_rendered_plain(self):
        text = metrics_to_prometheus(make_snapshot())
        assert "rock_fit_n_clusters 7" in text
        assert "# TYPE rock_fit_n_clusters gauge" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = metrics_to_prometheus(make_snapshot())
        assert 'rock_serve_batch_size_bucket{le="1.0"} 1' in text
        assert 'rock_serve_batch_size_bucket{le="8.0"} 2' in text
        assert 'rock_serve_batch_size_bucket{le="64.0"} 2' in text
        assert 'rock_serve_batch_size_bucket{le="+Inf"} 3' in text
        assert "rock_serve_batch_size_count 3" in text
        assert "rock_serve_batch_size_sum 106.0" in text

    def test_summary_histogram_has_inf_bucket_only(self):
        text = metrics_to_prometheus(make_snapshot())
        assert 'rock_serve_latency_total_bucket{le="+Inf"} 1' in text
        assert "rock_serve_latency_total_count 1" in text

    def test_no_duplicate_help_or_type_lines(self):
        text = metrics_to_prometheus(make_snapshot())
        help_lines = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        type_lines = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert len(help_lines) == len(set(help_lines))
        assert len(type_lines) == len(set(type_lines))
        assert len(help_lines) == len(type_lines) == 4

    def test_every_sample_line_is_well_formed(self):
        for line in metrics_to_prometheus(make_snapshot()).splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            bare = name_part.split("{", 1)[0]
            assert prometheus_name(bare) == bare  # already sanitised

    def test_tolerates_missing_extrema_keys(self):
        # legacy-merged histograms omit min/max; exporters must not care
        snap = {"histograms": {"h": {"count": 2, "sum": 3.0}}}
        text = metrics_to_prometheus(snap)
        assert "rock_h_count 2" in text
        json_lines = metrics_to_jsonl(snap)
        assert json.loads(json_lines)["value"] == {"count": 2, "sum": 3.0}


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("fit.links.pairs", "rock") == "rock_fit_links_pairs"

    def test_illegal_chars_replaced(self):
        assert prometheus_name("a-b c%d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("9lives") == "_9lives"

    def test_no_prefix(self):
        assert prometheus_name("plain") == "plain"
