"""The online reservoir: exact batch equivalence + inclusion uniformity.

Two layers of evidence that :class:`OnlineReservoir` is Vitter's
Algorithm X and nothing else:

* **draw-for-draw equivalence** -- for the same seed the online state
  machine holds the *element-identical* sample the batch
  :func:`reservoir_sample_skip` returns over the concatenated stream,
  no matter how arrivals are chunked across ``extend`` calls and no
  matter how often ``sample()`` snapshots are taken in between
  (snapshots must never perturb the draw sequence -- that is exactly
  what a refit does mid-stream);
* **chi-square inclusion frequency** -- mirroring the existing
  Algorithm X vs R test: as the stream grows past several refit
  boundaries, the sample held at *each* boundary stays uniform over
  the prefix seen so far.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import reservoir_sample_skip
from repro.stream.reservoir import OnlineReservoir


def chunked(items, sizes):
    """Split ``items`` into chunks of the given sizes (last chunk = rest)."""
    out, start = [], 0
    for size in sizes:
        out.append(items[start : start + size])
        start += size
        if start >= len(items):
            break
    if start < len(items):
        out.append(items[start:])
    return out


class TestBatchEquivalence:
    @given(
        n=st.integers(min_value=0, max_value=400),
        s=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
        sizes=st.lists(st.integers(min_value=1, max_value=37), max_size=30),
        snapshot_every=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_element_identical_to_batch_under_any_chunking(
        self, n, s, seed, sizes, snapshot_every
    ):
        data = list(range(n))
        batch_items, batch_idx = reservoir_sample_skip(
            data, s, rng=random.Random(seed)
        )
        reservoir = OnlineReservoir(s, rng=random.Random(seed))
        for chunk_no, chunk in enumerate(chunked(data, sizes)):
            reservoir.extend(chunk)
            if snapshot_every and chunk_no % snapshot_every == 0:
                reservoir.sample()  # a refit reading mid-stream: no rng effect
        items, indices = reservoir.sample()
        assert items == batch_items
        assert indices == batch_idx
        assert reservoir.seen == n

    def test_item_by_item_equals_one_extend(self):
        data = list(range(500))
        one = OnlineReservoir(20, rng=9)
        one.extend(data)
        per = OnlineReservoir(20, rng=9)
        for item in data:
            per.add(item)
        assert one.sample() == per.sample()

    def test_short_stream_returns_everything(self):
        reservoir = OnlineReservoir(10, rng=0)
        reservoir.extend("abc")
        assert not reservoir.full
        assert reservoir.sample() == (["a", "b", "c"], [0, 1, 2])

    def test_sample_returns_copies(self):
        reservoir = OnlineReservoir(5, rng=0)
        reservoir.extend(range(100))
        items, _ = reservoir.sample()
        items.append("junk")
        assert len(reservoir) == 5
        assert reservoir.sample()[0] != items

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            OnlineReservoir(0)


class TestInclusionFrequency:
    def test_uniform_inclusion_across_refit_boundaries(self):
        """Chi-square at every boundary of a stream fed in four segments.

        The reservoir is read (as a refit would) at n=20, 60, 140, 260;
        at each boundary every prefix item must have been included with
        equal frequency.  Statistic threshold matches the existing
        sampling tests: generously above the 99.9th percentile of the
        relevant chi-square distributions, far below what a biased
        sampler produces.
        """
        s = 6
        boundaries = [20, 60, 140, 260]
        trials = 2000
        counts = {b: [0] * b for b in boundaries}
        for trial in range(trials):
            reservoir = OnlineReservoir(s, rng=random.Random(10_000 + trial))
            fed = 0
            for boundary in boundaries:
                reservoir.extend(range(fed, boundary))
                fed = boundary
                _, indices = reservoir.sample()
                for index in indices:
                    counts[boundary][index] += 1
        for boundary in boundaries:
            expected = trials * s / boundary
            statistic = sum(
                (observed - expected) ** 2 / expected
                for observed in counts[boundary]
            )
            # df = boundary - 1 ranges 19..259; 45 clears df=19's 99.9th
            # percentile and the per-df thresholds below scale with df
            limit = 45.0 + 2.2 * boundary
            assert statistic < limit, (
                f"inclusion biased at boundary {boundary}: "
                f"chi2={statistic:.1f} limit={limit:.1f}"
            )

    def test_online_matches_batch_distributionally(self):
        """Same-seed online and batch runs agree exactly, so their
        inclusion histograms are identical -- a cross-check that the
        chi-square above tests the *same* distribution as the batch
        sampler's own test."""
        n, s, trials = 30, 5, 400
        online_hist = [0] * n
        batch_hist = [0] * n
        for trial in range(trials):
            _, batch_idx = reservoir_sample_skip(
                range(n), s, rng=random.Random(trial)
            )
            reservoir = OnlineReservoir(s, rng=random.Random(trial))
            reservoir.extend(range(n))
            _, online_idx = reservoir.sample()
            for i in batch_idx:
                batch_hist[i] += 1
            for i in online_idx:
                online_hist[i] += 1
        assert online_hist == batch_hist
