"""Property-test: heap-based merge loop == naive O(n^3) reference.

The Figure 3 bookkeeping (local heaps, global heap, incremental
cross-link updates) must be semantically invisible: the fast
implementation and a full-rescan reference must pick the identical
merge at every step on any link table.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import naive_goodness
from repro.core.links import LinkTable
from repro.core.reference import naive_cluster_with_links
from repro.core.rock import cluster_with_links


def table_from_pairs(n, pairs):
    table = LinkTable(n)
    for i, j, count in pairs:
        if i != j:
            table.increment(i, j, count)
    return table


@st.composite
def random_link_tables(draw):
    n = draw(st.integers(2, 12))
    n_pairs = draw(st.integers(0, n * (n - 1) // 2))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 6),
            ),
            min_size=n_pairs,
            max_size=n_pairs,
        )
    )
    return n, pairs


def assert_same_run(fast, slow):
    assert [(m.left, m.right, m.merged) for m in fast.merges] == [
        (m.left, m.right, m.merged) for m in slow.merges
    ]
    assert fast.clusters == slow.clusters
    assert fast.stopped_early == slow.stopped_early
    for a, b in zip(fast.merges, slow.merges):
        assert a.goodness == pytest.approx(b.goodness, rel=1e-12)


class TestKnownCases:
    def test_simple_two_cluster(self):
        table = table_from_pairs(4, [(0, 1, 5), (2, 3, 5), (1, 2, 1)])
        fast = cluster_with_links(table, k=2, f_theta=1 / 3)
        slow = naive_cluster_with_links(table, k=2, f_theta=1 / 3)
        assert_same_run(fast, slow)

    def test_ties_broken_identically(self):
        # four identical pairs: merge order must match exactly
        table = table_from_pairs(
            8, [(0, 1, 3), (2, 3, 3), (4, 5, 3), (6, 7, 3)]
        )
        fast = cluster_with_links(table, k=4, f_theta=0.5)
        slow = naive_cluster_with_links(table, k=4, f_theta=0.5)
        assert_same_run(fast, slow)

    def test_initial_clusters(self):
        table = table_from_pairs(
            6, [(0, 2, 3), (1, 3, 3), (2, 4, 2), (3, 5, 2), (4, 5, 4)]
        )
        initial = [[0, 1], [2, 3], [4], [5]]
        fast = cluster_with_links(table, k=2, f_theta=1 / 3, initial_clusters=initial)
        slow = naive_cluster_with_links(
            table, k=2, f_theta=1 / 3, initial_clusters=initial
        )
        assert_same_run(fast, slow)

    def test_naive_goodness_strategy(self):
        table = table_from_pairs(5, [(0, 1, 2), (1, 2, 4), (3, 4, 3), (2, 3, 1)])
        fast = cluster_with_links(table, k=1, f_theta=0.4, goodness_fn=naive_goodness)
        slow = naive_cluster_with_links(
            table, k=1, f_theta=0.4, goodness_fn=naive_goodness
        )
        assert_same_run(fast, slow)

    def test_validation_matches(self):
        with pytest.raises(ValueError):
            naive_cluster_with_links(LinkTable(2), k=0, f_theta=0.5)
        with pytest.raises(ValueError):
            naive_cluster_with_links(
                LinkTable(3), k=1, f_theta=0.5, initial_clusters=[[0], [0, 1]]
            )
        with pytest.raises(ValueError):
            naive_cluster_with_links(
                LinkTable(2), k=1, f_theta=0.5, initial_clusters=[[]]
            )
        with pytest.raises(ValueError):
            naive_cluster_with_links(
                LinkTable(2), k=1, f_theta=0.5, initial_clusters=[[9]]
            )


@settings(max_examples=150, deadline=None)
@given(random_link_tables(), st.integers(1, 4), st.sampled_from([0.0, 1 / 3, 0.5, 1.0]))
def test_equivalence_on_random_tables(spec, k, f_theta):
    n, pairs = spec
    table = table_from_pairs(n, pairs)
    fast = cluster_with_links(table, k=k, f_theta=f_theta)
    slow = naive_cluster_with_links(table, k=k, f_theta=f_theta)
    assert_same_run(fast, slow)


@settings(max_examples=75, deadline=None)
@given(random_link_tables())
def test_equivalence_full_agglomeration(spec):
    n, pairs = spec
    table = table_from_pairs(n, pairs)
    fast = cluster_with_links(table, k=1, f_theta=1 / 3)
    slow = naive_cluster_with_links(table, k=1, f_theta=1 / 3)
    assert_same_run(fast, slow)
