"""Blocked neighbor kernel vs the dense path, and sparse NeighborGraph.

The blocked path is only admissible if it is a pure memory optimisation:
identical :class:`NeighborGraph`, identical :class:`LinkTable`, identical
:class:`RockResult` clusters for every input the dense path accepts.
The hypothesis properties here drive randomized transaction, categorical
and missing-value data through both paths at tiny block sizes (so every
run exercises multi-block stitching) and assert exact equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.neighbors as neighbors_mod
from repro.core.links import compute_links
from repro.core.neighbors import (
    DEFAULT_MEMORY_BUDGET,
    NeighborGraph,
    blocked_neighbor_graph,
    compute_neighbor_graph,
    dense_similarity_bytes,
    supports_blocked,
)
from repro.core.pipeline import RockPipeline
from repro.core.rock import rock
from repro.core.similarity import (
    JaccardSimilarity,
    MissingAwareJaccard,
    OverlapSimilarity,
    SimilarityTable,
)
from repro.data.records import CategoricalDataset, CategoricalRecord, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset

THETAS = [0.0, 0.25, 0.5, 0.75, 1.0]

item_sets = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), max_size=6),
    min_size=1,
    max_size=40,
)


def graphs_equal(a: NeighborGraph, b: NeighborGraph) -> bool:
    if a.n != b.n:
        return False
    return all(
        np.array_equal(la, lb)
        for la, lb in zip(a.neighbor_lists(), b.neighbor_lists())
    )


# -- the equivalence properties ---------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    sets=item_sets,
    theta=st.sampled_from(THETAS),
    block_size=st.sampled_from([1, 2, 3, 7, 64]),
    overlap=st.booleans(),
)
def test_blocked_equals_dense_on_random_baskets(sets, theta, block_size, overlap):
    dataset = TransactionDataset([Transaction(s) for s in sets])
    similarity = OverlapSimilarity() if overlap else JaccardSimilarity()
    dense = compute_neighbor_graph(
        dataset, theta, similarity=similarity, method="vectorized"
    )
    blocked = blocked_neighbor_graph(
        dataset, theta, similarity=similarity, block_size=block_size
    )
    assert not blocked.has_dense
    assert graphs_equal(blocked, dense)
    assert blocked.theta == theta
    assert np.array_equal(blocked.degrees(), dense.degrees())
    assert blocked.edge_count() == dense.edge_count()
    # downstream equality: links and final clusters
    dense_links = compute_links(dense, method="dense")
    blocked_links = compute_links(blocked)
    assert np.array_equal(blocked_links.to_dense(), dense_links.to_dense())
    k = max(1, len(dataset) // 3)
    r_dense = rock(dataset, k=k, theta=theta, similarity=similarity)
    r_blocked = rock(
        dataset, k=k, theta=theta, similarity=similarity,
        neighbor_method="blocked",
    )
    assert r_blocked.clusters == r_dense.clusters
    assert r_blocked.stopped_early == r_dense.stopped_early


records = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.sampled_from(["x", "y", None]),
        st.sampled_from([0, 1, 2, None]),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(rows=records, theta=st.sampled_from(THETAS), block_size=st.sampled_from([1, 3, 50]))
def test_blocked_equals_dense_on_missing_aware_records(rows, theta, block_size):
    schema = CategoricalSchema(("f1", "f2", "f3"))
    points = [CategoricalRecord(schema, row) for row in rows]
    similarity = MissingAwareJaccard()
    dense = compute_neighbor_graph(
        points, theta, similarity=similarity, method="vectorized"
    )
    blocked = blocked_neighbor_graph(
        points, theta, similarity=similarity, block_size=block_size
    )
    assert graphs_equal(blocked, dense)


@settings(max_examples=30, deadline=None)
@given(rows=records, theta=st.sampled_from(THETAS), missing_aware=st.booleans())
def test_blocked_equals_dense_on_categorical_dataset(rows, theta, missing_aware):
    schema = CategoricalSchema(("f1", "f2", "f3"))
    dataset = CategoricalDataset(schema, rows)
    similarity = MissingAwareJaccard() if missing_aware else JaccardSimilarity()
    dense = compute_neighbor_graph(
        dataset, theta, similarity=similarity, method="vectorized"
    )
    blocked = blocked_neighbor_graph(dataset, theta, similarity=similarity, block_size=4)
    assert graphs_equal(blocked, dense)


def test_pipeline_blocked_equals_dense():
    rng = np.random.default_rng(7)
    sets = []
    for c in range(6):
        pool = list(range(c * 10, c * 10 + 8))
        for _ in range(15):
            sets.append(frozenset(rng.choice(pool, size=5, replace=False).tolist()))
    points = [Transaction(s) for s in sets]
    base = dict(k=6, theta=0.5, sample_size=None, seed=0)
    dense = RockPipeline(**base).fit(points)
    blocked = RockPipeline(**base, neighbor_method="blocked").fit(points)
    auto = RockPipeline(**base, memory_budget=1).fit(points)
    assert np.array_equal(blocked.labels, dense.labels)
    assert np.array_equal(auto.labels, dense.labels)
    assert blocked.clusters == dense.clusters


# -- method/budget selection -------------------------------------------------


class TestAutoSelection:
    def test_auto_blocks_when_budget_exceeded(self):
        dataset = TransactionDataset([Transaction({i, i + 1}) for i in range(40)])
        graph = compute_neighbor_graph(dataset, 0.3, memory_budget=1)
        assert not graph.has_dense
        default = compute_neighbor_graph(dataset, 0.3)
        assert default.has_dense
        assert graphs_equal(graph, default)

    def test_auto_stays_dense_within_budget(self):
        dataset = TransactionDataset([Transaction({i, i + 1}) for i in range(10)])
        graph = compute_neighbor_graph(
            dataset, 0.3, memory_budget=DEFAULT_MEMORY_BUDGET
        )
        assert graph.has_dense

    def test_auto_falls_back_to_bruteforce_for_tables(self):
        # a similarity table has no blocked kernel; a tiny budget must
        # not break it -- auto quietly keeps the generic path
        table = SimilarityTable({("a", "b"): 0.9})
        graph = compute_neighbor_graph(["a", "b"], 0.5, similarity=table,
                                       memory_budget=1)
        assert graph.are_neighbors(0, 1)

    def test_blocked_requires_kernel(self):
        table = SimilarityTable({("a", "b"): 0.9})
        with pytest.raises(ValueError, match="blocked"):
            blocked_neighbor_graph(["a", "b"], 0.5, similarity=table)

    def test_supports_blocked(self):
        txns = TransactionDataset([Transaction({1})])
        schema = CategoricalSchema(("f",))
        recs = [CategoricalRecord(schema, ("v",))]
        assert supports_blocked(txns)
        assert supports_blocked(txns, OverlapSimilarity())
        assert not supports_blocked(txns, MissingAwareJaccard())
        assert supports_blocked(CategoricalDataset(schema, recs))
        assert supports_blocked([Transaction({1}), Transaction({2})])
        assert supports_blocked(recs, MissingAwareJaccard())
        assert not supports_blocked(recs)  # plain Jaccard on raw records
        assert not supports_blocked(["a"], SimilarityTable({("a", "a"): 1.0}))
        assert not supports_blocked([])

    def test_dense_similarity_bytes(self):
        assert dense_similarity_bytes(1000) == 8_000_000

    def test_validation(self):
        dataset = TransactionDataset([Transaction({1})])
        with pytest.raises(ValueError, match="theta"):
            blocked_neighbor_graph(dataset, 1.5)
        with pytest.raises(ValueError, match="block_size"):
            blocked_neighbor_graph(dataset, 0.5, block_size=0)

    def test_empty_dataset(self):
        graph = blocked_neighbor_graph(TransactionDataset([]), 0.5)
        assert graph.n == 0
        assert graph.edge_count() == 0


# -- sparse-backed NeighborGraph behaviours ----------------------------------


class TestSparseNeighborGraph:
    def make(self):
        # 0-1 and 1-2 neighbors, 3 isolated
        return NeighborGraph.from_neighbor_lists(
            [[1], [0, 2], [1], []], theta=0.5
        )

    def test_accessors_without_densifying(self):
        g = self.make()
        assert not g.has_dense
        assert g.n == 4 and len(g) == 4
        assert g.degrees().tolist() == [1, 2, 1, 0]
        assert g.edge_count() == 2
        assert g.are_neighbors(0, 1) and g.are_neighbors(2, 1)
        assert not g.are_neighbors(0, 2)
        assert g.isolated_points().tolist() == [3]
        assert not g.has_dense  # none of the above densified

    def test_lazy_densify_matches_lists(self):
        g = self.make()
        adj = g.adjacency
        assert g.has_dense
        expected = np.zeros((4, 4), dtype=bool)
        expected[0, 1] = expected[1, 0] = True
        expected[1, 2] = expected[2, 1] = True
        assert np.array_equal(adj, expected)

    def test_densify_refused_beyond_limit(self, monkeypatch):
        monkeypatch.setattr(neighbors_mod, "DENSIFY_LIMIT", 8)
        g = self.make()
        with pytest.raises(ValueError, match="densify"):
            _ = g.adjacency
        # sparse accessors still work under the limit
        assert g.degrees().tolist() == [1, 2, 1, 0]

    def test_subgraph_stays_sparse(self):
        g = self.make()
        sub = g.subgraph([0, 1, 3])
        assert not sub.has_dense
        assert sub.n == 3
        assert [lst.tolist() for lst in sub.neighbor_lists()] == [[1], [0], []]
        assert sub.theta == g.theta

    def test_validation_rejects_bad_lists(self):
        with pytest.raises(ValueError, match="out of range"):
            NeighborGraph.from_neighbor_lists([[5], []])
        with pytest.raises(ValueError, match="sorted"):
            NeighborGraph.from_neighbor_lists([[2, 1], [0], [0]])
        with pytest.raises(ValueError, match="itself"):
            NeighborGraph.from_neighbor_lists([[0, 1], [0]])
        with pytest.raises(ValueError, match="asymmetric"):
            NeighborGraph.from_neighbor_lists([[1], []])

    def test_links_auto_uses_sparse_path(self):
        g = self.make()
        links = compute_links(g)
        assert not g.has_dense  # link counting never densified
        # point 1 is the single common neighbor of the pair (0, 2)
        assert links.get(0, 2) == 1
        assert links.get(0, 1) == 0
