"""Tests for repro.obs.registry: instruments, snapshots, merge semantics."""

import threading

import pytest

from repro.obs.registry import Histogram, MetricsRegistry, bucket_labels


class TestCounter:
    def test_inc_and_snapshot(self):
        r = MetricsRegistry()
        r.inc("a")
        r.inc("a", 4)
        assert r.snapshot()["counters"] == {"a": 5}

    def test_negative_increment_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only go up"):
            r.inc("a", -1)

    def test_create_or_return_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")


class TestGauge:
    def test_set_overwrites(self):
        r = MetricsRegistry()
        r.set_gauge("g", 3)
        r.set_gauge("g", 7)
        assert r.snapshot()["gauges"] == {"g": 7}

    def test_merge_is_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1)
        b.set_gauge("g", 99)
        a.merge(b.snapshot())
        assert a.snapshot()["gauges"]["g"] == 99


class TestHistogram:
    def test_empty_snapshot_has_zero_extrema(self):
        h = Histogram(threading.Lock())
        snap = h.snapshot()
        assert snap == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}

    def test_summary_observe(self):
        r = MetricsRegistry()
        for v in (2.0, 5.0, 3.0):
            r.observe("h", v)
        snap = r.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["min"] == 2.0
        assert snap["max"] == 5.0
        assert "edges" not in snap

    def test_bucket_edges_are_inclusive_upper_bounds(self):
        r = MetricsRegistry()
        h = r.histogram("h", edges=(1, 8, 64))
        # exactly on an edge lands in that bucket; above the last edge
        # falls into the open-ended overflow bucket
        for v in (1, 2, 8, 9, 64, 65, 1000):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 2, 2]
        assert h.labeled_buckets() == {
            "<=1": 1, "<=8": 2, "<=64": 2, ">64": 2,
        }

    def test_non_ascending_edges_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly ascending"):
            r.histogram("h", edges=(1, 1, 2))

    def test_conflicting_edges_rejected(self):
        r = MetricsRegistry()
        r.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("h", edges=(1, 3))


class TestMerge:
    def test_empty_merge_is_noop(self):
        r = MetricsRegistry()
        r.inc("c", 3)
        r.observe("h", 1.5)
        before = r.snapshot()
        r.merge({})
        r.merge(MetricsRegistry().snapshot())
        assert r.snapshot() == before

    def test_merge_doubles_everything(self):
        r = MetricsRegistry()
        r.inc("c", 3)
        h = r.histogram("h", edges=(1, 10))
        h.observe(0.5)
        h.observe(20)
        snap = r.snapshot()
        r.merge(snap)
        merged = r.snapshot()
        assert merged["counters"]["c"] == 6
        hist = merged["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(41.0)
        assert hist["bucket_counts"] == [2, 0, 2]
        # extrema are min/max, not sums
        assert hist["min"] == 0.5
        assert hist["max"] == 20

    def test_merge_combines_extrema(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 5.0)
        b.observe("h", 1.0)
        b.observe("h", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()["histograms"]["h"]
        assert snap["min"] == 1.0
        assert snap["max"] == 9.0
        assert snap["count"] == 3

    def test_merge_without_extrema_keys_leaves_extrema(self):
        r = MetricsRegistry()
        r.observe("h", 5.0)
        r.merge({"histograms": {"h": {"count": 2, "sum": 8.0}}})
        snap = r.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(13.0)
        assert snap["min"] == 5.0
        assert snap["max"] == 5.0

    def test_merge_unknown_extrema_snapshot_omits_keys(self):
        # a histogram whose only observations arrived extrema-less
        # reports no min/max rather than lying (or emitting inf)
        r = MetricsRegistry()
        r.histogram("h", edges=(1, 2))
        r.merge({
            "histograms": {
                "h": {"count": 2, "sum": 3.0, "edges": [1.0, 2.0],
                      "bucket_counts": [1, 1, 0]},
            },
        })
        snap = r.snapshot()["histograms"]["h"]
        assert snap["count"] == 2
        assert "min" not in snap
        assert "max" not in snap

    def test_merge_zero_count_histogram_is_noop(self):
        r = MetricsRegistry()
        r.observe("h", 2.0)
        r.merge({"histograms": {"h": {"count": 0, "sum": 0.0,
                                      "min": 0.0, "max": 0.0}}})
        snap = r.snapshot()["histograms"]["h"]
        assert snap["count"] == 1
        assert snap["min"] == 2.0

    def test_merge_mismatched_edges_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", edges=(1, 2)).observe(1)
        b.histogram("h", edges=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="edges"):
            a.merge(b.snapshot())

    def test_merge_creates_missing_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("only.in.b", 2)
        b.set_gauge("g", 4)
        b.histogram("h", edges=(10,)).observe(3)
        a.merge(b.snapshot())
        assert a.snapshot() == b.snapshot()

    def test_merge_is_order_independent_for_counters_and_histograms(self):
        def build():
            r = MetricsRegistry()
            return r

        snaps = []
        for values in ((1.0, 2.0), (3.0,), (0.5, 4.0)):
            r = build()
            for v in values:
                r.inc("c")
                r.observe("h", v)
            snaps.append(r.snapshot())
        forward, backward = build(), build()
        for s in snaps:
            forward.merge(s)
        for s in reversed(snaps):
            backward.merge(s)
        assert forward.snapshot() == backward.snapshot()


class TestRegistry:
    def test_name_bound_to_one_kind(self):
        r = MetricsRegistry()
        r.inc("x")
        with pytest.raises(ValueError, match="already bound"):
            r.set_gauge("x", 1)
        with pytest.raises(ValueError, match="already bound"):
            r.observe("x", 1.0)

    def test_snapshot_sorted_and_json_plain(self):
        import json

        r = MetricsRegistry()
        r.inc("z")
        r.inc("a")
        snap = r.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_concurrent_increments(self):
        r = MetricsRegistry()

        def work():
            for _ in range(1000):
                r.inc("c")
                r.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = r.snapshot()
        assert snap["counters"]["c"] == 4000
        assert snap["histograms"]["h"]["count"] == 4000


def test_bucket_labels_format():
    assert bucket_labels((1, 8, 64)) == ["<=1", "<=8", "<=64", ">64"]
    assert bucket_labels((0.5,)) == ["<=0.5", ">0.5"]
    assert bucket_labels(()) == []
