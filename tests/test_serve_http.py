"""The async HTTP serving layer: protocol, batcher, endpoints, backpressure.

The integration tests run a real :class:`RockHttpServer` on a
background event-loop thread (``serve_in_thread``) and talk to it over
real sockets with ``http.client`` -- the same path production traffic
takes.  Acceptance bars covered here:

* concurrent single-point requests coalesce into strictly fewer engine
  calls, and server-side ``http.*`` counters never double-report the
  engine-level ``serve.*`` families (the double-count seam);
* a full queue answers ``503`` with ``Retry-After`` instead of
  queueing unboundedly;
* ``/metrics`` renders well-formed Prometheus 0.0.4 for the combined
  engine + server registry;
* shutdown drains admitted requests.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.core.pipeline import RockPipeline
from repro.data.records import CategoricalRecord, CategoricalSchema
from repro.datasets import small_synthetic_basket
from repro.obs.export import prometheus_name
from repro.serve import RockModel
from repro.serve.http import (
    ProtocolError,
    QueueFull,
    RequestBatcher,
    serve_in_thread,
)
from repro.serve.http.protocol import read_request, render_response


@pytest.fixture(scope="module")
def fitted_model():
    basket = small_synthetic_basket(
        n_clusters=3, cluster_size=100, n_outliers=10, seed=7
    )
    pipeline = RockPipeline(
        k=3, theta=0.45, sample_size=120, min_cluster_size=5, seed=0
    )
    _, model = pipeline.fit_model(basket.transactions)
    return basket, model


@pytest.fixture
def running_server(fitted_model, tmp_path):
    _, model = fitted_model
    path = tmp_path / "model.json"
    model.save(path)
    with serve_in_thread(path, poll_seconds=5.0) as handle:
        yield handle


def request_json(
    address, method, path, payload=None, conn=None
):
    """One request over a fresh or reused keep-alive connection."""
    own = conn is None
    if own:
        conn = http.client.HTTPConnection(*address, timeout=30)
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    if own:
        conn.close()
    data = json.loads(raw) if raw and response.headers.get(
        "Content-Type", ""
    ).startswith("application/json") else raw
    return response, data


# ---------------------------------------------------------------------------
# protocol unit tests
# ---------------------------------------------------------------------------

def parse_bytes(raw: bytes):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


class TestProtocol:
    def test_parses_request_line_headers_and_body(self):
        raw = (
            b"POST /assign?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\nContent-Length: 4\r\n\r\nabcd"
        )
        request = parse_bytes(raw)
        assert request.method == "POST"
        assert request.path == "/assign"
        assert request.query == "x=1"
        assert request.headers["host"] == "localhost"
        assert request.body == b"abcd"
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert not parse_bytes(raw).keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError):
            parse_bytes(b"NONSENSE\r\n\r\n")

    def test_bad_content_length_raises(self):
        with pytest.raises(ProtocolError):
            parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_truncated_body_raises(self):
        with pytest.raises(ProtocolError):
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_chunked_rejected(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError):
            parse_bytes(raw)

    def test_oversized_body_rejected_with_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 413

    def test_render_response_has_exact_content_length(self):
        raw = render_response(200, b'{"ok":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b'{"ok":1}'
        assert b"Content-Length: 8" in head
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")


# ---------------------------------------------------------------------------
# batcher unit tests
# ---------------------------------------------------------------------------

class TestBatcher:
    def test_coalesces_concurrent_submissions(self):
        calls = []

        async def _run():
            async def flush(points):
                calls.append(list(points))
                await asyncio.sleep(0.01)  # let submissions pile up
                return [p * 10 for p in points]

            batcher = RequestBatcher(flush, batch_max=8, batch_wait_us=50_000)
            batcher.start()
            futures = [batcher.submit(i) for i in range(6)]
            results = await asyncio.gather(*futures)
            await batcher.aclose()
            return results

        results = asyncio.run(_run())
        assert results == [0, 10, 20, 30, 40, 50]
        # six concurrent submissions, strictly fewer flushes
        assert len(calls) < 6
        assert sum(len(c) for c in calls) == 6

    def test_batch_max_one_never_coalesces(self):
        calls = []

        async def _run():
            async def flush(points):
                calls.append(list(points))
                return points

            batcher = RequestBatcher(flush, batch_max=1, batch_wait_us=50_000)
            batcher.start()
            results = await asyncio.gather(
                *[batcher.submit(i) for i in range(5)]
            )
            await batcher.aclose()
            return results

        assert asyncio.run(_run()) == list(range(5))
        assert all(len(c) == 1 for c in calls)
        assert len(calls) == 5

    def test_queue_full_raises_and_counts(self):
        async def _run():
            release = asyncio.Event()

            async def flush(points):
                await release.wait()
                return points

            batcher = RequestBatcher(
                flush, batch_max=1, batch_wait_us=0, queue_depth=2
            )
            batcher.start()
            futures = [batcher.submit(i) for i in range(2)]
            with pytest.raises(QueueFull):
                batcher.submit(99)
            release.set()
            await asyncio.gather(*futures)
            await batcher.aclose()

        asyncio.run(_run())

    def test_flush_exception_propagates_to_every_waiter(self):
        async def _run():
            async def flush(points):
                raise RuntimeError("engine exploded")

            batcher = RequestBatcher(flush, batch_max=8, batch_wait_us=1000)
            batcher.start()
            futures = [batcher.submit(i) for i in range(3)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            await batcher.aclose()
            return results

        results = asyncio.run(_run())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_aclose_drains_admitted_work(self):
        async def _run():
            async def flush(points):
                await asyncio.sleep(0.005)
                return points

            batcher = RequestBatcher(flush, batch_max=4, batch_wait_us=1000)
            batcher.start()
            futures = [batcher.submit(i) for i in range(10)]
            await batcher.aclose()
            assert batcher.pending == 0
            return await asyncio.gather(*futures)

        assert asyncio.run(_run()) == list(range(10))

    def test_validates_parameters(self):
        async def flush(points):
            return points

        with pytest.raises(ValueError):
            RequestBatcher(flush, batch_max=0)
        with pytest.raises(ValueError):
            RequestBatcher(flush, batch_wait_us=-1)
        with pytest.raises(ValueError):
            RequestBatcher(flush, queue_depth=0)


# ---------------------------------------------------------------------------
# endpoint integration
# ---------------------------------------------------------------------------

class TestEndpoints:
    def test_healthz(self, running_server):
        response, data = request_json(
            running_server.address, "GET", "/healthz"
        )
        assert response.status == 200
        assert data["status"] == "ok"
        assert data["reload_errors"] == 0

    def test_model_reports_version_and_facts(self, running_server, fitted_model):
        _, model = fitted_model
        response, data = request_json(running_server.address, "GET", "/model")
        assert response.status == 200
        assert data["n_clusters"] == model.n_clusters
        assert data["theta"] == model.theta
        assert len(data["model_version"]) == 16
        assert data["vectorized"] is True

    def test_assign_agrees_with_engine(self, running_server, fitted_model):
        basket, model = fitted_model
        engine_labels = running_server.server.watcher.current.engine
        conn = http.client.HTTPConnection(*running_server.address, timeout=30)
        for txn in basket.transactions[:10]:
            response, data = request_json(
                running_server.address, "POST", "/assign",
                {"point": sorted(txn.items)}, conn=conn,
            )
            assert response.status == 200
            assert data["label"] == engine_labels.assign(txn)
        conn.close()

    def test_assign_outlier_is_minus_one(self, running_server):
        response, data = request_json(
            running_server.address, "POST", "/assign",
            {"point": ["never", "seen", "anywhere"]},
        )
        assert response.status == 200
        assert data["label"] == -1

    def test_assign_batch_matches_singles(self, running_server, fitted_model):
        basket, _ = fitted_model
        points = [sorted(t.items) for t in basket.transactions[:20]]
        response, data = request_json(
            running_server.address, "POST", "/assign_batch",
            {"points": points},
        )
        assert response.status == 200
        assert len(data["labels"]) == 20
        singles = [
            request_json(
                running_server.address, "POST", "/assign", {"point": p}
            )[1]["label"]
            for p in points[:5]
        ]
        assert data["labels"][:5] == singles

    def test_assign_batch_empty_points(self, running_server):
        response, data = request_json(
            running_server.address, "POST", "/assign_batch", {"points": []}
        )
        assert response.status == 200
        assert data["labels"] == []

    def test_bad_json_is_400(self, running_server):
        conn = http.client.HTTPConnection(*running_server.address, timeout=30)
        conn.request("POST", "/assign", body="{not json")
        response = conn.getresponse()
        data = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "JSON" in data["error"]

    def test_missing_point_is_400(self, running_server):
        response, data = request_json(
            running_server.address, "POST", "/assign", {"nope": 1}
        )
        assert response.status == 400

    def test_non_array_point_is_400(self, running_server):
        response, data = request_json(
            running_server.address, "POST", "/assign", {"point": "abc"}
        )
        assert response.status == 400

    def test_unknown_route_404_known_route_wrong_method_405(
        self, running_server
    ):
        response, _ = request_json(running_server.address, "GET", "/nope")
        assert response.status == 404
        response, _ = request_json(running_server.address, "GET", "/assign")
        assert response.status == 405

    def test_record_model_decodes_value_rows(self, tmp_path):
        schema = CategoricalSchema(["a", "b", "c"])
        model = RockModel(
            labeling_sets=[
                [CategoricalRecord(schema, ["x", "y", "z"])],
                [CategoricalRecord(schema, ["p", "q", "r"])],
            ],
            theta=0.3,
            f_theta=(1 - 0.3) / (1 + 0.3),
        )
        path = tmp_path / "records.json"
        model.save(path)
        with serve_in_thread(path, poll_seconds=5.0) as handle:
            response, data = request_json(
                handle.address, "POST", "/assign", {"point": ["x", "y", "z"]}
            )
            assert response.status == 200
            assert data["label"] == 0
            # wrong arity is a clear 400, not a 500
            response, data = request_json(
                handle.address, "POST", "/assign", {"point": ["x"]}
            )
            assert response.status == 400
            assert "3 attribute" in data["error"]


# ---------------------------------------------------------------------------
# batching, backpressure, metrics, shutdown
# ---------------------------------------------------------------------------

def hammer(address, points, n_threads, per_thread, path="/assign"):
    """Closed-loop load: n_threads keep-alive clients, statuses returned."""
    statuses = []
    lock = threading.Lock()

    def worker(worker_id):
        conn = http.client.HTTPConnection(*address, timeout=30)
        local = []
        for i in range(per_thread):
            point = points[(worker_id * per_thread + i) % len(points)]
            conn.request("POST", path, body=json.dumps({"point": point}))
            response = conn.getresponse()
            response.read()
            local.append(response.status)
        conn.close()
        with lock:
            statuses.extend(local)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return statuses


class TestBatchingAndMetrics:
    def test_concurrent_assigns_coalesce_and_families_stay_disjoint(
        self, fitted_model, tmp_path
    ):
        basket, model = fitted_model
        path = tmp_path / "model.json"
        model.save(path)
        points = [sorted(t.items) for t in basket.transactions[:64]]
        with serve_in_thread(
            path, poll_seconds=5.0, batch_max=32, batch_wait_us=3000
        ) as handle:
            statuses = hammer(handle.address, points, n_threads=8, per_thread=20)
            snap = handle.server.registry.snapshot()
        assert statuses == [200] * 160
        counters = snap["counters"]
        # coalescing: strictly fewer engine calls than HTTP requests
        assert counters["http.requests.assign"] == 160
        assert counters["http.batcher.flushes"] < 160
        # the double-count seam: the engine-level serve.* family counts
        # engine calls (= flushes), NOT HTTP requests -- the server's
        # own traffic lives under http.* only
        assert counters["serve.requests"] == counters["http.batcher.flushes"]
        assert counters["serve.points"] == 160
        assert not any(
            name.startswith("serve.") and ".requests." in name
            for name in counters
        )

    def test_metrics_endpoint_is_wellformed_prometheus(self, running_server):
        # drive every endpoint so the combined registry is populated
        request_json(running_server.address, "POST", "/assign",
                     {"point": [1, 2, 3]})
        request_json(running_server.address, "POST", "/assign_batch",
                     {"points": [[1, 2, 3]]})
        request_json(running_server.address, "GET", "/model")
        request_json(running_server.address, "GET", "/healthz")
        conn = http.client.HTTPConnection(*running_server.address, timeout=30)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        conn.close()
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(help_lines) == len(set(help_lines))
        assert len(type_lines) == len(set(type_lines))
        sample_names = []
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses
            bare = name_part.split("{", 1)[0]
            assert prometheus_name(bare) == bare  # already sanitised
            if "{" not in name_part:
                sample_names.append(bare)
        # no duplicated un-labelled sample (the combined-registry bar)
        assert len(sample_names) == len(set(sample_names))
        # both sides of the seam are present, exactly once each
        assert sum(
            l.startswith("# TYPE rock_serve_requests_total ")
            for l in type_lines
        ) == 1
        assert sum(
            l.startswith("# TYPE rock_http_requests_assign_total ")
            for l in type_lines
        ) == 1
        # per-endpoint latency histograms exist for every driven route
        for route in ("assign", "assign_batch", "model", "healthz"):
            assert f"rock_http_latency_{route}_count" in text

    def test_backpressure_answers_503_with_retry_after(
        self, fitted_model, tmp_path
    ):
        basket, model = fitted_model
        path = tmp_path / "model.json"
        model.save(path)
        with serve_in_thread(
            path, poll_seconds=5.0, batch_max=1, batch_wait_us=0,
            queue_depth=2,
        ) as handle:
            # make every engine call slow so the bounded queue fills
            engine = handle.server.watcher.current.engine
            original = engine.assign_batch

            def slow(points):
                time.sleep(0.05)
                return original(points)

            engine.assign_batch = slow
            point = sorted(basket.transactions[0].items)
            saw = {"ok": 0, "shed": 0, "retry_after": True}

            def worker():
                conn = http.client.HTTPConnection(*handle.address, timeout=30)
                for _ in range(6):
                    conn.request(
                        "POST", "/assign", body=json.dumps({"point": point})
                    )
                    response = conn.getresponse()
                    response.read()
                    if response.status == 200:
                        saw["ok"] += 1
                    elif response.status == 503:
                        saw["shed"] += 1
                        if response.headers.get("Retry-After") is None:
                            saw["retry_after"] = False
                conn.close()

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = handle.server.registry.snapshot()["counters"]
        assert saw["shed"] > 0, "bounded queue never shed load"
        assert saw["ok"] > 0, "every request was shed"
        assert saw["retry_after"], "503 responses must carry Retry-After"
        assert snap["http.rejected"] == saw["shed"]

    def test_request_spans_nest_under_server_root(self, running_server):
        request_json(running_server.address, "GET", "/healthz")
        request_json(running_server.address, "POST", "/assign",
                     {"point": [1, 2, 3]})
        roots = running_server.server.tracer.spans()
        root = next(s for s in roots if s.name == "serve.http")
        child_names = {c.name for c in root.children}
        assert "http.healthz" in child_names
        assert "http.assign" in child_names
        statuses = {c.attrs.get("status") for c in root.children}
        assert statuses <= {200, 400, 404, 405, 503}

    def test_span_recording_is_bounded(self, fitted_model, tmp_path):
        _, model = fitted_model
        path = tmp_path / "model.json"
        model.save(path)
        with serve_in_thread(
            path, poll_seconds=5.0, trace_max_requests=3
        ) as handle:
            for _ in range(6):
                request_json(handle.address, "GET", "/healthz")
            root = next(
                s for s in handle.server.tracer.spans()
                if s.name == "serve.http"
            )
            snap = handle.server.registry.snapshot()["counters"]
        assert len(root.children) == 3
        assert snap["http.trace.dropped"] == 3

    def test_graceful_shutdown_completes_inflight_and_stops_accepting(
        self, fitted_model, tmp_path
    ):
        basket, model = fitted_model
        path = tmp_path / "model.json"
        model.save(path)
        handle = serve_in_thread(path, poll_seconds=5.0, batch_wait_us=20_000)
        address = handle.address
        point = sorted(basket.transactions[0].items)
        results = []

        def slow_client():
            response, data = request_json(
                address, "POST", "/assign", {"point": point}
            )
            results.append(response.status)

        client = threading.Thread(target=slow_client)
        client.start()
        time.sleep(0.01)  # let the request reach the batcher queue
        handle.stop()
        client.join(10)
        assert results == [200], "in-flight request was dropped on shutdown"
        with pytest.raises(OSError):
            http.client.HTTPConnection(*address, timeout=2).request(
                "GET", "/healthz"
            )
        # the root span closed with real timings
        root = next(
            s for s in handle.server.tracer.spans() if s.name == "serve.http"
        )
        assert root.wall_seconds > 0
