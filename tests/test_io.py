"""Tests for the UCI .data and transactions-file readers/writers."""

import io

import pytest

from repro.data.io import (
    iter_transactions,
    read_transactions,
    read_uci_data,
    transactions_to_string,
    write_transactions,
    write_uci_data,
)
from repro.data.records import MISSING, CategoricalDataset, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset


class TestUciData:
    def test_read_with_label_first(self):
        text = "edible,convex,brown\npoisonous,flat,?\n"
        ds = read_uci_data(io.StringIO(text), ["shape", "color"])
        assert len(ds) == 2
        assert ds[0].label == "edible"
        assert ds[0]["shape"] == "convex"
        assert ds[1]["color"] is MISSING

    def test_read_without_label(self):
        ds = read_uci_data(io.StringIO("a,b\nc,d\n"), ["x", "y"], label_column=None)
        assert ds.labels() == [None, None]
        assert ds[1]["y"] == "d"

    def test_blank_lines_and_comments_skipped(self):
        text = "# header comment\n\nedible,convex\n"
        ds = read_uci_data(io.StringIO(text), ["shape"])
        assert len(ds) == 1

    def test_wrong_arity_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            read_uci_data(io.StringIO("e,a\np,a,b\n"), ["only"])

    def test_round_trip(self, tmp_path):
        schema = CategoricalSchema(["a", "b"])
        ds = CategoricalDataset(
            schema, [["x", MISSING], ["y", "z"]], labels=["l1", "l2"]
        )
        path = tmp_path / "data.data"
        write_uci_data(ds, path)
        back = read_uci_data(path, ["a", "b"])
        assert back[0].label == "l1"
        assert back[0]["b"] is MISSING
        assert back[1]["a"] == "y"

    def test_write_without_label(self):
        ds = CategoricalDataset(["a"], [["x"]])
        buf = io.StringIO()
        write_uci_data(ds, buf, include_label=False)
        assert buf.getvalue() == "x\n"


class TestTransactionsFile:
    def test_read_simple(self):
        ds = read_transactions(io.StringIO("milk bread\nbeer\n"))
        assert len(ds) == 2
        assert ds[0] == {"milk", "bread"}
        assert ds[1].tid == 1

    def test_round_trip(self, tmp_path):
        original = TransactionDataset([["b", "a"], ["c"]])
        path = tmp_path / "txns.txt"
        write_transactions(original, path)
        back = read_transactions(path)
        assert [t.items for t in back] == [frozenset({"a", "b"}), frozenset({"c"})]

    def test_iter_transactions_streams(self, tmp_path):
        path = tmp_path / "txns.txt"
        path.write_text("a b\n# skip me\n\nc\n")
        streamed = list(iter_transactions(path))
        assert len(streamed) == 2
        assert streamed[1] == {"c"}

    def test_to_string(self):
        text = transactions_to_string([Transaction(["b", "a"])])
        assert text == "a b\n"
