"""Tests for cluster characterisation (Tables 7-9)."""

import pytest

from repro.data.records import MISSING, CategoricalDataset, CategoricalSchema
from repro.eval.characterize import (
    AttributeValueSupport,
    characterize_cluster,
    characterize_clustering,
    distinguishing_attributes,
    shared_majority_attributes,
)


@pytest.fixture
def dataset():
    schema = CategoricalSchema(["vote1", "vote2", "vote3"])
    rows = [
        ["y", "y", "n"],
        ["y", "y", "n"],
        ["y", "n", "n"],
        ["n", "n", "y"],
        ["n", "n", "y"],
        ["n", MISSING, "y"],
    ]
    return CategoricalDataset(schema, rows)


class TestCharacterizeCluster:
    def test_majority_values_with_support(self, dataset):
        entries = characterize_cluster(dataset, [0, 1, 2], min_support=0.5)
        as_dict = {(e.attribute, e.value): e.support for e in entries}
        assert as_dict[("vote1", "y")] == pytest.approx(1.0)
        assert as_dict[("vote2", "y")] == pytest.approx(2 / 3)
        assert as_dict[("vote3", "n")] == pytest.approx(1.0)

    def test_min_support_filters(self, dataset):
        entries = characterize_cluster(dataset, [0, 1, 2], min_support=0.9)
        attributes = {e.attribute for e in entries}
        assert attributes == {"vote1", "vote3"}

    def test_missing_counts_in_denominator(self, dataset):
        entries = characterize_cluster(dataset, [3, 4, 5], min_support=0.6)
        as_dict = {(e.attribute, e.value): e.support for e in entries}
        # vote2 = 'n' appears in 2 of 3 records (one missing)
        assert as_dict[("vote2", "n")] == pytest.approx(2 / 3)

    def test_multiple_values_reported_in_support_order(self):
        schema = CategoricalSchema(["a"])
        ds = CategoricalDataset(schema, [["x"], ["x"], ["y"], ["y"], ["y"]])
        entries = characterize_cluster(ds, [0, 1, 2, 3, 4], min_support=0.3)
        assert [(e.value, e.support) for e in entries] == [
            ("y", pytest.approx(0.6)),
            ("x", pytest.approx(0.4)),
        ]

    def test_str_rendering(self):
        entry = AttributeValueSupport("crime", "y", 0.98)
        assert str(entry) == "(crime,y,0.98)"

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            characterize_cluster(dataset, [], min_support=0.5)
        with pytest.raises(ValueError):
            characterize_cluster(dataset, [0], min_support=0.0)


class TestClusteringLevel:
    def test_characterize_all(self, dataset):
        per_cluster = characterize_clustering(dataset, [[0, 1, 2], [3, 4, 5]])
        assert len(per_cluster) == 2

    def test_distinguishing_attributes(self, dataset):
        differing = distinguishing_attributes(dataset, [0, 1, 2], [3, 4, 5])
        assert differing == ["vote1", "vote2", "vote3"]

    def test_shared_majorities(self, dataset):
        schema = dataset.schema
        same = CategoricalDataset(
            schema, [["y", "y", "y"], ["y", "y", "n"], ["y", "n", "y"], ["y", "n", "n"]]
        )
        shared = shared_majority_attributes(same, [0, 1], [2, 3])
        assert "vote1" in shared
