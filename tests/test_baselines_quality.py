"""Tests for the concrete baselines: centroid, MST, group-average, k-modes."""

import numpy as np
import pytest

from repro.baselines import (
    centroid_cluster,
    group_average_cluster,
    kmodes_cluster,
    matching_dissimilarity,
    mst_cluster,
    similarity_matrix,
    squared_euclidean_matrix,
)
from repro.data.records import MISSING, CategoricalDataset, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset


class TestSquaredEuclidean:
    def test_known_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d2 = squared_euclidean_matrix(pts)
        assert d2[0, 1] == pytest.approx(25.0)
        assert d2[0, 0] == pytest.approx(0.0)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(20, 5))
        assert (squared_euclidean_matrix(pts) >= 0).all()


class TestCentroidCluster:
    def test_example_1_1_bad_merge(self):
        """Example 1.1: the centroid algorithm merges {1,4} and {6} --
        transactions with no item in common -- before joining either to
        the first two."""
        ds = TransactionDataset(
            [{1, 2, 3, 5}, {2, 3, 4, 5}, {1, 4}, {6}],
            vocabulary=[1, 2, 3, 4, 5, 6],
        )
        result = centroid_cluster(ds, k=2, eliminate_singletons=False)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]

    def test_numeric_matrix_input(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        result = centroid_cluster(pts, k=2, eliminate_singletons=False)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]

    def test_categorical_input_uses_boolean_expansion(self):
        schema = CategoricalSchema(["a", "b"])
        rows = [["x", "y"]] * 3 + [["p", "q"]] * 3
        ds = CategoricalDataset(schema, rows)
        result = centroid_cluster(ds, k=2, eliminate_singletons=False)
        assert sorted(map(len, result.clusters)) == [3, 3]

    def test_singleton_elimination(self):
        # two tight pairs plus one far-away singleton
        pts = np.array([[0.0], [0.1], [10.0], [10.1], [99.0]])
        result = centroid_cluster(
            pts, k=2, eliminate_singletons=True, singleton_threshold_fraction=0.6
        )
        assert result.outlier_indices == [4]
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]

    def test_no_elimination_keeps_everything(self):
        pts = np.array([[0.0], [0.1], [99.0]])
        result = centroid_cluster(pts, k=2, eliminate_singletons=False)
        assert result.outlier_indices == []
        assert sum(map(len, result.clusters)) == 3

    def test_labels(self):
        pts = np.array([[0.0], [0.1], [9.0]])
        result = centroid_cluster(pts, k=2, eliminate_singletons=False)
        labels = result.labels()
        assert labels[0] == labels[1] != labels[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            centroid_cluster(np.zeros((0, 2)), k=1)
        with pytest.raises(ValueError):
            centroid_cluster(np.zeros((3, 2)), k=0)


class TestMstCluster:
    def test_example_1_2_cross_cluster_merge(self):
        """Example 1.2: MST merges {1,2,3} and {1,2,7} (Jaccard 0.5)
        early even though they belong to different clusters."""
        from itertools import combinations

        big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
        small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
        ds = TransactionDataset([Transaction(t) for t in big + small])
        truth = [0] * len(big) + [1] * len(small)
        result = mst_cluster(ds, k=2)
        mixed = sum(
            1 for c in result.clusters if len({truth[p] for p in c}) > 1
        )
        assert mixed >= 1

    def test_well_separated_ok(self):
        ds = TransactionDataset([{1, 2}, {1, 2, 3}, {9, 10}, {9, 10, 11}])
        result = mst_cluster(ds, k=2)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]

    def test_min_similarity_stops_early(self):
        ds = TransactionDataset([{1, 2}, {1, 2, 3}, {9, 10}])
        result = mst_cluster(ds, k=1, min_similarity=0.4)
        assert len(result.clusters) == 2


class TestGroupAverageCluster:
    def test_well_separated_ok(self):
        ds = TransactionDataset([{1, 2}, {1, 2, 3}, {9, 10}, {9, 10, 11}])
        result = group_average_cluster(ds, k=2)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]

    def test_similarity_matrix_diagonal(self):
        ds = TransactionDataset([{1}, {2}])
        sim = similarity_matrix(ds)
        assert sim[0, 0] == 1.0
        assert sim[0, 1] == 0.0


class TestKModes:
    @pytest.fixture
    def dataset(self):
        schema = CategoricalSchema(["a", "b", "c"])
        rows = [["x", "y", "z"]] * 10 + [["p", "q", "r"]] * 10
        return CategoricalDataset(schema, rows)

    def test_matching_dissimilarity(self):
        assert matching_dissimilarity(("x", "y"), ("x", "z")) == 1
        assert matching_dissimilarity(("x", "y"), ("x", "y")) == 0

    def test_missing_never_matches(self):
        assert matching_dissimilarity((MISSING, "y"), (MISSING, "y")) == 1
        assert matching_dissimilarity((MISSING,), ("x",)) == 1

    def test_obvious_clusters(self, dataset):
        result = kmodes_cluster(dataset, k=2, seed=0)
        assert sorted(map(len, result.clusters)) == [10, 10]
        assert result.cost == 0.0

    def test_modes_are_cluster_profiles(self, dataset):
        result = kmodes_cluster(dataset, k=2, seed=0)
        assert set(result.modes) == {("x", "y", "z"), ("p", "q", "r")}

    def test_cost_history_non_increasing_after_first(self, dataset):
        result = kmodes_cluster(dataset, k=2, seed=3, n_init=1)
        history = result.history
        assert all(history[i + 1] <= history[i] for i in range(len(history) - 1))

    def test_n_init_picks_best(self, dataset):
        single = kmodes_cluster(dataset, k=2, seed=1, n_init=1)
        multi = kmodes_cluster(dataset, k=2, seed=1, n_init=5)
        assert multi.cost <= single.cost

    def test_deterministic(self, dataset):
        a = kmodes_cluster(dataset, k=2, seed=9)
        b = kmodes_cluster(dataset, k=2, seed=9)
        assert a.clusters == b.clusters

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            kmodes_cluster(dataset, k=0)
        with pytest.raises(ValueError):
            kmodes_cluster(dataset, k=100)
        with pytest.raises(ValueError):
            kmodes_cluster(dataset, k=2, max_iterations=0)
        with pytest.raises(ValueError):
            kmodes_cluster(dataset, k=2, n_init=0)

    def test_labels_partition(self, dataset):
        result = kmodes_cluster(dataset, k=2, seed=0)
        labels = result.labels()
        assert (labels >= 0).all()
        assert len(labels) == len(dataset)
