"""Edge cases and failure injection across module boundaries."""

import numpy as np
import pytest

from repro.core import (
    RockPipeline,
    cluster_with_links,
    compute_links,
    compute_neighbor_graph,
    rock,
)
from repro.core.links import LinkTable
from repro.data.records import CategoricalDataset, CategoricalSchema, MISSING
from repro.data.transactions import Transaction, TransactionDataset


class TestDegenerateInputs:
    def test_single_point(self):
        result = rock(TransactionDataset([{1, 2}]), k=1, theta=0.5)
        assert result.clusters == [[0]]

    def test_all_identical_points(self):
        ds = TransactionDataset([{1, 2, 3}] * 10)
        result = rock(ds, k=1, theta=0.99)
        assert result.clusters == [list(range(10))]

    def test_all_disjoint_points(self):
        ds = TransactionDataset([{i} for i in range(8)])
        result = rock(ds, k=2, theta=0.5)
        # nothing is a neighbor of anything; no merge ever happens
        assert len(result.clusters) == 8
        assert result.stopped_early

    def test_empty_transactions_never_neighbors(self):
        ds = TransactionDataset([set(), set(), {1, 2}, {1, 2}])
        graph = compute_neighbor_graph(ds, theta=0.5)
        assert not graph.are_neighbors(0, 1)
        assert graph.are_neighbors(2, 3)

    def test_theta_zero_everything_neighbors(self):
        ds = TransactionDataset([{1}, {2}, {3}])
        graph = compute_neighbor_graph(ds, theta=0.0)
        assert graph.degrees().tolist() == [2, 2, 2]

    def test_theta_one_only_identical_neighbors(self):
        ds = TransactionDataset([{1, 2}, {1, 2}, {1, 3}])
        graph = compute_neighbor_graph(ds, theta=1.0)
        assert graph.are_neighbors(0, 1)
        assert not graph.are_neighbors(0, 2)

    def test_identical_pairs_at_theta_one_have_no_links(self):
        # two identical points are mutual neighbors but share no third
        # common neighbor: zero links, so they can never merge --
        # definitional ROCK behaviour worth pinning
        ds = TransactionDataset([{1, 2}, {1, 2}, {5, 6}, {5, 6}])
        result = rock(ds, k=2, theta=1.0)
        assert len(result.clusters) == 4
        assert result.stopped_early

    def test_f_theta_zero_degenerate_goodness_still_clusters(self):
        # theta = 1 makes f = 0 and every positive-link goodness inf;
        # with identical TRIPLES each pair shares the third point as a
        # common neighbor, so merging proceeds and must terminate
        # deterministically
        ds = TransactionDataset([{1, 2}] * 3 + [{5, 6}] * 3)
        result = rock(ds, k=2, theta=1.0)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4, 5]]


class TestRecordsEdgeCases:
    def test_record_with_all_values_missing(self):
        schema = CategoricalSchema(["a", "b"])
        ds = CategoricalDataset(schema, [[MISSING, MISSING], ["x", "y"], ["x", "y"]])
        # the empty record encodes to an empty transaction: never a neighbor
        graph = compute_neighbor_graph(ds, theta=0.5)
        assert graph.degrees()[0] == 0

    def test_pipeline_rejects_when_all_points_isolated(self):
        ds = TransactionDataset([{1}, {2}, {3}])
        with pytest.raises(ValueError, match="pruned"):
            RockPipeline(k=1, theta=0.5).fit(ds)

    def test_pipeline_min_neighbors_zero_keeps_isolated(self):
        ds = TransactionDataset([{1}, {2}, {1, 2}])
        result = RockPipeline(k=3, theta=0.9, min_neighbors=0).fit(ds)
        assert result.n_clusters == 3


class TestLinkTableEdges:
    def test_zero_size_table(self):
        table = LinkTable(0)
        assert table.nnz_pairs() == 0
        assert list(table.pairs()) == []

    def test_cluster_with_empty_links(self):
        result = cluster_with_links(LinkTable(3), k=1, f_theta=0.5)
        assert len(result.clusters) == 3
        assert result.stopped_early

    def test_saturated_links(self):
        table = LinkTable(4)
        for i in range(4):
            for j in range(i + 1, 4):
                table.increment(i, j, 100)
        result = cluster_with_links(table, k=1, f_theta=0.5)
        assert result.clusters == [[0, 1, 2, 3]]
        assert not result.stopped_early


class TestSampleBoundaries:
    def test_sample_size_equal_to_n(self):
        ds = TransactionDataset([{1, 2}, {1, 3}, {2, 3}] * 4)
        result = RockPipeline(k=1, theta=0.3, sample_size=12, seed=0).fit(ds)
        assert len(result.sample_indices) == 12

    def test_sample_size_larger_than_n(self):
        ds = TransactionDataset([{1, 2}, {1, 3}, {2, 3}])
        result = RockPipeline(k=1, theta=0.3, sample_size=50, seed=0).fit(ds)
        assert len(result.sample_indices) == 3

    def test_tiny_sample_still_labels(self):
        import random

        rng = random.Random(0)
        a = [Transaction(rng.sample(range(10), 5)) for _ in range(40)]
        b = [Transaction(rng.sample(range(20, 30), 5)) for _ in range(40)]
        ds = TransactionDataset(a + b)
        result = RockPipeline(
            k=2, theta=0.3, sample_size=10, labeling_fraction=1.0, seed=1
        ).fit(ds)
        # a 10-point sample cannot label everything at this theta, but a
        # solid majority must land, and nothing lands in a wrong cluster
        assigned = int((result.labels >= 0).sum())
        assert assigned >= len(ds) // 2
        truth = [0] * 40 + [1] * 40
        for cluster in result.clusters:
            assert len({truth[i] for i in cluster}) == 1

    def test_k_exceeds_surviving_points(self):
        ds = TransactionDataset([{1, 2}, {1, 2, 3}, {9}, {10}])
        result = RockPipeline(k=10, theta=0.4).fit(ds)
        # only two points survive pruning; both returned as clusters
        assert result.n_clusters == 2


class TestNumericalExtremes:
    def test_huge_link_counts_do_not_overflow(self):
        table = LinkTable(3)
        table.increment(0, 1, 10**12)
        table.increment(1, 2, 10**12)
        result = cluster_with_links(table, k=1, f_theta=1.0)
        assert result.clusters == [[0, 1, 2]]

    def test_large_cluster_size_goodness_finite(self):
        from repro.core.goodness import goodness

        value = goodness(10**9, 10**6, 10**6, 1.0)
        assert np.isfinite(value)
        assert value > 0
