"""Tests for repro.obs.manifest: host metadata, persistence, round trips."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    RunManifest,
    Tracer,
    host_metadata,
)


class TestHostMetadata:
    def test_expected_keys(self):
        meta = host_metadata()
        assert set(meta) == {
            "platform", "python", "machine", "cpu_count", "numpy", "scipy",
            "mem_total_bytes", "mem_available_bytes",
        }
        assert isinstance(meta["cpu_count"], int)
        json.dumps(meta)  # JSON-plain


class TestFromTracer:
    def make_manifest(self):
        tracer = Tracer()
        with tracer.span("fit", fit_mode="dense"):
            with tracer.span("neighbors"):
                tracer.registry.inc("fit.neighbors.rows", 10)
        return RunManifest.from_tracer("unit", tracer, config={"theta": 0.5})

    def test_bundles_spans_metrics_host(self):
        manifest = self.make_manifest()
        assert manifest.name == "unit"
        assert manifest.config == {"theta": 0.5}
        assert manifest.metrics["counters"]["fit.neighbors.rows"] == 10
        assert manifest.span_names() == {"fit", "neighbors"}
        assert manifest.host["python"] == host_metadata()["python"]
        assert manifest.created_unix is not None

    def test_find_span(self):
        manifest = self.make_manifest()
        neighbors = manifest.find_span("neighbors")
        assert neighbors is not None
        assert neighbors["name"] == "neighbors"
        assert manifest.find_span("no-such-span") is None

    def test_explicit_host_overrides_probe(self):
        tracer = Tracer()
        manifest = RunManifest.from_tracer("x", tracer, host={"machine": "m"})
        assert manifest.host == {"machine": "m"}


class TestPersistence:
    def test_save_load_round_trip_path(self, tmp_path):
        manifest = TestFromTracer().make_manifest()
        path = tmp_path / "run.manifest.json"
        manifest.save(path)
        assert RunManifest.load(path).to_dict() == manifest.to_dict()

    def test_save_load_round_trip_stream(self):
        manifest = TestFromTracer().make_manifest()
        buf = io.StringIO()
        manifest.save(buf)
        buf.seek(0)
        assert RunManifest.load(buf).to_dict() == manifest.to_dict()

    def test_saved_file_is_indented_json(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        TestFromTracer().make_manifest().save(path)
        text = path.read_text()
        assert text.startswith("{\n  ")
        assert text.endswith("\n")
        data = json.loads(text)
        assert data["format"] == MANIFEST_FORMAT
        assert data["version"] == MANIFEST_VERSION

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="expected format"):
            RunManifest.from_dict({"format": "rock-model", "version": 1,
                                   "name": "x"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            RunManifest.from_dict({"format": MANIFEST_FORMAT,
                                   "version": MANIFEST_VERSION + 1,
                                   "name": "x"})


# strategies producing only JSON-plain values, so dict equality after a
# JSON round trip is exact
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_configs = st.dictionaries(st.text(max_size=10), _json_scalars, max_size=4)
_span_dicts = st.recursive(
    st.fixed_dictionaries({
        "name": st.text(min_size=1, max_size=10),
        "attrs": _configs,
        "wall_seconds": st.floats(min_value=0, max_value=1e6,
                                  allow_nan=False, allow_infinity=False),
        "cpu_seconds": st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
        "rss_delta_bytes": st.integers(min_value=0, max_value=2**40),
        "error": st.none() | st.text(max_size=10),
        "children": st.just([]),
    }),
    lambda children: st.fixed_dictionaries({
        "name": st.text(min_size=1, max_size=10),
        "attrs": _configs,
        "wall_seconds": st.just(0.0),
        "cpu_seconds": st.just(0.0),
        "rss_delta_bytes": st.just(0),
        "error": st.none(),
        "children": st.lists(children, max_size=3),
    }),
    max_leaves=6,
)


@settings(max_examples=50, deadline=None)
@given(
    name=st.text(min_size=1, max_size=20),
    config=_configs,
    counters=st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2**40),
        max_size=4,
    ),
    spans=st.lists(_span_dicts, max_size=3),
    created=st.none() | st.floats(min_value=0, max_value=4e9,
                                  allow_nan=False, allow_infinity=False),
)
def test_manifest_json_round_trip(name, config, counters, spans, created):
    manifest = RunManifest(
        name=name,
        config=config,
        host=host_metadata(),
        metrics={"counters": counters, "gauges": {}, "histograms": {}},
        spans=spans,
        created_unix=created,
    )
    wire = json.dumps(manifest.to_dict())
    restored = RunManifest.from_dict(json.loads(wire))
    assert restored.to_dict() == manifest.to_dict()
