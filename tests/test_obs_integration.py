"""End-to-end observability tests: traced fits, persisted timings, CLI.

Covers the acceptance criterion of the observability issue: a
``fit_mode="parallel", workers=2`` fit under a tracer must leave a
single :class:`~repro.obs.manifest.RunManifest` whose span tree covers
every fit phase and whose metrics include worker-side counters merged
back through the process pool.
"""

import json

import pytest

from repro.cli import main
from repro.core.pipeline import RockPipeline
from repro.datasets import small_synthetic_basket
from repro.obs import MetricsRegistry, RunManifest, Tracer
from repro.serve.metrics import ServeMetrics

FIT_PHASES = ("sample", "neighbors", "links", "cluster", "label")


@pytest.fixture(scope="module")
def basket():
    return small_synthetic_basket(n_clusters=4, cluster_size=80, n_outliers=10)


class TestTracedParallelFit:
    """The ISSUE acceptance test."""

    @pytest.fixture(scope="class")
    def manifest(self):
        data = small_synthetic_basket(
            n_clusters=4, cluster_size=80, n_outliers=10
        ).transactions
        tracer = Tracer()
        pipeline = RockPipeline(
            k=4, theta=0.5, sample_size=200, seed=0,
            fit_mode="parallel", workers=2,
        )
        pipeline.fit(data, tracer=tracer)
        return RunManifest.from_tracer(
            "fit", tracer, config={"fit_mode": "parallel", "workers": 2},
        ), len(data)

    def test_single_root_span_covers_every_phase(self, manifest):
        manifest, _n = manifest
        assert len(manifest.spans) == 1
        root = manifest.spans[0]
        assert root["name"] == "fit"
        child_names = [c["name"] for c in root["children"]]
        for phase in FIT_PHASES:
            assert phase in child_names, f"missing phase span {phase!r}"
        assert all(c["wall_seconds"] >= 0.0 for c in root["children"])
        assert all(c["error"] is None for c in root["children"])

    def test_worker_metrics_merged_into_manifest(self, manifest):
        manifest, n = manifest
        counters = manifest.metrics["counters"]
        # recorded inside pool workers, shipped back as snapshot deltas
        assert counters["fit.neighbors.rows"] == 200  # the sample size
        assert counters["fit.links.chunks"] >= 1
        assert counters["fit.links.pair_increments"] > 0
        gauges = manifest.metrics["gauges"]
        assert gauges["fit.n_points"] == n
        assert gauges["fit.n_sampled"] == 200
        assert gauges["fit.n_clusters"] >= 1

    def test_manifest_survives_json(self, manifest, tmp_path):
        manifest, _n = manifest
        path = tmp_path / "fit.manifest.json"
        manifest.save(path)
        assert RunManifest.load(path).to_dict() == manifest.to_dict()


class TestFitTimingsPersisted:
    """Bugfix regression: phase timings must reach the saved model."""

    def test_metadata_has_all_phase_timings(self, basket):
        pipeline = RockPipeline(k=4, theta=0.5, sample_size=None, seed=0)
        result, model = pipeline.fit_model(basket.transactions)
        timings = model.metadata["fit_timings"]
        assert set(timings) == set(FIT_PHASES)
        assert all(isinstance(v, float) and v >= 0.0 for v in timings.values())
        assert timings == {k: pytest.approx(v) for k, v in result.timings.items()}

    def test_timings_survive_model_round_trip(self, basket, tmp_path):
        pipeline = RockPipeline(k=4, theta=0.5, sample_size=None, seed=0)
        _, model = pipeline.fit_model(basket.transactions)
        path = tmp_path / "model.json"
        model.save(path)
        from repro.serve.model import RockModel

        assert set(RockModel.load(path).metadata["fit_timings"]) == set(
            FIT_PHASES
        )


class TestUntracedFitUnchanged:
    def test_fit_without_tracer_still_times_phases(self, basket):
        pipeline = RockPipeline(k=4, theta=0.5, sample_size=None, seed=0)
        result = pipeline.fit(basket.transactions)
        assert set(result.timings) == set(FIT_PHASES)


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCli:
    @pytest.fixture
    def basket_file(self, tmp_path, capsys):
        out = tmp_path / "txns.txt"
        run(capsys, "generate", "basket", "--out", str(out))
        return out

    def test_cluster_trace_out_parallel(self, basket_file, tmp_path, capsys):
        trace = tmp_path / "run.manifest.json"
        code, stdout = run(
            capsys, "cluster", "--input", str(basket_file),
            "--theta", "0.4", "-k", "4", "--min-cluster-size", "5",
            "--fit-mode", "parallel", "--workers", "2",
            "--trace-out", str(trace),
        )
        assert code == 0
        assert "phase seconds" in stdout
        manifest = RunManifest.load(trace)
        assert manifest.name == "cluster"
        names = manifest.span_names()
        for phase in ("fit",) + FIT_PHASES:
            assert phase in names
        assert manifest.metrics["counters"]["fit.links.chunks"] >= 1
        assert manifest.config["fit_mode"] == "parallel"

    def test_cluster_metrics_format_prom(self, basket_file, capsys):
        code, stdout = run(
            capsys, "cluster", "--input", str(basket_file),
            "--theta", "0.4", "-k", "4", "--min-cluster-size", "5",
            "--metrics-format", "prom",
        )
        assert code == 0
        assert "# TYPE rock_fit_n_clusters gauge" in stdout
        assert "rock_fit_cluster_merges_total" in stdout

    def test_cluster_metrics_format_json(self, basket_file, capsys):
        code, stdout = run(
            capsys, "cluster", "--input", str(basket_file),
            "--theta", "0.4", "-k", "4", "--min-cluster-size", "5",
            "--metrics-format", "json",
        )
        assert code == 0
        json_lines = [
            line for line in stdout.splitlines() if line.startswith("{")
        ]
        assert json_lines
        names = {json.loads(line)["name"] for line in json_lines}
        assert "fit.n_clusters" in names

    def test_fit_model_renders_persisted_timings(
        self, basket_file, tmp_path, capsys
    ):
        model = tmp_path / "model.json"
        code, stdout = run(
            capsys, "fit-model", "--input", str(basket_file),
            "--theta", "0.45", "-k", "4", "--sample", "300",
            "--model", str(model),
        )
        assert code == 0
        phase_row = [
            line for line in stdout.splitlines() if "phase seconds" in line
        ][0]
        for phase in FIT_PHASES:
            assert f"{phase}:" in phase_row

    def test_assign_trace_out_carries_serve_metrics(
        self, basket_file, tmp_path, capsys
    ):
        model = tmp_path / "model.json"
        run(
            capsys, "fit-model", "--input", str(basket_file),
            "--theta", "0.45", "-k", "4", "--sample", "300",
            "--model", str(model),
        )
        assigned = tmp_path / "assigned.txt"
        trace = tmp_path / "assign.manifest.json"
        code, _ = run(
            capsys, "assign", "--model", str(model),
            "--input", str(basket_file), "--output", str(assigned),
            "--trace-out", str(trace),
        )
        assert code == 0
        manifest = RunManifest.load(trace)
        assert "assign" in manifest.span_names()
        counters = manifest.metrics["counters"]
        n_lines = len(basket_file.read_text().splitlines())
        assert counters["serve.points"] == n_lines
        assert counters["serve.requests"] >= 1
        assert "serve.batch_size" in manifest.metrics["histograms"]


class TestServeMetricsSharedRegistry:
    def test_records_through_external_registry(self):
        registry = MetricsRegistry()
        metrics = ServeMetrics(registry=registry)
        assert metrics.registry is registry
        metrics.record_batch(
            n_points=10, n_outliers=1, seconds=0.5,
            cache_hits=4, cache_misses=6,
        )
        snap = registry.snapshot()
        assert snap["counters"]["serve.requests"] == 1
        assert snap["counters"]["serve.points"] == 10
        assert snap["histograms"]["serve.batch_size"]["count"] == 1
        assert snap["histograms"]["serve.latency.assign"]["count"] == 1
        # and the legacy view stays intact on top of the same registry
        legacy = metrics.snapshot()
        assert legacy["requests"] == 1
        assert legacy["cache"]["hits"] == 4
