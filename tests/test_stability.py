"""Tests for the stability/robustness analysis tools."""

import random

import pytest

from repro.core import RockPipeline
from repro.data.transactions import Transaction
from repro.datasets import small_synthetic_basket
from repro.eval.stability import StabilityReport, noise_robustness, stability_analysis


def rock_procedure(k, theta, **kwargs):
    def run(points, seed):
        return RockPipeline(k=k, theta=theta, seed=seed, **kwargs).fit(points).labels
    return run


class TestStabilityAnalysis:
    def test_deterministic_procedure_is_perfectly_stable(self):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=60, n_outliers=5, seed=0
        )

        def constant(points, seed):
            return basket.labels  # ignore the seed entirely

        report = stability_analysis(constant, basket.transactions, n_runs=3)
        assert report.mean_pairwise_ari == pytest.approx(1.0)
        assert report.worst_pairwise_ari == pytest.approx(1.0)

    def test_rock_stable_under_resampling(self):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=120, n_outliers=15, seed=2
        )
        procedure = rock_procedure(
            3, 0.45, sample_size=120, min_cluster_size=5
        )
        report = stability_analysis(
            procedure, basket.transactions, truth=basket.labels, n_runs=3
        )
        assert report.mean_pairwise_ari > 0.9
        assert report.mean_truth_ari > 0.9

    def test_random_procedure_is_unstable(self):
        basket = small_synthetic_basket(
            n_clusters=2, cluster_size=50, n_outliers=0, seed=1
        )

        def scrambled(points, seed):
            rng = random.Random(seed)
            return [rng.randrange(2) for _ in points]

        report = stability_analysis(scrambled, basket.transactions, n_runs=3)
        assert report.mean_pairwise_ari < 0.2

    def test_report_counts(self):
        basket = small_synthetic_basket(
            n_clusters=2, cluster_size=40, n_outliers=0, seed=3
        )
        procedure = rock_procedure(2, 0.45)
        report = stability_analysis(
            procedure, basket.transactions, truth=basket.labels, n_runs=4
        )
        assert len(report.pairwise_ari) == 6  # C(4, 2)
        assert len(report.truth_ari) == 4

    def test_validation(self):
        basket = small_synthetic_basket(n_clusters=2, cluster_size=30, seed=4)
        with pytest.raises(ValueError, match="at least 2"):
            stability_analysis(lambda p, s: basket.labels, basket.transactions, n_runs=1)
        with pytest.raises(ValueError, match="label every"):
            stability_analysis(lambda p, s: [0], basket.transactions, n_runs=2)
        with pytest.raises(ValueError, match="align"):
            stability_analysis(
                lambda p, s: basket.labels,
                basket.transactions,
                truth=[0],
                n_runs=2,
            )


class TestNoiseRobustness:
    @pytest.fixture(scope="class")
    def basket(self):
        return small_synthetic_basket(
            n_clusters=3, cluster_size=80, n_outliers=0, seed=5
        )

    def make_noise_factory(self, basket):
        vocabulary = basket.transactions.vocabulary

        def make_noise(i, rng):
            return Transaction(rng.sample(vocabulary, 12), tid=f"noise{i}")

        return make_noise

    def test_rock_degrades_gracefully(self, basket):
        procedure = rock_procedure(3, 0.45, min_cluster_size=5)
        scores = noise_robustness(
            procedure,
            list(basket.transactions),
            basket.labels,
            self.make_noise_factory(basket),
            noise_fractions=(0.0, 0.2),
            seed=0,
        )
        assert scores[0.0] > 0.95
        assert scores[0.2] > 0.85  # links shrug off 20% random noise

    def test_fraction_zero_equals_clean_run(self, basket):
        procedure = rock_procedure(3, 0.45, min_cluster_size=5)
        scores = noise_robustness(
            procedure,
            list(basket.transactions),
            basket.labels,
            self.make_noise_factory(basket),
            noise_fractions=(0.0,),
            seed=0,
        )
        assert set(scores) == {0.0}

    def test_validation(self, basket):
        procedure = rock_procedure(3, 0.45)
        with pytest.raises(ValueError, match="align"):
            noise_robustness(
                procedure, list(basket.transactions), [0],
                self.make_noise_factory(basket),
            )
        with pytest.raises(ValueError, match="non-negative"):
            noise_robustness(
                procedure, list(basket.transactions), basket.labels,
                self.make_noise_factory(basket), noise_fractions=(-0.1,),
            )
