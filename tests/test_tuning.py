"""Tests for the theta-selection advisor."""

import numpy as np
import pytest

from repro.core.tuning import ThetaSuggestion, similarity_profile, suggest_theta
from repro.data.transactions import Transaction, TransactionDataset
from repro.datasets import small_synthetic_basket


def bimodal_points():
    # two tight families: within-family Jaccard high, cross ~0
    a = [Transaction({1, 2, 3, i}) for i in range(4, 9)]
    b = [Transaction({20, 21, 22, i}) for i in range(23, 28)]
    return a + b


class TestSimilarityProfile:
    def test_all_pairs_when_small(self):
        points = bimodal_points()
        profile = similarity_profile(points)
        n = len(points)
        assert len(profile) == n * (n - 1) // 2
        assert np.all(np.diff(profile) >= 0)  # sorted

    def test_sampling_cap(self):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=60, n_outliers=0, seed=1
        )
        profile = similarity_profile(
            basket.transactions, max_pairs=300, rng=0
        )
        assert len(profile) == 300
        assert np.all((profile >= 0) & (profile <= 1))

    def test_deterministic_with_seed(self):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=60, n_outliers=0, seed=1
        )
        a = similarity_profile(basket.transactions, max_pairs=100, rng=9)
        b = similarity_profile(basket.transactions, max_pairs=100, rng=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="two points"):
            similarity_profile([Transaction({1})])
        with pytest.raises(ValueError, match="max_pairs"):
            similarity_profile(bimodal_points(), max_pairs=0)


class TestSuggestTheta:
    def test_lands_between_the_modes(self):
        suggestion = suggest_theta(bimodal_points(), low=0.05, high=0.95)
        # cross-family similarity is 0; within-family at least 3/5
        assert 0.05 < suggestion.theta < 0.6
        assert suggestion.gap_width > 0.2

    def test_separates_planted_basket(self):
        basket = small_synthetic_basket(
            n_clusters=4, cluster_size=80, n_outliers=0, seed=2
        )
        suggestion = suggest_theta(basket.transactions, rng=0)
        from repro.core import RockPipeline
        from repro.eval import misclassified_count

        result = RockPipeline(
            k=4, theta=suggestion.theta, min_cluster_size=5, seed=0
        ).fit(basket.transactions)
        wrong = misclassified_count(basket.labels, result.labels.tolist())
        assert wrong <= len(basket.labels) * 0.05

    def test_uniform_data_falls_back_to_midpoint(self):
        # identical points everywhere: all sims are 1.0, outside [low, high)
        points = [Transaction({1, 2}) for _ in range(6)]
        suggestion = suggest_theta(points, low=0.2, high=0.9)
        # sims all 1.0 > high; the only candidates are the band edges
        assert 0.2 <= suggestion.theta <= 0.9

    def test_result_type(self):
        suggestion = suggest_theta(bimodal_points())
        assert isinstance(suggestion, ThetaSuggestion)
        assert suggestion.profile.ndim == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="low"):
            suggest_theta(bimodal_points(), low=0.9, high=0.5)
