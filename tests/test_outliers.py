"""Tests for outlier handling (Section 4.6)."""

import numpy as np
import pytest

from repro.core.neighbors import NeighborGraph
from repro.core.outliers import prune_sparse_points, weed_small_clusters, weeding_stop_count


def graph_with_degrees():
    # 0-1-2 triangle, 3 attached to 0, 4 isolated
    adj = np.zeros((5, 5), dtype=bool)
    for i, j in [(0, 1), (1, 2), (0, 2), (0, 3)]:
        adj[i, j] = adj[j, i] = True
    return NeighborGraph(adj)


class TestPruneSparsePoints:
    def test_default_drops_isolated(self):
        kept, dropped = prune_sparse_points(graph_with_degrees())
        assert kept.tolist() == [0, 1, 2, 3]
        assert dropped.tolist() == [4]

    def test_threshold_two(self):
        kept, dropped = prune_sparse_points(graph_with_degrees(), min_neighbors=2)
        assert kept.tolist() == [0, 1, 2]
        assert dropped.tolist() == [3, 4]

    def test_zero_threshold_keeps_all(self):
        kept, dropped = prune_sparse_points(graph_with_degrees(), min_neighbors=0)
        assert len(kept) == 5
        assert len(dropped) == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            prune_sparse_points(graph_with_degrees(), min_neighbors=-1)


class TestWeedSmallClusters:
    def test_drops_below_min_size(self):
        survivors, outliers = weed_small_clusters([[0, 1, 2], [3], [4, 5]], 2)
        assert survivors == [[0, 1, 2], [4, 5]]
        assert outliers == [3]

    def test_outliers_sorted_flat(self):
        _, outliers = weed_small_clusters([[9], [3, 4, 5], [1]], 3)
        assert outliers == [1, 9]

    def test_min_size_one_keeps_everything(self):
        survivors, outliers = weed_small_clusters([[0], [1]], 1)
        assert survivors == [[0], [1]]
        assert outliers == []

    def test_invalid_min_size(self):
        with pytest.raises(ValueError):
            weed_small_clusters([[0]], 0)


class TestWeedingStopCount:
    def test_small_multiple_of_k(self):
        assert weeding_stop_count(10, 3.0) == 30
        assert weeding_stop_count(10, 1.5) == 15

    def test_never_below_k(self):
        assert weeding_stop_count(10, 1.0) == 10

    def test_rounding(self):
        assert weeding_stop_count(3, 2.5) == 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            weeding_stop_count(0)
        with pytest.raises(ValueError):
            weeding_stop_count(3, 0.5)
