"""Seeded regression pins for the paper experiments.

Each test runs a miniature, seed-fixed version of one evaluation
experiment and pins the qualitative outcome (and, where cheap, exact
values).  These are the canaries: a change anywhere in the similarity /
neighbor / link / goodness / merge / label chain that shifts results
shows up here before it silently degrades the benches.
"""

import pytest

from repro.baselines import centroid_cluster
from repro.core import MissingAwareJaccard, RockPipeline
from repro.datasets import (
    TABLE4_GROUPS,
    generate_mutual_funds,
    generate_votes,
    small_mushroom,
    small_synthetic_basket,
)
from repro.eval import adjusted_rand_index, cluster_purities, purity


class TestVotesRegression:
    def test_seeded_votes_outcome(self):
        votes = generate_votes(seed=1)
        result = RockPipeline(k=2, theta=0.73, min_cluster_size=5, seed=0).fit(votes)
        assert result.n_clusters == 2
        # pinned: near-pure party clusters, sizable outlier removal
        assert purity(result.clusters, votes.labels()) > 0.98
        assert 30 <= len(result.outlier_indices) <= 150

    def test_rock_vs_centroid_direction(self):
        votes = generate_votes(seed=1)
        rock_result = RockPipeline(k=2, theta=0.73, min_cluster_size=5, seed=0).fit(votes)
        trad = centroid_cluster(votes, k=2, eliminate_singletons=False)
        assert purity(rock_result.clusters, votes.labels()) >= purity(
            trad.clusters, votes.labels()
        ) - 0.01


class TestMushroomRegression:
    @pytest.fixture(scope="class")
    def outcome(self):
        data = small_mushroom(seed=2)
        result = RockPipeline(k=20, theta=0.8, min_cluster_size=3, seed=0).fit(
            data.dataset
        )
        return data, result

    def test_purity_shape(self, outcome):
        data, result = outcome
        purities = cluster_purities(result.clusters, data.class_labels)
        assert sum(1 for p in purities if p < 1.0) <= 1

    def test_latent_recovery(self, outcome):
        data, result = outcome
        clustered = [i for i in range(len(data.dataset)) if result.labels[i] >= 0]
        ari = adjusted_rand_index(
            [data.cluster_labels[i] for i in clustered],
            [int(result.labels[i]) for i in clustered],
        )
        assert ari > 0.9

    def test_size_skew(self, outcome):
        _, result = outcome
        sizes = result.cluster_sizes()
        assert max(sizes) / max(min(sizes), 1) > 3

    def test_centroid_baseline_recovers_structure_worse(self, outcome):
        """At this miniature scale the traditional algorithm stays
        class-pure (the full-scale class mixing is asserted in the Table
        3 bench) but recovers the latent 21-cluster structure far worse
        and sheds a big share of points as singletons."""
        data, result = outcome
        trad = centroid_cluster(data.dataset, k=20)
        trad_labels = trad.labels()
        kept = [i for i in range(len(data.dataset)) if trad_labels[i] >= 0]
        trad_ari = adjusted_rand_index(
            [data.cluster_labels[i] for i in kept],
            [int(trad_labels[i]) for i in kept],
        )
        rock_labels = result.labels
        rock_kept = [i for i in range(len(data.dataset)) if rock_labels[i] >= 0]
        rock_ari = adjusted_rand_index(
            [data.cluster_labels[i] for i in rock_kept],
            [int(rock_labels[i]) for i in rock_kept],
        )
        assert rock_ari > trad_ari + 0.2
        assert len(rock_kept) > len(kept)


class TestFundsRegression:
    def test_named_groups_exact(self):
        funds = generate_mutual_funds(
            groups=TABLE4_GROUPS[:6], n_pairs=2, n_outliers=15, n_days=150, seed=4
        )
        result = RockPipeline(
            k=8, theta=0.8, similarity=MissingAwareJaccard(),
            min_cluster_size=2, outlier_multiple=1.0, seed=0,
        ).fit(funds.dataset)
        found = {}
        for cluster in result.clusters:
            groups = {funds.group_labels[i] for i in cluster}
            assert len(groups) == 1
            found[groups.pop()] = len(cluster)
        for name, size, _ in TABLE4_GROUPS[:6]:
            assert found.get(name) == size


class TestBasketRegression:
    def test_seeded_pipeline_outcome_pinned(self):
        basket = small_synthetic_basket(
            n_clusters=4, cluster_size=150, n_outliers=25, seed=42
        )
        result = RockPipeline(
            k=4, theta=0.45, sample_size=120, min_cluster_size=5, seed=42
        ).fit(basket.transactions)
        # exact pinned values for this seed (update deliberately if the
        # algorithm's deterministic behaviour is intentionally changed)
        assert result.n_clusters == 4
        from repro.eval import misclassified_count

        assert misclassified_count(basket.labels, result.labels.tolist()) == 0

    def test_determinism_across_runs(self):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=100, n_outliers=10, seed=9
        )
        runs = [
            RockPipeline(
                k=3, theta=0.45, sample_size=90, min_cluster_size=4, seed=5
            ).fit(basket.transactions)
            for _ in range(2)
        ]
        assert runs[0].clusters == runs[1].clusters
        assert runs[0].labels.tolist() == runs[1].labels.tolist()
        assert runs[0].outlier_indices == runs[1].outlier_indices
