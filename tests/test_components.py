"""Tests for union-find and the QROCK connected-components fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import UnionFind, connected_components, qrock
from repro.core.links import compute_links
from repro.core.neighbors import NeighborGraph, compute_neighbor_graph
from repro.core.rock import cluster_with_links
from repro.data.transactions import Transaction, TransactionDataset


def graph_from_edges(n, edges):
    adj = np.zeros((n, n), dtype=bool)
    for i, j in edges:
        adj[i, j] = adj[j, i] = True
    return NeighborGraph(adj)


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert uf.n_components == 4
        assert not uf.connected(0, 1)
        assert uf.component_size(2) == 1

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # already joined
        assert uf.connected(0, 2)
        assert uf.component_size(1) == 3
        assert uf.n_components == 3

    def test_components_listing(self):
        uf = UnionFind(5)
        uf.union(0, 3)
        uf.union(1, 4)
        comps = uf.components()
        assert sorted(map(tuple, comps)) == [(0, 3), (1, 4), (2,)]
        assert len(comps[0]) >= len(comps[-1])  # largest first

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @settings(max_examples=60)
    @given(
        st.integers(1, 25),
        st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=60),
    )
    def test_matches_bruteforce_reachability(self, n, raw_edges):
        edges = [(a % n, b % n) for a, b in raw_edges if a % n != b % n]
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(a, b)
        # brute-force reachability via adjacency powers
        adj = np.eye(n, dtype=bool)
        for a, b in edges:
            adj[a, b] = adj[b, a] = True
        reach = adj.copy()
        for _ in range(n):
            reach = reach | (reach @ adj)
        for i in range(n):
            for j in range(n):
                assert uf.connected(i, j) == bool(reach[i, j])


class TestConnectedComponents:
    def test_two_triangles(self):
        g = graph_from_edges(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert connected_components(g) == [[0, 1, 2], [3, 4, 5]]

    def test_isolated_points_are_singletons(self):
        g = graph_from_edges(3, [(0, 1)])
        assert connected_components(g) == [[0, 1], [2]]

    def test_empty_graph(self):
        g = graph_from_edges(4, [])
        assert connected_components(g) == [[0], [1], [2], [3]]


class TestQrockVsRock:
    def test_qrock_on_transactions(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {2, 3, 4}, {7, 8, 9}, {7, 8, 10}, {7, 9, 10}, {42}]
        )
        clusters, outliers = qrock(ds, theta=0.4, min_cluster_size=2)
        assert sorted(map(sorted, clusters)) == [[0, 1, 2], [3, 4, 5]]
        assert outliers == [6]

    def test_min_cluster_size_validation(self):
        with pytest.raises(ValueError):
            qrock(TransactionDataset([{1}]), theta=0.5, min_cluster_size=0)

    def test_rock_partition_refines_components(self):
        """However far the merge loop runs, no ROCK cluster spans two
        components of the neighbor graph."""
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {9, 10}, {9, 11}, {10, 11}, {50, 51}]
        )
        graph = compute_neighbor_graph(ds, theta=0.4)
        components = connected_components(graph)
        component_of = {}
        for c, members in enumerate(components):
            for p in members:
                component_of[p] = c
        result = cluster_with_links(compute_links(graph), k=1, f_theta=1 / 3)
        for cluster in result.clusters:
            assert len({component_of[p] for p in cluster}) == 1

    def test_path_graph_breaks_equality(self):
        """The documented counterexample: a 3-point path has one
        component but ROCK stops at two clusters ({ends}, {middle})."""
        g = graph_from_edges(3, [(0, 1), (1, 2)])
        result = cluster_with_links(compute_links(g), k=1, f_theta=1 / 3)
        assert len(result.clusters) == 2
        assert [0, 2] in [sorted(c) for c in result.clusters]
        assert len(connected_components(g)) == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(2, 10),
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
    )
    def test_refinement_property(self, n, raw_edges):
        edges = {(min(a % n, b % n), max(a % n, b % n)) for a, b in raw_edges}
        edges = {(a, b) for a, b in edges if a != b}
        g = graph_from_edges(n, edges)
        components = connected_components(g)
        component_of = {}
        for c, members in enumerate(components):
            for p in members:
                component_of[p] = c
        result = cluster_with_links(compute_links(g), k=1, f_theta=1 / 3)
        for cluster in result.clusters:
            assert len({component_of[p] for p in cluster}) == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 4),
        st.lists(st.integers(3, 5), min_size=1, max_size=4),
    )
    def test_equality_when_every_edge_in_triangle(self, seed, clique_sizes):
        """Cliques of size >= 3: every edge closes a triangle, so a k=1
        ROCK run reaches exactly the components."""
        edges = []
        start = 0
        for size in clique_sizes:
            for i in range(start, start + size):
                for j in range(i + 1, start + size):
                    edges.append((i, j))
            start += size
        n = start
        g = graph_from_edges(n, edges)
        result = cluster_with_links(compute_links(g), k=1, f_theta=1 / 3)
        assert sorted(map(tuple, result.clusters)) == sorted(
            map(tuple, connected_components(g))
        )
