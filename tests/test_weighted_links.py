"""Tests for the similarity-weighted link variant (Section 3.2 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import LinkTable, dense_link_matrix, weighted_link_matrix
from repro.core.neighbors import (
    NeighborGraph,
    adjacency_from_similarity_matrix,
    compute_neighbor_graph,
    similarity_matrix,
)
from repro.core.rock import cluster_with_links, rock
from repro.data.transactions import Transaction, TransactionDataset


def graph_and_sim(sets, theta):
    ds = TransactionDataset([Transaction(s) for s in sets])
    sim = similarity_matrix(ds)
    graph = NeighborGraph(adjacency_from_similarity_matrix(sim, theta), theta=theta)
    return ds, graph, sim


class TestWeightedLinkMatrix:
    def test_all_ones_similarity_reduces_to_binary(self):
        ds, graph, _ = graph_and_sim([{1, 2}, {1, 3}, {2, 3}, {1, 2, 3}], 0.2)
        ones = np.ones((len(ds), len(ds)))
        np.fill_diagonal(ones, 1.0)
        weighted = weighted_link_matrix(graph, ones)
        assert np.allclose(weighted, dense_link_matrix(graph))

    def test_weighted_never_exceeds_binary(self):
        ds, graph, sim = graph_and_sim(
            [{1, 2, 3}, {1, 2, 4}, {2, 3, 4}, {1, 3, 4}], 0.3
        )
        weighted = weighted_link_matrix(graph, sim)
        binary = dense_link_matrix(graph)
        assert (weighted <= binary + 1e-12).all()

    def test_manual_value(self):
        # path 0-1-2 with known similarities: L_w[0,2] = s01 * s12
        sim = np.array(
            [[1.0, 0.6, 0.1], [0.6, 1.0, 0.5], [0.1, 0.5, 1.0]]
        )
        graph = NeighborGraph(adjacency_from_similarity_matrix(sim, 0.5))
        weighted = weighted_link_matrix(graph, sim)
        assert weighted[0, 2] == pytest.approx(0.6 * 0.5)
        assert weighted[0, 1] == pytest.approx(0.0)  # no common neighbor

    def test_shape_mismatch_rejected(self):
        graph = NeighborGraph(np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError, match="shape"):
            weighted_link_matrix(graph, np.ones((3, 3)))

    def test_symmetric_and_hollow(self):
        ds, graph, sim = graph_and_sim(
            [{1, 2, 3}, {1, 2, 4}, {2, 3, 4}, {5, 6}], 0.3
        )
        weighted = weighted_link_matrix(graph, sim)
        assert np.array_equal(weighted, weighted.T)
        assert not weighted.diagonal().any()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sets(st.integers(0, 10), min_size=1, max_size=5),
                 min_size=2, max_size=12),
        st.floats(0.1, 0.9),
    )
    def test_float_table_roundtrip(self, sets, theta):
        ds, graph, sim = graph_and_sim(sets, theta)
        weighted = weighted_link_matrix(graph, sim)
        table = LinkTable.from_dense(weighted)
        assert np.allclose(table.to_dense(), weighted)


class TestWeightedClustering:
    def test_rock_weighted_end_to_end(self):
        a = [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}]
        b = [{7, 8, 9}, {7, 8, 10}, {7, 9, 10}, {8, 9, 10}]
        ds = TransactionDataset(a + b)
        result = rock(ds, k=2, theta=0.4, weighted_links=True)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_weighted_downweights_marginal_bridges(self):
        """Two triangles bridged through a point whose similarities are
        barely over threshold: binary links see a solid bridge, the
        weighted variant discounts it."""
        sim = np.eye(7)
        strong, weak = 0.9, 0.41
        for i, j in [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6)]:
            sim[i, j] = sim[j, i] = strong
        for i, j in [(2, 3), (3, 4), (1, 3), (3, 5)]:
            sim[i, j] = sim[j, i] = weak
        graph = NeighborGraph(adjacency_from_similarity_matrix(sim, 0.4))
        binary = dense_link_matrix(graph)
        weighted = weighted_link_matrix(graph, sim)
        # bridge pair (1, 3): binary counts 1 link (via 2); weighted
        # discounts it below the weighted within-triangle links
        assert binary[1, 3] >= 1
        assert weighted[1, 3] < weighted[0, 1]

    def test_merge_loop_accepts_float_links(self):
        table = LinkTable(4)
        table.increment(0, 1, 2.5)
        table.increment(2, 3, 2.5)
        table.increment(1, 2, 0.3)
        result = cluster_with_links(table, k=2, f_theta=1 / 3)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]
