"""Tests for the time-series Up/Down/No transform (Section 5.1)."""

import pytest

from repro.data.records import MISSING
from repro.data.timeseries import (
    Movement,
    TimeSeries,
    movements_to_record,
    price_movements,
    series_to_categorical_dataset,
)
from repro.data.records import CategoricalSchema


class TestTimeSeries:
    def test_observations_sorted_by_time(self):
        s = TimeSeries("f", {3: 1.0, 1: 2.0, 2: 3.0})
        assert s.times() == [1, 2, 3]
        assert len(s) == 3

    def test_null_values_rejected(self):
        with pytest.raises(ValueError, match="null value"):
            TimeSeries("f", {1: float("nan")})


class TestPriceMovements:
    def test_up_down_no(self):
        s = TimeSeries("f", {0: 10.0, 1: 11.0, 2: 10.5, 3: 10.5})
        moves = price_movements(s)
        assert moves == {1: Movement.UP, 2: Movement.DOWN, 3: Movement.NO}

    def test_first_observation_has_no_movement(self):
        s = TimeSeries("f", {5: 10.0, 6: 11.0})
        assert 5 not in price_movements(s)

    def test_gap_compares_against_previous_observed(self):
        # day 3 is missing; day 4 compares against day 2
        s = TimeSeries("f", {2: 10.0, 4: 9.0})
        assert price_movements(s) == {4: Movement.DOWN}

    def test_tolerance_widens_no_band(self):
        s = TimeSeries("f", {0: 10.0, 1: 10.05})
        assert price_movements(s)[1] is Movement.UP
        assert price_movements(s, tolerance=0.1)[1] is Movement.NO

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            price_movements(TimeSeries("f", {0: 1.0, 1: 2.0}), tolerance=-1.0)

    def test_single_point_series_has_no_movements(self):
        assert price_movements(TimeSeries("f", {0: 1.0})) == {}


class TestMovementsToRecord:
    def test_missing_dates_become_missing_values(self):
        schema = CategoricalSchema(["1", "2", "3"])
        record = movements_to_record(schema, {"1": Movement.UP, "3": Movement.NO})
        assert record.values == ("Up", MISSING, "No")


class TestSeriesToDataset:
    def test_union_of_dates_and_missing_alignment(self):
        old = TimeSeries("old", {0: 1.0, 1: 2.0, 2: 1.5}, label="g")
        young = TimeSeries("young", {1: 5.0, 2: 6.0}, label="g")
        ds = series_to_categorical_dataset([old, young])
        assert ds.schema.attributes == ["1", "2"]
        assert ds[0].values == ("Up", "Down")
        # the young fund has no movement on day 1 (its first observation)
        assert ds[1].values == (MISSING, "Up")
        assert ds[0].rid == "old"
        assert ds[0].label == "g"

    def test_explicit_dates(self):
        s = TimeSeries("f", {0: 1.0, 1: 2.0})
        ds = series_to_categorical_dataset([s], dates=[1, 2])
        assert ds.schema.attributes == ["1", "2"]
        assert ds[0].values == ("Up", MISSING)

    def test_empty_series_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            series_to_categorical_dataset([])

    def test_all_constant_series_rejected(self):
        with pytest.raises(ValueError, match="fewer than 2"):
            series_to_categorical_dataset([TimeSeries("f", {0: 1.0})])

    def test_paper_identical_where_present(self):
        """Section 3.1.2: two records identical on shared attributes are
        highly similar even when one has missing values."""
        from repro.core.similarity import MissingAwareJaccard

        full = TimeSeries("full", {i: float(i % 3) + 1.0 for i in range(10)})
        late = TimeSeries("late", {i: float(i % 3) + 2.0 for i in range(4, 10)})
        ds = series_to_categorical_dataset([full, late])
        sim = MissingAwareJaccard()
        assert sim(ds[0], ds[1]) == 1.0  # same % 3 pattern => same movements
