"""Tests for the ClusteringService facade and serve metrics."""

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline
from repro.data.io import write_transactions
from repro.data.transactions import Transaction, TransactionDataset
from repro.serve import ClusteringService, RockModel, ServeMetrics
from repro.serve.metrics import BATCH_SIZE_BUCKETS


@pytest.fixture
def dataset():
    return TransactionDataset(
        [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}, {8, 10, 11}] * 20
    )


@pytest.fixture
def model_path(dataset, tmp_path):
    _, model = RockPipeline(k=2, theta=0.4, sample_size=40, seed=0).fit_model(dataset)
    path = tmp_path / "model.json"
    model.save(path)
    return path


class TestClusteringService:
    def test_from_file_and_assign(self, model_path, dataset):
        service = ClusteringService.from_file(model_path)
        assert service.n_clusters == 2
        label = service.assign(dataset[0])
        assert label in (0, 1)
        labels = service.assign_batch(list(dataset))
        assert labels.shape == (len(dataset),)

    def test_assign_stream_workers(self, model_path, dataset):
        service = ClusteringService.from_file(model_path)
        serial = service.assign_stream(list(dataset), workers=1)
        parallel = service.assign_stream(list(dataset), workers=2, chunk_size=16)
        assert np.array_equal(serial, parallel)

    def test_assign_file_round_trip(self, model_path, dataset, tmp_path):
        data_path = tmp_path / "held.txt"
        write_transactions(list(dataset), data_path)
        out_path = tmp_path / "labels.txt"
        service = ClusteringService.from_file(model_path)
        labels = service.assign_file(data_path, output=out_path)
        written = [int(l) for l in out_path.read_text().split()]
        assert written == labels.tolist()
        assert service.assign_file(data_path, input_format="transactions").tolist() \
            == labels.tolist()

    def test_assign_file_unknown_format(self, model_path, tmp_path):
        service = ClusteringService.from_file(model_path)
        with pytest.raises(ValueError, match="unknown input format"):
            service.assign_file(tmp_path / "x.txt", input_format="parquet")

    def test_describe(self, model_path):
        service = ClusteringService.from_file(model_path)
        info = service.describe()
        assert info["n_clusters"] == 2
        assert info["vectorized"] is True
        assert len(info["labeling_set_sizes"]) == 2
        assert info["metadata"]["k"] == 2

    def test_metrics_flow_through(self, model_path, dataset):
        service = ClusteringService.from_file(model_path)
        service.assign_batch(list(dataset)[:10])
        service.assign(dataset[0])
        snap = service.metrics_snapshot()
        assert snap["requests"] == 2
        assert snap["points"] == 11


class TestServeMetrics:
    def test_snapshot_shape(self):
        metrics = ServeMetrics()
        metrics.record_batch(5, 1, 0.01, cache_hits=2, cache_misses=3)
        metrics.observe_latency("load", 0.5)
        snap = metrics.snapshot()
        assert snap["requests"] == 1
        assert snap["points"] == 5
        assert snap["outlier_rate"] == pytest.approx(0.2)
        assert snap["cache"]["hit_rate"] == pytest.approx(0.4)
        assert snap["latency"]["load"]["count"] == 1
        assert sum(snap["batch_sizes"].values()) == 1

    def test_bucketing(self):
        metrics = ServeMetrics()
        for n in (1, 2, 100, 10_000):
            metrics.record_batch(n, 0, 0.0)
        snap = metrics.snapshot()
        assert snap["batch_sizes"]["<=1"] == 1
        assert snap["batch_sizes"]["<=8"] == 1
        assert snap["batch_sizes"]["<=512"] == 1
        assert snap["batch_sizes"][f">{BATCH_SIZE_BUCKETS[-1]}"] == 1

    def test_empty_snapshot(self):
        snap = ServeMetrics().snapshot()
        assert snap["requests"] == 0
        assert snap["outlier_rate"] == 0.0
        assert snap["cache"]["hit_rate"] == 0.0

    def test_render_is_printable(self):
        metrics = ServeMetrics()
        metrics.record_batch(3, 1, 0.002)
        text = metrics.render()
        assert "requests" in text
        assert "latency[assign]" in text

    def test_merge_is_additive(self):
        a = ServeMetrics()
        a.record_batch(5, 1, 0.010, cache_hits=2, cache_misses=2, uncacheable=1)
        b = ServeMetrics()
        b.record_batch(100, 10, 0.050, cache_hits=40, cache_misses=60)
        b.observe_latency("load", 0.5)

        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["requests"] == 2
        assert snap["points"] == 105
        assert snap["outliers"] == 11
        assert snap["cache"] == {
            "hits": 42,
            "misses": 62,
            "uncacheable": 1,
            "lookups": 104,
            "hit_rate": pytest.approx(42 / 104),
        }
        assert snap["batch_sizes"]["<=8"] == 1
        assert snap["batch_sizes"]["<=512"] == 1
        assert snap["latency"]["load"]["count"] == 1
        stat = snap["latency"]["assign"]
        assert stat["count"] == 2
        assert stat["total_seconds"] == pytest.approx(0.060)
        assert stat["min_seconds"] == pytest.approx(0.010)
        assert stat["max_seconds"] == pytest.approx(0.050)

    def test_merge_empty_snapshot_is_noop(self):
        metrics = ServeMetrics()
        metrics.record_batch(3, 0, 0.001)
        before = metrics.snapshot()
        metrics.merge(ServeMetrics().snapshot())
        after = metrics.snapshot()
        assert after == before
        # an empty latency snapshot must not clobber an existing min
        assert after["latency"]["assign"]["min_seconds"] > 0.0
