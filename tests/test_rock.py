"""Tests for the ROCK clustering loop (Section 4.3, Figure 3)."""

from itertools import combinations

import numpy as np
import pytest

from repro.core.goodness import default_f, naive_goodness
from repro.core.links import LinkTable, compute_links
from repro.core.neighbors import compute_neighbor_graph
from repro.core.rock import cluster_with_links, rock
from repro.data.transactions import Transaction, TransactionDataset


def links_from_pairs(n, pairs):
    table = LinkTable(n)
    for i, j, count in pairs:
        table.increment(i, j, count)
    return table


class TestClusterWithLinks:
    def test_two_obvious_clusters(self):
        links = links_from_pairs(
            4, [(0, 1, 5), (2, 3, 5), (1, 2, 1)]
        )
        result = cluster_with_links(links, k=2, f_theta=1 / 3)
        assert sorted(map(sorted, result.clusters)) == [[0, 1], [2, 3]]
        assert not result.stopped_early

    def test_stops_when_no_links_remain(self):
        links = links_from_pairs(4, [(0, 1, 3)])
        result = cluster_with_links(links, k=1, f_theta=1 / 3)
        # only 0-1 can merge; 2 and 3 have no links anywhere
        assert result.stopped_early
        assert len(result.clusters) == 3

    def test_k_hint_respected_when_links_suffice(self):
        links = links_from_pairs(
            4, [(0, 1, 4), (1, 2, 3), (2, 3, 4), (0, 3, 1)]
        )
        result = cluster_with_links(links, k=2, f_theta=1 / 3)
        assert len(result.clusters) == 2

    def test_merge_history_recorded(self):
        links = links_from_pairs(3, [(0, 1, 2), (1, 2, 1)])
        result = cluster_with_links(links, k=1, f_theta=1 / 3)
        assert len(result.merges) == 2
        assert result.merges[0].size == 2
        assert result.merges[1].size == 3
        assert result.merges[0].goodness >= 0

    def test_labels_cover_all_points(self):
        links = links_from_pairs(5, [(0, 1, 2), (2, 3, 2), (3, 4, 2)])
        result = cluster_with_links(links, k=2, f_theta=1 / 3)
        labels = result.labels()
        assert len(labels) == 5
        assert (labels >= 0).all()

    def test_clusters_sorted_by_size(self):
        links = links_from_pairs(5, [(0, 1, 9), (1, 2, 9), (3, 4, 1)])
        result = cluster_with_links(links, k=2, f_theta=1 / 3)
        assert len(result.clusters[0]) >= len(result.clusters[1])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cluster_with_links(LinkTable(2), k=0, f_theta=0.5)

    def test_singleton_input(self):
        result = cluster_with_links(LinkTable(1), k=1, f_theta=0.5)
        assert result.clusters == [[0]]

    def test_k_larger_than_n(self):
        result = cluster_with_links(LinkTable(2), k=5, f_theta=0.5)
        assert len(result.clusters) == 2

    def test_deterministic(self):
        links = links_from_pairs(
            6, [(0, 1, 3), (1, 2, 3), (3, 4, 3), (4, 5, 3), (2, 3, 1)]
        )
        a = cluster_with_links(links, k=2, f_theta=1 / 3)
        b = cluster_with_links(links, k=2, f_theta=1 / 3)
        assert a.clusters == b.clusters
        assert [(m.left, m.right) for m in a.merges] == [
            (m.left, m.right) for m in b.merges
        ]


class TestInitialClusters:
    def test_resume_from_partition(self):
        links = links_from_pairs(
            6, [(0, 1, 4), (2, 3, 4), (4, 5, 4), (1, 2, 2), (3, 4, 2)]
        )
        result = cluster_with_links(
            links, k=2, f_theta=1 / 3, initial_clusters=[[0, 1], [2, 3], [4, 5]]
        )
        assert len(result.clusters) == 2
        assert sum(len(c) for c in result.clusters) == 6

    def test_partial_partition_leaves_points_out(self):
        links = links_from_pairs(4, [(0, 1, 4)])
        result = cluster_with_links(
            links, k=1, f_theta=1 / 3, initial_clusters=[[0, 1]]
        )
        assert result.clusters == [[0, 1]]
        assert result.labels().tolist() == [0, 0, -1, -1]

    def test_cross_links_aggregate_over_members(self):
        # two 2-clusters with two point-level cross links of 3 each
        links = links_from_pairs(4, [(0, 2, 3), (1, 3, 3), (0, 1, 1), (2, 3, 1)])
        result = cluster_with_links(
            links, k=1, f_theta=1 / 3, initial_clusters=[[0, 1], [2, 3]]
        )
        assert len(result.clusters) == 1
        # the merge saw 6 aggregated cross links
        expected_g = 6 / (4.0 ** (5 / 3) - 2 * 2.0 ** (5 / 3))
        assert result.merges[0].goodness == pytest.approx(expected_g)

    def test_overlapping_partition_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            cluster_with_links(
                LinkTable(3), k=1, f_theta=0.5, initial_clusters=[[0, 1], [1, 2]]
            )

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            cluster_with_links(
                LinkTable(2), k=1, f_theta=0.5, initial_clusters=[[0, 5]]
            )

    def test_empty_initial_cluster_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            cluster_with_links(
                LinkTable(2), k=1, f_theta=0.5, initial_clusters=[[]]
            )


class TestGoodnessStrategies:
    def test_naive_goodness_lets_large_cluster_swallow(self):
        """Section 4.2: without normalisation, the larger cluster wins on
        raw cross-link count even when the small pair fits better."""
        # cluster A = {0..4} densely linked; points 5,6 tightly linked
        pairs = []
        for i, j in combinations(range(5), 2):
            pairs.append((i, j, 5))
        pairs += [(5, 6, 4)]
        # the big cluster accumulates 5 weak cross links to point 5,
        # overtaking the pair's raw count of 4 once A has formed
        pairs += [(i, 5, 1) for i in range(5)]
        links = links_from_pairs(7, pairs)

        normalised = cluster_with_links(links, k=2, f_theta=1 / 3)
        naive = cluster_with_links(links, k=2, f_theta=1 / 3, goodness_fn=naive_goodness)
        assert [5, 6] in [sorted(c) for c in normalised.clusters]
        # raw counts pull 5 into the big cluster (5 cross links vs 4)
        assert [5, 6] not in [sorted(c) for c in naive.clusters]


class TestRockEndToEnd:
    def test_figure1_clusters_unmixed_before_cross_merges(self):
        """Figure 1 data: the first 10 merges are all within ground-truth
        clusters, so at k=4 no cluster mixes the two transaction groups.
        (See EXPERIMENTS.md E2: at k=2 the published greedy attaches the
        {1,2,x} pair of the small group to the big cluster -- the paper's
        exact claim is the point-level one tested below.)"""
        big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
        small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
        ds = TransactionDataset([Transaction(t) for t in big + small])
        result = rock(ds, k=4, theta=0.5)
        truth = [0] * len(big) + [1] * len(small)
        for cluster in result.clusters:
            assert len({truth[p] for p in cluster}) == 1

    def test_figure1_max_link_partner_in_own_cluster(self):
        """Section 3.2: 'for each transaction, the transaction that it has
        the most links with is a transaction in its own cluster'."""
        big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
        small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
        ds = TransactionDataset([Transaction(t) for t in big + small])
        truth = [0] * len(big) + [1] * len(small)
        graph = compute_neighbor_graph(ds, theta=0.5)
        links = compute_links(graph)
        for i in range(len(ds)):
            row = links.row(i)
            if not row:
                continue
            best = max(row.values())
            best_partners = [j for j, c in row.items() if c == best]
            assert any(truth[j] == truth[i] for j in best_partners)

    def test_well_separated_clusters_recovered(self):
        a = [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}]
        b = [{7, 8, 9}, {7, 8, 10}, {7, 9, 10}, {8, 9, 10}]
        ds = TransactionDataset(a + b)
        result = rock(ds, k=2, theta=0.4)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_sparse_and_dense_link_methods_agree(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {2, 3, 4}, {8, 9}, {8, 10}, {9, 10}]
        )
        a = rock(ds, k=2, theta=0.4, link_method="dense")
        b = rock(ds, k=2, theta=0.4, link_method="sparse")
        assert a.clusters == b.clusters
