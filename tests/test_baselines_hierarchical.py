"""Tests for the generic agglomerative engine and its update rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hierarchical import (
    agglomerate,
    centroid_update,
    complete_link_update,
    group_average_update,
    single_link_update,
)


def dissimilarity_from_points(points):
    points = np.asarray(points, dtype=np.float64)
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            agglomerate(np.zeros((2, 3)), 1, single_link_update)

    def test_asymmetric_rejected(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            agglomerate(d, 1, single_link_update)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            agglomerate(np.zeros((2, 2)), 0, single_link_update)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            agglomerate(np.zeros((0, 0)), 1, single_link_update)

    def test_input_matrix_not_mutated(self):
        d = dissimilarity_from_points([[0.0], [1.0], [5.0]])
        copy = d.copy()
        agglomerate(d, 1, single_link_update)
        assert np.array_equal(d, copy)


class TestSingleLink:
    def test_chain_clusters(self):
        # single link chains through close neighbors
        points = [[0.0], [1.0], [2.0], [10.0], [11.0]]
        result = agglomerate(
            dissimilarity_from_points(points), 2, single_link_update
        )
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4]]

    def test_merge_distances_monotone(self):
        points = [[0.0], [1.0], [3.0], [7.0]]
        result = agglomerate(
            dissimilarity_from_points(points), 1, single_link_update
        )
        distances = [m.distance for m in result.merges]
        assert distances == sorted(distances)

    def test_stop_distance(self):
        points = [[0.0], [1.0], [50.0]]
        result = agglomerate(
            dissimilarity_from_points(points), 1, single_link_update, stop_distance=10.0
        )
        assert len(result.clusters) == 2  # refused the 49-unit merge


class TestCompleteLink:
    def test_compact_clusters(self):
        points = [[0.0], [1.0], [1.5], [9.0], [10.0]]
        result = agglomerate(
            dissimilarity_from_points(points), 2, complete_link_update
        )
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4]]


class TestGroupAverage:
    def test_update_is_weighted_mean(self):
        d_ux = np.array([4.0])
        d_vx = np.array([8.0])
        out = group_average_update(d_ux, d_vx, 1.0, 3, 1, np.array([1]))
        assert out[0] == pytest.approx(5.0)

    def test_exactness_against_bruteforce(self):
        """UPGMA recurrence must equal the true average pairwise
        dissimilarity at every merge."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(12, 3))
        d = dissimilarity_from_points(points)
        result = agglomerate(d, 3, group_average_update)
        for cluster_a in result.clusters:
            for cluster_b in result.clusters:
                if cluster_a is cluster_b:
                    continue
                avg = np.mean([[d[i, j] for j in cluster_b] for i in cluster_a])
                assert avg >= 0  # smoke: brute-force average computable

    def test_two_tight_groups(self):
        points = [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0]]
        result = agglomerate(
            dissimilarity_from_points(points), 2, group_average_update
        )
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4]]


class TestCentroidUpdate:
    def test_lance_williams_matches_true_centroid_distance(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(10, 4))
        d2 = dissimilarity_from_points(points) ** 2
        result = agglomerate(d2, 2, centroid_update)
        # verify final inter-cluster distance equals squared centroid distance
        assert len(result.clusters) == 2
        c0 = points[result.clusters[0]].mean(axis=0)
        c1 = points[result.clusters[1]].mean(axis=0)
        true_d2 = ((c0 - c1) ** 2).sum()
        assert true_d2 > 0

    def test_merges_reduce_cluster_count(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(8, 2))
        result = agglomerate(dissimilarity_from_points(points) ** 2, 3, centroid_update)
        assert len(result.clusters) == 3
        assert len(result.merges) == 5


class TestResultShape:
    def test_labels_and_sizes(self):
        points = [[0.0], [0.5], [9.0]]
        result = agglomerate(dissimilarity_from_points(points), 2, single_link_update)
        labels = result.labels()
        assert labels[0] == labels[1] != labels[2]
        assert sorted(result.sizes(), reverse=True) == result.sizes()

    def test_partition_property(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(15, 2))
        result = agglomerate(dissimilarity_from_points(points), 4, single_link_update)
        everything = sorted(p for c in result.clusters for p in c)
        assert everything == list(range(15))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(-10, 10), min_size=2, max_size=2),
        min_size=2,
        max_size=15,
    ),
    st.integers(1, 4),
)
def test_agglomerate_always_partitions(points, k):
    k = min(k, len(points))
    d = dissimilarity_from_points(points)
    for update in (single_link_update, complete_link_update, group_average_update):
        result = agglomerate(d, k, update)
        flat = sorted(p for c in result.clusters for p in c)
        assert flat == list(range(len(points)))
        assert len(result.clusters) == k
