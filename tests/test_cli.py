"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestGenerate:
    def test_basket_small(self, tmp_path, capsys):
        out = tmp_path / "txns.txt"
        code, stdout = run(capsys, "generate", "basket", "--out", str(out))
        assert code == 0
        assert out.exists()
        assert (tmp_path / "txns.txt.labels").exists()
        assert "wrote" in stdout

    def test_votes(self, tmp_path, capsys):
        out = tmp_path / "votes.data"
        code, _ = run(capsys, "generate", "votes", "--out", str(out))
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 435
        labels = (tmp_path / "votes.data.labels").read_text().splitlines()
        assert labels.count("republican") == 168

    def test_funds_small(self, tmp_path, capsys):
        out = tmp_path / "funds.data"
        code, _ = run(capsys, "generate", "funds", "--out", str(out))
        assert code == 0
        assert out.exists()

    def test_deterministic(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        run(capsys, "generate", "basket", "--out", str(a), "--seed", "5")
        run(capsys, "generate", "basket", "--out", str(b), "--seed", "5")
        assert a.read_text() == b.read_text()


class TestCluster:
    @pytest.fixture
    def basket_file(self, tmp_path, capsys):
        out = tmp_path / "txns.txt"
        run(capsys, "generate", "basket", "--out", str(out))
        return out

    def test_cluster_transactions(self, basket_file, tmp_path, capsys):
        labels = tmp_path / "labels.txt"
        code, stdout = run(
            capsys, "cluster", "--input", str(basket_file),
            "--theta", "0.4", "-k", "4", "--min-cluster-size", "5",
            "--output", str(labels),
        )
        assert code == 0
        assert "clusters" in stdout
        written = labels.read_text().splitlines()
        assert len(written) == len(basket_file.read_text().splitlines())

    def test_cluster_and_evaluate_round_trip(self, basket_file, tmp_path, capsys):
        labels = tmp_path / "labels.txt"
        run(
            capsys, "cluster", "--input", str(basket_file),
            "--theta", "0.4", "-k", "4", "--min-cluster-size", "5",
            "--output", str(labels),
        )
        code, stdout = run(
            capsys, "evaluate", "--predicted", str(labels),
            "--truth", str(basket_file) + ".labels",
        )
        assert code == 0
        assert "purity" in stdout
        purity_row = [l for l in stdout.splitlines() if l.startswith("purity")][0]
        assert float(purity_row.split("|")[1]) > 0.95

    def test_cluster_uci_votes(self, tmp_path, capsys):
        data = tmp_path / "votes.data"
        run(capsys, "generate", "votes", "--out", str(data))
        code, stdout = run(
            capsys, "cluster", "--input", str(data), "--format", "uci",
            "--theta", "0.73", "-k", "2", "--min-cluster-size", "5",
        )
        assert code == 0
        assert "clusters" in stdout

    def test_missing_aware_rejected_for_transactions(self, basket_file, capsys):
        with pytest.raises(SystemExit):
            main([
                "cluster", "--input", str(basket_file),
                "--theta", "0.4", "-k", "4", "--missing-aware",
            ])

    def test_empty_input_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["cluster", "--input", str(empty), "--theta", "0.4", "-k", "2"])


class TestEvaluate:
    def test_length_mismatch(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("0\n1\n")
        b.write_text("0\n")
        with pytest.raises(SystemExit, match="differ in length"):
            main(["evaluate", "--predicted", str(a), "--truth", str(b)])

    def test_perfect_labels(self, tmp_path, capsys):
        pred = tmp_path / "pred.txt"
        truth = tmp_path / "truth.txt"
        pred.write_text("0\n0\n1\n1\n")
        truth.write_text("a\na\nb\nb\n")
        code, stdout = run(
            capsys, "evaluate", "--predicted", str(pred), "--truth", str(truth)
        )
        assert code == 0
        ari_row = [l for l in stdout.splitlines() if "Rand" in l][0]
        assert float(ari_row.split("|")[1]) == pytest.approx(1.0)


class TestSuggestTheta:
    def test_on_generated_basket(self, tmp_path, capsys):
        data = tmp_path / "txns.txt"
        run(capsys, "generate", "basket", "--out", str(data))
        code, stdout = run(
            capsys, "suggest-theta", "--input", str(data), "--seed", "1"
        )
        assert code == 0
        assert "suggested theta" in stdout
        theta_row = [l for l in stdout.splitlines() if l.startswith("suggested")][0]
        theta = float(theta_row.split("|")[1])
        assert 0.0 < theta < 1.0

    def test_on_uci_votes(self, tmp_path, capsys):
        data = tmp_path / "votes.data"
        run(capsys, "generate", "votes", "--out", str(data))
        code, stdout = run(
            capsys, "suggest-theta", "--input", str(data), "--format", "uci"
        )
        assert code == 0
        assert "pairs sampled" in stdout

    def test_too_few_records(self, tmp_path):
        data = tmp_path / "one.txt"
        data.write_text("a b c\n")
        with pytest.raises(SystemExit, match="two records"):
            main(["suggest-theta", "--input", str(data)])


class TestReport:
    def test_report_on_votes(self, tmp_path, capsys):
        data = tmp_path / "votes.data"
        run(capsys, "generate", "votes", "--out", str(data))
        out = tmp_path / "report.md"
        code, stdout = run(
            capsys, "report", "--input", str(data), "--theta", "0.73",
            "-k", "2", "--min-cluster-size", "5", "--output", str(out),
            "--title", "Votes run",
        )
        assert code == 0
        assert "report written" in stdout
        text = out.read_text()
        assert text.startswith("# Votes run")
        assert "## Composition vs ground truth" in text
        assert "## Cluster characteristics" in text


class TestFitModelAssign:
    @pytest.fixture
    def basket_file(self, tmp_path, capsys):
        out = tmp_path / "txns.txt"
        run(capsys, "generate", "basket", "--out", str(out))
        return out

    def test_fit_model_writes_model_and_labels(self, basket_file, tmp_path, capsys):
        model = tmp_path / "model.json"
        labels = tmp_path / "fit-labels.txt"
        code, stdout = run(
            capsys, "fit-model", "--input", str(basket_file),
            "--theta", "0.45", "-k", "4", "--sample", "300",
            "--model", str(model), "--labels", str(labels),
        )
        assert code == 0
        assert model.exists()
        assert "|L_i| sizes" in stdout
        assert len(labels.read_text().splitlines()) == \
            len(basket_file.read_text().splitlines())

    def test_fit_assign_round_trip_reproduces_labels(
        self, basket_file, tmp_path, capsys
    ):
        """fit-model then assign over the same file must reproduce the
        fit run's labels exactly on every non-sample record."""
        model = tmp_path / "model.json"
        fit_labels = tmp_path / "fit-labels.txt"
        run(
            capsys, "fit-model", "--input", str(basket_file),
            "--theta", "0.45", "-k", "4", "--sample", "300",
            "--model", str(model), "--labels", str(fit_labels),
        )
        assigned = tmp_path / "assigned.txt"
        code, stdout = run(
            capsys, "assign", "--model", str(model),
            "--input", str(basket_file), "--output", str(assigned),
            "--show-metrics",
        )
        assert code == 0
        assert "throughput" in stdout
        assert "requests" in stdout  # the metrics snapshot printed
        from repro.serve import RockModel

        loaded = RockModel.load(model)
        sample_size = loaded.metadata["sample_size"]
        fit = fit_labels.read_text().split()
        got = assigned.read_text().split()
        assert len(got) == len(fit)
        mismatches = sum(1 for a, b in zip(fit, got) if a != b)
        # only sampled records may differ (they were clustered directly,
        # not labeled); every labeled record must round-trip exactly
        assert mismatches <= sample_size

    def test_assign_parallel_matches_serial(self, basket_file, tmp_path, capsys):
        model = tmp_path / "model.json"
        run(
            capsys, "fit-model", "--input", str(basket_file),
            "--theta", "0.45", "-k", "4", "--sample", "300",
            "--model", str(model),
        )
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        run(capsys, "assign", "--model", str(model),
            "--input", str(basket_file), "--output", str(serial))
        run(capsys, "assign", "--model", str(model),
            "--input", str(basket_file), "--output", str(parallel),
            "--workers", "2", "--chunk-size", "64")
        assert serial.read_text() == parallel.read_text()

    def test_assign_uci(self, tmp_path, capsys):
        data = tmp_path / "votes.data"
        run(capsys, "generate", "votes", "--out", str(data))
        model = tmp_path / "votes-model.json"
        run(
            capsys, "fit-model", "--input", str(data), "--format", "uci",
            "--theta", "0.73", "-k", "2", "--sample", "300",
            "--min-cluster-size", "5", "--model", str(model),
        )
        code, stdout = run(
            capsys, "assign", "--model", str(model),
            "--input", str(data), "--format", "uci",
        )
        assert code == 0
        assert "records" in stdout


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["generate", "galaxy", "--out", "x"])


class TestServe:
    @pytest.fixture
    def model_file(self, tmp_path):
        from repro.data.transactions import Transaction
        from repro.serve import RockModel

        theta = 0.4
        model = RockModel(
            labeling_sets=[
                [Transaction({1, 2, 3}), Transaction({1, 2, 4})],
                [Transaction({7, 8, 9}), Transaction({7, 8, 10})],
            ],
            theta=theta,
            f_theta=(1 - theta) / (1 + theta),
        )
        path = tmp_path / "model.json"
        model.save(path)
        return path

    def free_port(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_serve_answers_requests_then_shuts_down(
        self, model_file, capsys
    ):
        import http.client
        import json as jsonlib
        import threading
        import time

        port = self.free_port()
        exit_code = []
        runner = threading.Thread(
            target=lambda: exit_code.append(main([
                "serve", "--model", str(model_file),
                "--port", str(port), "--shutdown-after", "2.5",
                "--poll-seconds", "10",
            ]))
        )
        runner.start()

        label = None
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and label is None:
            try:
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
                conn.request(
                    "POST", "/assign",
                    body=jsonlib.dumps({"point": [1, 2, 3]}),
                )
                response = conn.getresponse()
                label = jsonlib.loads(response.read())["label"]
                conn.close()
            except OSError:
                time.sleep(0.05)
        runner.join(30)

        assert label == 0
        assert exit_code == [0]
        out = capsys.readouterr().out
        assert f"on http://127.0.0.1:{port}" in out
        assert "shutting down: draining in-flight requests" in out
        assert "served 1 requests (1 points, 0 reloads)" in out

    def test_serve_missing_model_fails(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "serve", "--model", str(tmp_path / "nope.json"),
                "--port", "0", "--shutdown-after", "0.1",
            ])
