"""The fast merge engine vs the Figure 3 reference loop.

The fast engine (:mod:`repro.core.merge`) is only admissible as a pure
optimisation: for every link table, goodness measure, ``f(theta)``,
``k`` and starting partition it must reproduce the reference loop's
:class:`~repro.core.rock.RockResult` **byte for byte** -- the same
clusters, the same :class:`~repro.core.rock.MergeStep` history entry
for entry with bitwise-identical goodness floats, and the same
``stopped_early`` flag.  The hypothesis property drives randomized
link tables (integer and similarity-weighted counts) through both
engines across the goodness measures, ``f(theta)`` in {0, default},
and random ``initial_clusters`` partitions.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import (
    NaiveGoodnessKernel,
    NormalizedGoodnessKernel,
    PowerTable,
    default_f,
    goodness,
    merge_kernel_by_name,
    merge_kernel_for,
    naive_goodness,
)
from repro.core.labeling import labels_from_clusters
from repro.core.links import LinkTable
from repro.core.merge import (
    MERGE_METHODS,
    component_merge_stream,
    fast_cluster_with_links,
    partition_components,
    resolve_merge_method,
)
from repro.core.pipeline import RockPipeline
from repro.core.rock import cluster_with_links, rock
from repro.data.transactions import Transaction, TransactionDataset
from repro.obs.registry import MetricsRegistry

F_THETAS = [0.0, default_f(0.5)]


def make_links(n: int, edges: dict[tuple[int, int], float]) -> LinkTable:
    links = LinkTable(n)
    for (i, j), count in edges.items():
        links.increment(i, j, count)
    return links


def assert_identical(ref, fast) -> None:
    """Byte-for-byte RockResult equality, goodness floats included."""
    assert ref.clusters == fast.clusters
    assert ref.stopped_early == fast.stopped_early
    assert len(ref.merges) == len(fast.merges)
    for a, b in zip(ref.merges, fast.merges):
        assert a == b  # dataclass equality covers the goodness float
        # == treats -0.0/0.0 and nan loosely; pin the exact bits too
        assert math.isclose(a.goodness, b.goodness, rel_tol=0.0, abs_tol=0.0) or (
            np.float64(a.goodness).tobytes() == np.float64(b.goodness).tobytes()
        )


@st.composite
def link_problems(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    weighted = draw(st.booleans())
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda p: p[0] != p[1])
    if weighted:
        counts = st.floats(
            min_value=0.05, max_value=8.0, allow_nan=False, width=64
        )
    else:
        counts = st.integers(min_value=1, max_value=6).map(float)
    raw = draw(st.dictionaries(pairs, counts, max_size=n * 3))
    edges = {(min(a, b), max(a, b)): c for (a, b), c in raw.items()}
    k = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    use_partition = draw(st.booleans())
    initial = None
    if use_partition and n > 1:
        rng = random.Random(seed)
        ids = list(range(n))
        rng.shuffle(ids)
        cuts = sorted(rng.sample(range(1, n), rng.randint(0, n - 1)))
        initial = [
            ids[a:b] for a, b in zip([0] + cuts, cuts + [n]) if b > a
        ]
    return n, edges, k, initial


class TestMergeHistoryEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(link_problems())
    def test_normalized_goodness(self, problem):
        n, edges, k, initial = problem
        for f_theta in F_THETAS:
            links = make_links(n, edges)
            ref = cluster_with_links(
                links, k=k, f_theta=f_theta, initial_clusters=initial,
                merge_method="heap",
            )
            fast = cluster_with_links(
                links, k=k, f_theta=f_theta, initial_clusters=initial,
                merge_method="fast",
            )
            assert_identical(ref, fast)

    @settings(max_examples=60, deadline=None)
    @given(link_problems())
    def test_naive_goodness(self, problem):
        n, edges, k, initial = problem
        links = make_links(n, edges)
        ref = cluster_with_links(
            links, k=k, f_theta=default_f(0.5), initial_clusters=initial,
            goodness_fn=naive_goodness, merge_method="heap",
        )
        fast = cluster_with_links(
            links, k=k, f_theta=default_f(0.5), initial_clusters=initial,
            goodness_fn=naive_goodness, merge_method="fast",
        )
        assert_identical(ref, fast)

    def test_stopped_early_disconnected(self):
        """Mushroom-style early stop: k below the component count."""
        edges = {(0, 1): 3.0, (1, 2): 2.0, (3, 4): 4.0, (5, 6): 1.0}
        links = make_links(8, edges)  # point 7 fully isolated
        ref = cluster_with_links(
            links, k=1, f_theta=default_f(0.5), merge_method="heap"
        )
        fast = cluster_with_links(
            links, k=1, f_theta=default_f(0.5), merge_method="fast"
        )
        assert ref.stopped_early and fast.stopped_early
        assert_identical(ref, fast)

    def test_initial_clusters_resume(self):
        """Resuming from a partial partition replays identically."""
        rng = random.Random(7)
        links = LinkTable(20)
        for _ in range(60):
            i, j = rng.sample(range(20), 2)
            links.increment(i, j, rng.randint(1, 4))
        initial = [[0, 5, 7], [1, 2], [3], [4, 6, 8, 9], [10, 11],
                   [12, 13, 14], [15], [16, 17], [18, 19]]
        for f_theta in F_THETAS:
            ref = cluster_with_links(
                links, k=3, f_theta=f_theta, initial_clusters=initial,
                merge_method="heap",
            )
            fast = cluster_with_links(
                links, k=3, f_theta=f_theta, initial_clusters=initial,
                merge_method="fast",
            )
            assert_identical(ref, fast)


class TestMergeMethodDispatch:
    def test_resolve(self):
        assert resolve_merge_method("auto", goodness) == "fast"
        assert resolve_merge_method("auto", naive_goodness) == "fast"
        assert resolve_merge_method("heap", goodness) == "heap"
        assert resolve_merge_method("fast", goodness) == "fast"
        # custom callables stay on the reference loop under auto
        custom = lambda c, ni, nj, f: float(c)  # noqa: E731
        assert resolve_merge_method("auto", custom) == "heap"
        assert resolve_merge_method("fast", custom) == "fast"

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError, match="merge_method"):
            resolve_merge_method("turbo", goodness)
        with pytest.raises(ValueError, match="merge_method"):
            RockPipeline(k=2, theta=0.5, merge_method="turbo")

    def test_forced_fast_with_custom_callable(self):
        """A symmetric custom goodness works when fast is forced."""
        links = make_links(6, {(0, 1): 2.0, (1, 2): 1.0, (3, 4): 3.0})

        def halved(count, ni, nj, f_theta):
            return count / (ni + nj)

        ref = cluster_with_links(
            links, k=2, f_theta=0.3, goodness_fn=halved, merge_method="heap"
        )
        fast = cluster_with_links(
            links, k=2, f_theta=0.3, goodness_fn=halved, merge_method="fast"
        )
        assert_identical(ref, fast)


class TestKernelsBitwise:
    def test_power_table_matches_pow(self):
        for f_theta in [0.0, default_f(0.5), default_f(0.73)]:
            table = PowerTable(f_theta, 50)
            exponent = 1.0 + 2.0 * f_theta
            for i in range(51):
                assert table[i] == float(i) ** exponent
            arr = table.array()
            assert arr.shape == (51,)
            assert np.all(arr == np.array([table[i] for i in range(51)]))

    def test_normalized_kernel_matches_goodness(self):
        f_theta = default_f(0.5)
        kernel = NormalizedGoodnessKernel(f_theta, 40)
        bound = kernel.bind(20)
        for count, ni, nj in [(3.0, 1, 1), (2.5, 4, 9), (7.0, 9, 4), (1.0, 17, 3)]:
            expected = goodness(count, ni, nj, f_theta)
            assert kernel.scalar(count, ni, nj) == expected
            assert bound(count, ni, nj) == expected
        vec = kernel.vector(
            np.array([3.0, 2.5, 2.5]),
            np.array([1, 4, 9]),
            np.array([1, 9, 4]),
        )
        assert vec[0] == goodness(3.0, 1, 1, f_theta)
        assert vec[1] == goodness(2.5, 4, 9, f_theta)
        assert vec[2] == vec[1]  # bitwise symmetric in (ni, nj)

    def test_degenerate_denominator(self):
        """f(theta)=0: positive counts are infinitely good, zeros are 0."""
        kernel = NormalizedGoodnessKernel(0.0, 10)
        assert kernel.scalar(2.0, 1, 1) == math.inf
        assert kernel.scalar(0.0, 1, 1) == 0.0
        vec = kernel.vector(np.array([2.0, 0.0]), np.array([1, 1]), np.array([1, 1]))
        assert vec[0] == math.inf and vec[1] == 0.0

    def test_kernel_registry(self):
        assert merge_kernel_for(goodness, 0.5).name == "normalized"
        assert merge_kernel_for(naive_goodness, 0.5).name == "naive"
        assert merge_kernel_for(lambda c, ni, nj, f: c, 0.5) is None
        assert isinstance(
            merge_kernel_by_name("naive", 0.5), NaiveGoodnessKernel
        )
        with pytest.raises(ValueError, match="unknown merge kernel"):
            merge_kernel_by_name("bogus", 0.5)


class TestParallelDeterminism:
    def _problem_set(self):
        rng = random.Random(11)
        links = LinkTable(90)
        # 15 components of 6 points each, fully linked inside
        for base in range(0, 90, 6):
            for i in range(base, base + 6):
                for j in range(i + 1, base + 6):
                    links.increment(i, j, rng.randint(1, 5))
        return links

    def test_worker_count_invariance(self):
        from repro.parallel.merge import parallel_component_streams

        links = self._problem_set()
        sizes = np.ones(90, dtype=np.int64)
        lo, hi, counts = links.pair_arrays()
        problems = partition_components(90, sizes, lo, hi, counts)
        assert len(problems) == 15
        kernel = merge_kernel_for(goodness, default_f(0.5), n_max=90)
        serial = [component_merge_stream(p, kernel) for p in problems]
        registry = MetricsRegistry()
        parallel = parallel_component_streams(
            problems, f_theta=default_f(0.5), kernel_name="normalized",
            n_max=90, workers=2, registry=registry,
        )
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.left, b.left)
            assert np.array_equal(a.right, b.right)
            assert a.goodness.tobytes() == b.goodness.tobytes()
            assert np.array_equal(a.sizes, b.sizes)
            assert a.heap_ops == b.heap_ops
        counters = registry.snapshot()["counters"]
        assert counters["fit.cluster.chunks"] >= 1
        assert counters["fit.cluster.heap_ops"] == sum(
            s.heap_ops for s in serial
        )

    def test_workers_end_to_end(self):
        links = self._problem_set()
        ref = cluster_with_links(
            links, k=15, f_theta=default_f(0.5), merge_method="heap"
        )
        fast = fast_cluster_with_links(
            links, k=15, f_theta=default_f(0.5), workers=2
        )
        assert_identical(ref, fast)


class TestRegistryCounters:
    def test_component_and_heap_counters(self):
        links = make_links(
            10, {(0, 1): 2.0, (1, 2): 1.0, (3, 4): 3.0, (5, 6): 1.0, (6, 7): 2.0}
        )
        registry = MetricsRegistry()
        fast_cluster_with_links(
            links, k=3, f_theta=default_f(0.5), registry=registry
        )
        counters = registry.snapshot()["counters"]
        assert counters["fit.cluster.components"] == 3
        assert counters["fit.cluster.heap_ops"] > 0


class TestEngineIntegration:
    def _baskets(self, n_clusters: int = 4, per: int = 12, seed: int = 3):
        rng = np.random.default_rng(seed)
        txns = []
        for c in range(n_clusters):
            pool = np.arange(c * 12, c * 12 + 12)
            for _ in range(per):
                txns.append(Transaction(rng.choice(pool, 8, replace=False).tolist()))
        return TransactionDataset(txns)

    def test_rock_end_to_end(self):
        data = self._baskets()
        ref = rock(data, k=4, theta=0.5, merge_method="heap")
        fast = rock(data, k=4, theta=0.5, merge_method="fast")
        auto = rock(data, k=4, theta=0.5)
        assert_identical(ref, fast)
        assert_identical(ref, auto)

    def test_pipeline_with_weeding_resume(self):
        """The weed-then-resume path goes through the fast engine too."""
        data = self._baskets(n_clusters=5, per=10)
        kwargs = dict(
            k=5, theta=0.5, sample_size=40, min_cluster_size=3, seed=9
        )
        ref = RockPipeline(merge_method="heap", **kwargs).fit(data)
        fast = RockPipeline(merge_method="fast", **kwargs).fit(data)
        assert ref.clusters == fast.clusters
        assert np.array_equal(ref.labels, fast.labels)
        assert ref.outlier_indices == fast.outlier_indices

    def test_model_metadata_records_merge_method(self):
        from repro.serve.model import model_from_result

        data = self._baskets()
        pipeline = RockPipeline(k=4, theta=0.5, merge_method="fast", seed=1)
        result = pipeline.fit(data)
        model = model_from_result(pipeline, result, points=data)
        assert model.metadata["merge_method"] == "fast"

    def test_estimator_param_roundtrip(self):
        from repro.estimator import RockClusterer

        est = RockClusterer(n_clusters=2, merge_method="fast")
        assert est.get_params()["merge_method"] == "fast"
        est.set_params(merge_method="heap")
        assert est.merge_method == "heap"

    def test_methods_tuple(self):
        assert MERGE_METHODS == ("auto", "heap", "fast", "native")


class TestLabelsFromClusters:
    def test_basic(self):
        labels = labels_from_clusters([[0, 2], [1], []], 5)
        assert labels.tolist() == [0, 1, 0, -1, -1]
        assert labels.dtype == np.int64

    def test_empty(self):
        assert labels_from_clusters([], 3).tolist() == [-1, -1, -1]
        assert labels_from_clusters([[]], 0).shape == (0,)
