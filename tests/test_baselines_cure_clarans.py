"""Tests for the CURE and CLARANS related-work baselines."""

import numpy as np
import pytest

from repro.baselines.clarans import clarans_cluster
from repro.baselines.cure import CureResult, _scattered_points, cure_cluster
from repro.data.transactions import Transaction, TransactionDataset


class TestScatteredPoints:
    def test_returns_all_when_few(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = _scattered_points(pts, pts.mean(axis=0), 5)
        assert out.shape == (2, 2)

    def test_farthest_first_spread(self):
        # a line of points: scattered picks should include both extremes
        pts = np.array([[float(i), 0.0] for i in range(10)])
        out = _scattered_points(pts, pts.mean(axis=0), 3)
        xs = sorted(out[:, 0])
        assert xs[0] == 0.0
        assert xs[-1] == 9.0

    def test_count_respected(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(50, 4))
        out = _scattered_points(pts, pts.mean(axis=0), 7)
        assert out.shape == (7, 4)


class TestCure:
    def test_numeric_two_blobs(self):
        rng = np.random.default_rng(1)
        a = rng.normal(loc=0.0, scale=0.3, size=(15, 2))
        b = rng.normal(loc=5.0, scale=0.3, size=(15, 2))
        result = cure_cluster(np.vstack([a, b]), k=2)
        assert sorted(map(len, result.clusters)) == [15, 15]
        assert result.clusters[0] == list(range(15)) or result.clusters[0] == list(range(15, 30))

    def test_transactions_via_boolean_expansion(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}, {8, 10, 11}]
        )
        result = cure_cluster(ds, k=2)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4, 5]]

    def test_shrink_bounds(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            cure_cluster(pts, k=1, shrink=1.5)
        with pytest.raises(ValueError):
            cure_cluster(pts, k=1, n_representatives=0)
        with pytest.raises(ValueError):
            cure_cluster(pts, k=0)
        with pytest.raises(ValueError):
            cure_cluster(np.zeros((0, 2)), k=1)

    def test_representatives_shrink_toward_centroid(self):
        pts = np.array([[0.0], [10.0]])
        full_shrink = cure_cluster(pts, k=1, shrink=1.0)
        assert np.allclose(full_shrink.representatives[0], 5.0)
        no_shrink = cure_cluster(pts, k=1, shrink=0.0, n_representatives=2)
        assert sorted(no_shrink.representatives[0][:, 0].tolist()) == [0.0, 10.0]

    def test_elongated_cluster_respected(self):
        """CURE's point: representatives follow non-spherical shapes a
        centroid cannot.  An elongated chain plus a tight blob closer to
        the chain's centroid than the chain ends are to each other."""
        chain = np.array([[float(i), 0.0] for i in range(12)])
        blob = np.array([[5.5, 4.0], [5.6, 4.1], [5.4, 4.0], [5.5, 4.1]])
        pts = np.vstack([chain, blob])
        result = cure_cluster(pts, k=2, n_representatives=4, shrink=0.2)
        sizes = sorted(map(len, result.clusters))
        assert sizes == [4, 12]

    def test_labels(self):
        pts = np.array([[0.0], [0.1], [9.0]])
        result = cure_cluster(pts, k=2)
        labels = result.labels()
        assert labels[0] == labels[1] != labels[2]


class TestClarans:
    def test_transactions_clustering(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {8, 9, 10}, {8, 9, 11}, {8, 10, 11}]
        )
        result = clarans_cluster(ds, k=2, seed=0)
        assert sorted(map(sorted, result.clusters)) == [[0, 1, 2], [3, 4, 5]]
        assert len(result.medoids) == 2

    def test_cost_is_total_distance_to_medoids(self):
        ds = TransactionDataset([{1, 2}, {1, 2}, {1, 2}])
        result = clarans_cluster(ds, k=1, seed=0)
        assert result.cost == pytest.approx(0.0)

    def test_deterministic_for_seed(self):
        ds = TransactionDataset(
            [{1, 2, i} for i in range(3, 9)] + [{20, 21, i} for i in range(22, 28)]
        )
        a = clarans_cluster(ds, k=2, seed=5)
        b = clarans_cluster(ds, k=2, seed=5)
        assert a.clusters == b.clusters
        assert a.medoids == b.medoids

    def test_more_local_searches_never_worse(self):
        ds = TransactionDataset(
            [{1, 2, i} for i in range(3, 10)] + [{20, 21, i} for i in range(22, 29)]
        )
        single = clarans_cluster(ds, k=2, num_local=1, seed=1)
        multi = clarans_cluster(ds, k=2, num_local=4, seed=1)
        assert multi.cost <= single.cost + 1e-12

    def test_validation(self):
        ds = TransactionDataset([{1}, {2}])
        with pytest.raises(ValueError):
            clarans_cluster(ds, k=0)
        with pytest.raises(ValueError):
            clarans_cluster(ds, k=5)
        with pytest.raises(ValueError):
            clarans_cluster(ds, k=1, num_local=0)
