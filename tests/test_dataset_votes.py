"""Tests for the Congressional Votes replica."""

import pytest

from repro.datasets.votes import (
    DEMOCRAT,
    DEMOCRAT_P_YES,
    REPUBLICAN,
    REPUBLICAN_P_YES,
    VOTE_ISSUES,
    generate_votes,
)


@pytest.fixture(scope="module")
def votes():
    return generate_votes(seed=0)


class TestShape:
    def test_paper_counts(self, votes):
        labels = votes.labels()
        assert len(votes) == 435
        assert labels.count(REPUBLICAN) == 168
        assert labels.count(DEMOCRAT) == 267

    def test_sixteen_issues(self, votes):
        assert len(votes.schema) == 16
        assert set(votes.schema.attributes) == set(VOTE_ISSUES)

    def test_values_are_votes_or_missing(self, votes):
        for record in votes:
            for value in record.values:
                assert value in ("y", "n", None)

    def test_few_missing_values(self, votes):
        assert 0.0 < votes.missing_fraction() < 0.08

    def test_probability_tables_cover_all_issues(self):
        assert set(REPUBLICAN_P_YES) == set(VOTE_ISSUES)
        assert set(DEMOCRAT_P_YES) == set(VOTE_ISSUES)


class TestStatistics:
    def test_majorities_differ_on_most_issues(self, votes):
        """Paper commentary on Table 7: majorities differ on 12 of the 13
        non-agreeing issues; they agree on ~3."""
        from repro.eval.characterize import distinguishing_attributes

        republicans = [i for i, r in enumerate(votes) if r.label == REPUBLICAN]
        democrats = [i for i, r in enumerate(votes) if r.label == DEMOCRAT]
        differing = distinguishing_attributes(votes, republicans, democrats)
        assert len(differing) >= 11

    def test_empirical_frequencies_near_generating(self, votes):
        republicans = [r for r in votes if r.label == REPUBLICAN]
        yes = sum(1 for r in republicans if r["el-salvador-aid"] == "y")
        total = sum(1 for r in republicans if r["el-salvador-aid"] is not None)
        assert yes / total > 0.9  # generating p = 0.99

    def test_moderates_blend(self):
        """With moderate_fraction=1.0 every member votes from the blended
        profile, so party majorities mostly align."""
        blended = generate_votes(moderate_fraction=1.0, seed=1)
        from repro.eval.characterize import distinguishing_attributes

        republicans = [i for i, r in enumerate(blended) if r.label == REPUBLICAN]
        democrats = [i for i, r in enumerate(blended) if r.label == DEMOCRAT]
        differing = distinguishing_attributes(blended, republicans, democrats)
        assert len(differing) <= 6

    def test_deterministic(self):
        a = generate_votes(seed=3)
        b = generate_votes(seed=3)
        assert [r.values for r in a] == [r.values for r in b]
        assert a.labels() == b.labels()

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_votes(n_republicans=-1)
        with pytest.raises(ValueError):
            generate_votes(missing_rate=1.0)
        with pytest.raises(ValueError):
            generate_votes(moderate_fraction=2.0)
