"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    adjusted_rand_index,
    class_composition,
    cluster_purities,
    confusion_matrix,
    contingency_table,
    misclassified_count,
    normalized_mutual_information,
    purity,
    size_statistics,
)

labelings = st.lists(st.integers(0, 3), min_size=1, max_size=40)


class TestContingency:
    def test_counts(self):
        table = contingency_table(["a", "a", "b"], [0, 1, 1])
        assert table == {("a", 0): 1, ("a", 1): 1, ("b", 1): 1}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            contingency_table([], [])

    def test_confusion_matrix_layout(self):
        matrix, rows, cols = confusion_matrix(["a", "a", "b"], [0, 1, 1])
        assert rows == ["a", "b"]
        assert cols == [0, 1]
        assert matrix.tolist() == [[1, 1], [0, 1]]


class TestComposition:
    def test_per_cluster_counts(self):
        clusters = [[0, 1, 2], [3, 4]]
        truth = ["r", "r", "d", "d", "d"]
        comp = class_composition(clusters, truth)
        assert comp == [{"r": 2, "d": 1}, {"d": 2}]

    def test_purities(self):
        clusters = [[0, 1, 2], [3, 4]]
        truth = ["r", "r", "d", "d", "d"]
        assert cluster_purities(clusters, truth) == [pytest.approx(2 / 3), 1.0]

    def test_overall_purity(self):
        clusters = [[0, 1, 2], [3, 4]]
        truth = ["r", "r", "d", "d", "d"]
        assert purity(clusters, truth) == pytest.approx(4 / 5)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            cluster_purities([[]], ["a"])


class TestMisclassified:
    def test_zero_when_perfect(self):
        assert misclassified_count([0, 0, 1, 1], [5, 5, 9, 9]) == 0

    def test_minority_members_counted(self):
        truth = [0, 0, 0, 1, 1]
        pred = [7, 7, 7, 7, 8]
        assert misclassified_count(truth, pred) == 1

    def test_unassigned_skipped_by_default(self):
        truth = [0, 0, 1]
        pred = [5, -1, -1]
        assert misclassified_count(truth, pred) == 0

    def test_unassigned_counted_when_requested(self):
        truth = [0, 0, 1]
        pred = [5, -1, -1]
        # the -1 bucket has classes {0: 1, 1: 1} -> 1 misclassified
        assert misclassified_count(truth, pred, count_unassigned=True) == 1

    def test_split_cluster_not_penalised(self):
        """Splitting a class across clusters is not misclassification
        under the plurality convention (matches Table 6 semantics)."""
        truth = [0, 0, 0, 0]
        pred = [1, 1, 2, 2]
        assert misclassified_count(truth, pred) == 0


class TestARI:
    def test_perfect_agreement(self):
        assert adjusted_rand_index([0, 0, 1, 1], [3, 3, 9, 9]) == pytest.approx(1.0)

    def test_permuted_labels_irrelevant(self):
        a = adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0])
        assert a == pytest.approx(1.0)

    def test_known_value(self):
        # classic example: ARI of a half-split
        truth = [0, 0, 0, 1, 1, 1]
        pred = [0, 0, 1, 1, 2, 2]
        value = adjusted_rand_index(truth, pred)
        assert 0.2 < value < 0.3

    def test_trivial_labelings(self):
        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == 1.0

    @settings(max_examples=60)
    @given(labelings)
    def test_self_agreement_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @settings(max_examples=60)
    @given(labelings, st.randoms(use_true_random=False))
    def test_range(self, labels, rng):
        shuffled = list(labels)
        rng.shuffle(shuffled)
        value = adjusted_rand_index(labels, shuffled)
        assert -1.0 <= value <= 1.0 + 1e-9


class TestNMI:
    def test_perfect(self):
        assert normalized_mutual_information([0, 0, 1, 1], [5, 5, 6, 6]) == pytest.approx(1.0)

    def test_independent(self):
        truth = [0, 0, 1, 1]
        pred = [0, 1, 0, 1]
        assert normalized_mutual_information(truth, pred) == pytest.approx(0.0, abs=1e-9)

    def test_trivial(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    @settings(max_examples=60)
    @given(labelings)
    def test_range_and_self(self, labels):
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)
        reversed_labels = labels[::-1]
        value = normalized_mutual_information(labels, reversed_labels)
        assert 0.0 <= value <= 1.0 + 1e-9


class TestSizeStatistics:
    def test_summary(self):
        stats = size_statistics([[0] * 8, [0] * 2])
        assert stats["count"] == 2
        assert stats["min"] == 2
        assert stats["max"] == 8
        assert stats["mean"] == 5
        assert stats["skew_ratio"] == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            size_statistics([])
