"""Stream-mode unit tests: drift detection and the session loop."""

import json
import random

import numpy as np
import pytest

from repro.core.pipeline import RockPipeline
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.http import load_versioned_model
from repro.stream import DriftDetector, StreamClusterer, publish_model


def make_transactions(vocab, count, size=4, seed=0):
    rng = random.Random(seed)
    return [frozenset(rng.sample(vocab, size)) for _ in range(count)]

A_VOCAB = list(range(10))
B_VOCAB = list(range(50, 60))  # disjoint: every B point is an A-outlier


def make_pipeline(**overrides):
    params = dict(k=3, theta=0.3, seed=11)
    params.update(overrides)
    return RockPipeline(**params)


class TestDriftDetector:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window=0)
        with pytest.raises(ValueError):
            DriftDetector(max_outlier_rate=1.5)
        with pytest.raises(ValueError):
            DriftDetector(min_mean_score=-0.1)

    def test_enabled_only_with_a_threshold(self):
        assert not DriftDetector().enabled
        assert DriftDetector(max_outlier_rate=0.5).enabled
        assert DriftDetector(min_mean_score=0.1).enabled

    def test_no_trigger_until_window_full(self):
        detector = DriftDetector(window=4, max_outlier_rate=0.25)
        assert detector.observe([-1, -1, -1], [0.0, 0.0, 0.0]) is None
        reason = detector.observe([-1], [0.0])
        assert reason is not None and "outlier_rate" in reason

    def test_outlier_rate_trigger_and_window_slide(self):
        detector = DriftDetector(window=4, max_outlier_rate=0.5)
        assert detector.observe([0, 0, -1, -1], [1.0, 1.0, 0.0, 0.0]) is None
        assert detector.outlier_rate == 0.5  # not > 0.5: no trigger
        # two more outliers slide the healthy labels out
        reason = detector.observe([-1, -1], [0.0, 0.0])
        assert reason is not None
        assert detector.outlier_rate == 1.0

    def test_mean_score_trigger(self):
        detector = DriftDetector(window=3, min_mean_score=0.5)
        reason = detector.observe([0, 0, 0], [0.3, 0.3, 0.3])
        assert reason is not None and "mean_score" in reason

    def test_gauges_published(self):
        registry = MetricsRegistry()
        detector = DriftDetector(registry=registry, window=4)
        detector.observe([0, -1], [0.8, 0.0])
        gauges = registry.snapshot()["gauges"]
        assert gauges["stream.drift.outlier_rate"] == pytest.approx(0.5)
        assert gauges["stream.drift.mean_score"] == pytest.approx(0.4)

    def test_reset_empties_window(self):
        detector = DriftDetector(window=2, max_outlier_rate=0.1)
        assert detector.observe([-1, -1], [0.0, 0.0]) is not None
        detector.reset()
        assert detector.outlier_rate == 0.0
        # window must refill before the next trigger
        assert detector.observe([-1], [0.0]) is None
        assert detector.observe([-1], [0.0]) is not None


class TestPublishModel:
    def test_version_matches_loader_and_no_tmp_left(self, tmp_path):
        pipeline = make_pipeline()
        points = make_transactions(A_VOCAB, 120, seed=1)
        result = pipeline.fit(points)
        model = pipeline.to_model(result, points)
        path = tmp_path / "m.json"
        version = publish_model(model, path)
        loaded, loaded_version = load_versioned_model(path)
        assert loaded_version == version
        assert loaded.n_clusters == model.n_clusters
        assert list(tmp_path.iterdir()) == [path]

    def test_republish_overwrites_atomically(self, tmp_path):
        pipeline = make_pipeline()
        points = make_transactions(A_VOCAB, 120, seed=1)
        result = pipeline.fit(points)
        model = pipeline.to_model(result, points)
        path = tmp_path / "m.json"
        v1 = publish_model(model, path)
        model.metadata["generation"] = 2
        v2 = publish_model(model, path)
        assert v1 != v2
        assert load_versioned_model(path)[1] == v2


class TestStreamClusterer:
    def test_parameter_validation(self):
        pipeline = make_pipeline()
        with pytest.raises(ValueError):
            StreamClusterer(pipeline, 50, refit_mode="bogus")
        with pytest.raises(ValueError):
            StreamClusterer(pipeline, 50, refit_every=0)
        with pytest.raises(ValueError):
            StreamClusterer(pipeline, 50, batch_size=0)
        with pytest.raises(ValueError):
            StreamClusterer(pipeline, 50, warmup=0)

    def test_warmup_then_interval_then_drain(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100,
            refit_every=150, batch_size=50, seed=5,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 420, seed=2))
        reasons = [event.reason for event in summary.refits]
        assert reasons[0] == "warmup"
        assert "interval" in reasons
        assert reasons[-1] == "drain"
        assert summary.arrivals == 420
        # labeling starts only once a model exists
        assert 0 < summary.labeled < summary.arrivals
        assert summary.final_version == clusterer.version

    def test_no_drain_refit_when_nothing_new(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=50, warmup=100, batch_size=50,
            seed=5,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 100, seed=3))
        # the warmup fit consumed every arrival: no drain refit on top
        assert [event.reason for event in summary.refits] == ["warmup"]

    def test_small_stream_still_fits_at_drain(self):
        clusterer = StreamClusterer(
            make_pipeline(k=2), reservoir_size=100, batch_size=32, seed=5,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 40, seed=4))
        assert [event.reason for event in summary.refits] == ["drain"]
        assert clusterer.model is not None

    def test_drift_triggers_refit_and_resets_window(self):
        drift = DriftDetector(window=40, max_outlier_rate=0.5)
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=120, batch_size=40,
            drift=drift, seed=5,
        )
        stream = (
            make_transactions(A_VOCAB, 200, seed=6)
            + make_transactions(B_VOCAB, 120, seed=7)
        )
        summary = clusterer.process(stream)
        drift_events = [
            event for event in summary.refits
            if event.reason.startswith("drift")
        ]
        assert drift_events, [event.reason for event in summary.refits]
        assert "outlier_rate" in drift_events[0].reason
        # post-refit the window restarted empty
        assert len(drift._outliers) < drift.window or drift.outlier_rate < 1.0

    def test_resume_mode_marks_refits_resumed(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, refit_every=100,
            batch_size=50, refit_mode="resume", seed=5,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 300, seed=8))
        assert not summary.refits[0].resumed  # nothing to resume from
        assert all(event.resumed for event in summary.refits[1:])

    def test_scratch_mode_never_resumes(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, refit_every=100,
            batch_size=50, refit_mode="scratch", seed=5,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 300, seed=8))
        assert len(summary.refits) >= 2
        assert not any(event.resumed for event in summary.refits)

    def test_request_drain_stops_consumption(self):
        clusterer = StreamClusterer(
            make_pipeline(k=2), reservoir_size=40, warmup=40, batch_size=20,
            seed=5,
        )
        batches = [0]

        def endless():
            rng = random.Random(9)
            while True:
                yield frozenset(rng.sample(A_VOCAB, 4))

        def on_batch(points, labels, scores, version):
            batches[0] += 1
            if batches[0] >= 3:
                clusterer.request_drain()

        clusterer.on_batch = on_batch
        summary = clusterer.process(endless())
        assert summary.drained
        # warmup batches (2) before the model exists + 3 labeled batches
        assert summary.arrivals <= 20 * 6
        assert summary.refits[-1].reason == "drain"

    def test_publishes_every_generation(self, tmp_path):
        path = tmp_path / "model.json"
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, refit_every=100,
            batch_size=50, publish_to=path, seed=5,
        )
        seen = []
        clusterer.on_refit = lambda event: seen.append(
            (event.version, load_versioned_model(path)[1])
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 300, seed=8))
        assert len(seen) == len(summary.refits) >= 2
        for published, on_disk in seen:
            assert published == on_disk

    def test_on_batch_shapes_and_version(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, batch_size=50,
            seed=5,
        )
        calls = []
        clusterer.on_batch = lambda points, labels, scores, version: calls.append(
            (len(points), labels, scores, version)
        )
        clusterer.process(make_transactions(A_VOCAB, 250, seed=2))
        assert calls  # batches after the warmup fit were labeled
        for count, labels, scores, version in calls:
            assert labels.shape == scores.shape == (count,)
            assert labels.dtype == np.int64
            assert version == clusterer.version or version  # non-empty
            outliers = labels < 0
            assert np.all(scores[outliers] == 0.0)
            assert np.all(scores[~outliers] > 0.0)

    def test_state_persists_across_process_calls(self):
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, batch_size=50,
            seed=5,
        )
        first = clusterer.process(make_transactions(A_VOCAB, 150, seed=2))
        assert [event.reason for event in first.refits][0] == "warmup"
        second = clusterer.process(make_transactions(A_VOCAB, 80, seed=3))
        # no second warmup: the model carried over; drain refit only
        assert [event.reason for event in second.refits] == ["drain"]
        assert clusterer.reservoir.seen == 230
        assert second.labeled == 80

    def test_metrics_and_spans_recorded(self):
        tracer = Tracer()
        clusterer = StreamClusterer(
            make_pipeline(), reservoir_size=60, warmup=100, refit_every=100,
            batch_size=50, seed=5, tracer=tracer,
        )
        summary = clusterer.process(make_transactions(A_VOCAB, 250, seed=2))
        snap = tracer.registry.snapshot()
        counters = snap["counters"]
        assert counters["stream.arrivals"] == 250
        assert counters["stream.labeled"] == summary.labeled
        assert counters["stream.refits"] == len(summary.refits)
        assert snap["histograms"]["stream.refit.fit_seconds"]["count"] == len(
            summary.refits
        )
        assert snap["gauges"]["stream.reservoir.seen"] == 250
        names = tracer.span_names()
        assert "stream.refit" in names
        assert "fit" in names  # the pipeline's span tree nests underneath


class TestStreamCli:
    def test_cli_stream_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_transactions
        from repro.data.transactions import Transaction

        source = tmp_path / "txns.txt"
        rng = random.Random(0)
        write_transactions(
            [
                Transaction([f"i{x}" for x in rng.sample(range(12), 4)], tid=t)
                for t in range(300)
            ],
            source,
        )
        model_path = tmp_path / "model.json"
        manifest_path = tmp_path / "trace.json"
        code = main([
            "stream", "--input", str(source), "--theta", "0.3", "-k", "3",
            "--reservoir", "80", "--refit-every", "120",
            "--max-outlier-rate", "0.9", "--drift-window", "40",
            "--publish-to", str(model_path),
            "--trace-out", str(manifest_path), "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ROCK stream" in out
        assert "refit #1 [warmup]" in out
        model, version = load_versioned_model(model_path)
        assert version in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["config"]["reservoir"] == 80
