"""Tests for the similarity functions (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    JaccardSimilarity,
    LpSimilarity,
    MissingAwareJaccard,
    OverlapSimilarity,
    SimilarityTable,
    similarity_levels,
)
from repro.data.records import MISSING, CategoricalDataset, CategoricalRecord, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset

item_sets = st.sets(st.integers(0, 12), max_size=8)


class TestJaccard:
    def test_known_values(self):
        sim = JaccardSimilarity()
        assert sim({1, 2, 3}, {3, 4, 5}) == pytest.approx(0.2)
        assert sim({1, 2, 3}, {1, 2, 4}) == pytest.approx(0.5)

    def test_accepts_transactions_and_records(self):
        sim = JaccardSimilarity()
        schema = CategoricalSchema(["a", "b"])
        r1 = CategoricalRecord(schema, ["x", "y"])
        r2 = CategoricalRecord(schema, ["x", "z"])
        assert sim(r1, r2) == pytest.approx(1 / 3)
        assert sim(Transaction([1, 2]), {1, 2}) == 1.0

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            JaccardSimilarity()(3.14, {1})

    def test_pairwise_matches_scalar(self):
        ds = TransactionDataset([{1, 2, 3}, {1, 2, 4}, {5}, set()])
        sim = JaccardSimilarity()
        matrix = sim.pairwise(ds)
        for i in range(len(ds)):
            for j in range(len(ds)):
                if i == j:
                    assert matrix[i, j] == 1.0
                else:
                    assert matrix[i, j] == pytest.approx(sim(ds[i], ds[j]))

    @settings(max_examples=100)
    @given(item_sets, item_sets)
    def test_symmetry_and_range(self, a, b):
        sim = JaccardSimilarity()
        value = sim(a, b)
        assert 0.0 <= value <= 1.0
        assert value == sim(b, a)

    @settings(max_examples=100)
    @given(item_sets)
    def test_identity(self, a):
        expected = 1.0 if a else 0.0
        assert JaccardSimilarity()(a, a) == expected


class TestOverlap:
    def test_subset_has_full_overlap(self):
        assert OverlapSimilarity()({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_empty_is_zero(self):
        assert OverlapSimilarity()(set(), {1}) == 0.0

    def test_pairwise_matches_scalar(self):
        ds = TransactionDataset([{1, 2}, {1, 2, 3}, {4}])
        sim = OverlapSimilarity()
        matrix = sim.pairwise(ds)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert matrix[i, j] == pytest.approx(sim(ds[i], ds[j]))


class TestMissingAwareJaccard:
    @pytest.fixture
    def schema(self):
        return CategoricalSchema(["d1", "d2", "d3", "d4"])

    def test_identical_on_shared_is_one(self, schema):
        a = CategoricalRecord(schema, ["Up", "Up", MISSING, MISSING])
        b = CategoricalRecord(schema, ["Up", "Up", "Down", "No"])
        assert MissingAwareJaccard()(a, b) == 1.0

    def test_plain_jaccard_would_penalise(self, schema):
        """Contrast with the global encoding, which treats the young
        record's absent attributes as disagreement."""
        a = CategoricalRecord(schema, ["Up", "Up", MISSING, MISSING])
        b = CategoricalRecord(schema, ["Up", "Up", "Down", "No"])
        assert JaccardSimilarity()(a, b) == pytest.approx(0.5)

    def test_no_shared_attributes_is_zero(self, schema):
        a = CategoricalRecord(schema, ["Up", "Up", MISSING, MISSING])
        b = CategoricalRecord(schema, [MISSING, MISSING, "Down", "No"])
        assert MissingAwareJaccard()(a, b) == 0.0

    def test_partial_agreement(self, schema):
        a = CategoricalRecord(schema, ["Up", "Down", "No", MISSING])
        b = CategoricalRecord(schema, ["Up", "Up", "No", "Down"])
        # shared attrs d1,d2,d3: equal on d1,d3 -> inter 2, union 2*3-2=4
        assert MissingAwareJaccard()(a, b) == pytest.approx(0.5)

    def test_pairwise_matches_scalar(self, schema):
        rows = [
            ["Up", "Down", "No", "Up"],
            ["Up", "Up", MISSING, "Up"],
            [MISSING, MISSING, "No", "Down"],
            ["Down", "Down", "Down", MISSING],
        ]
        ds = CategoricalDataset(schema, rows)
        sim = MissingAwareJaccard()
        matrix = sim.pairwise(list(ds))
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert matrix[i, j] == pytest.approx(sim(ds[i], ds[j]))

    def test_pairwise_empty(self):
        assert MissingAwareJaccard().pairwise([]).shape == (0, 0)

    def test_schema_mismatch_rejected(self, schema):
        other = CategoricalSchema(["x", "y", "z", "w"])
        a = CategoricalRecord(schema, ["Up"] * 4)
        b = CategoricalRecord(other, ["Up"] * 4)
        with pytest.raises(ValueError):
            MissingAwareJaccard()(a, b)


class TestSimilarityTable:
    def test_lookup_symmetric(self):
        table = SimilarityTable({("a", "b"): 0.7})
        assert table("a", "b") == 0.7
        assert table("b", "a") == 0.7

    def test_default_for_unknown_pairs(self):
        table = SimilarityTable({("a", "b"): 0.7}, default=0.1)
        assert table("a", "z") == 0.1

    def test_identity_is_one(self):
        table = SimilarityTable({})
        assert table("a", "a") == 1.0

    def test_conflicting_entries_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            SimilarityTable({("a", "b"): 0.7, ("b", "a"): 0.3})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SimilarityTable({("a", "b"): 1.5})
        with pytest.raises(ValueError):
            SimilarityTable({}, default=-0.1)

    def test_key_extraction(self):
        table = SimilarityTable({(1, 2): 0.9}, key=lambda p: p["id"])
        assert table({"id": 1}, {"id": 2}) == 0.9


class TestSimilarityLevels:
    def test_size_3_transactions(self):
        # min size 3 => 4 distinct levels (Section 3.1.1)
        assert similarity_levels(3, 3) == [0.0, 0.2, 0.5, 1.0]

    def test_count_is_min_plus_one(self):
        assert len(similarity_levels(3, 7)) == 4
        assert len(similarity_levels(9, 2)) == 3

    def test_levels_are_achievable_jaccards(self):
        sim = JaccardSimilarity()
        # size 2 vs size 3 over disjoint/partial/subset configurations
        observed = {
            sim({1, 2}, {3, 4, 5}),
            sim({1, 2}, {2, 3, 4}),
            sim({1, 2}, {1, 2, 3}),
        }
        assert observed == set(similarity_levels(2, 3))

    def test_empty_transaction(self):
        assert similarity_levels(0, 5) == [0.0]
        assert similarity_levels(0, 0) == [0.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            similarity_levels(-1, 2)

    @settings(max_examples=50)
    @given(st.integers(0, 10), st.integers(0, 10))
    def test_sorted_and_bounded(self, a, b):
        levels = similarity_levels(a, b)
        assert levels == sorted(levels)
        assert all(0.0 <= l <= 1.0 for l in levels)


class TestLpSimilarity:
    def test_l2_known_value(self):
        sim = LpSimilarity(p=2)
        assert sim([0.0, 0.0], [3.0, 4.0]) == pytest.approx(1 / 6)

    def test_identical_points(self):
        assert LpSimilarity()([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_linf(self):
        sim = LpSimilarity(p=float("inf"))
        assert sim([0.0, 0.0], [1.0, 3.0]) == pytest.approx(0.25)

    def test_scale(self):
        assert LpSimilarity(p=1, scale=10.0)([0.0], [5.0]) == pytest.approx(1 / 1.5)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            LpSimilarity(p=0.5)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LpSimilarity()([1.0], [1.0, 2.0])

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=5),
        st.lists(st.floats(-50, 50), min_size=1, max_size=5),
    )
    def test_range(self, a, b):
        if len(a) != len(b):
            return
        value = LpSimilarity()(a, b)
        assert 0.0 < value <= 1.0
