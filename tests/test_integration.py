"""Cross-module integration tests: replicas through the full pipeline."""

import numpy as np
import pytest

from repro.baselines import centroid_cluster, kmodes_cluster
from repro.core import MissingAwareJaccard, RockPipeline
from repro.data.io import iter_transactions, write_transactions
from repro.datasets import (
    generate_mutual_funds,
    generate_votes,
    small_mushroom,
    small_synthetic_basket,
    TABLE4_GROUPS,
)
from repro.eval import (
    adjusted_rand_index,
    class_composition,
    cluster_purities,
    misclassified_count,
    purity,
)


class TestVotesEndToEnd:
    @pytest.fixture(scope="class")
    def votes(self):
        return generate_votes(seed=1)

    def test_rock_two_dominant_party_clusters(self, votes):
        result = RockPipeline(k=2, theta=0.73, min_cluster_size=5, seed=0).fit(votes)
        assert result.n_clusters == 2
        composition = class_composition(result.clusters, votes.labels())
        majorities = {max(c, key=c.get) for c in composition}
        assert majorities == {"republican", "democrat"}

    def test_rock_beats_or_matches_centroid_contamination(self, votes):
        rock_result = RockPipeline(k=2, theta=0.73, min_cluster_size=5, seed=0).fit(votes)
        centroid_result = centroid_cluster(votes, k=2, eliminate_singletons=False)
        truth = votes.labels()
        rock_purity = purity(rock_result.clusters, truth)
        centroid_purity = purity(centroid_result.clusters, truth)
        assert rock_purity >= centroid_purity - 0.01

    def test_kmodes_reasonable(self, votes):
        result = kmodes_cluster(votes, k=2, seed=0, n_init=3)
        assert purity(result.clusters, votes.labels()) > 0.7


class TestMushroomEndToEnd:
    @pytest.fixture(scope="class")
    def mushroom(self):
        return small_mushroom(seed=2)

    def test_rock_finds_mostly_pure_skewed_clusters(self, mushroom):
        result = RockPipeline(k=20, theta=0.8, min_cluster_size=3, seed=0).fit(
            mushroom.dataset
        )
        purities = cluster_purities(result.clusters, mushroom.class_labels)
        impure = sum(1 for p in purities if p < 1.0)
        assert impure <= 1  # paper: all but one cluster pure
        sizes = result.cluster_sizes()
        assert max(sizes) / max(min(sizes), 1) > 3  # wide size variance

    def test_rock_recovers_latent_clusters_well(self, mushroom):
        result = RockPipeline(k=20, theta=0.8, min_cluster_size=3, seed=0).fit(
            mushroom.dataset
        )
        clustered = [i for i in range(len(mushroom.dataset)) if result.labels[i] >= 0]
        ari = adjusted_rand_index(
            [mushroom.cluster_labels[i] for i in clustered],
            [int(result.labels[i]) for i in clustered],
        )
        assert ari > 0.9


class TestFundsEndToEnd:
    def test_rock_recovers_fund_groups(self):
        funds = generate_mutual_funds(
            groups=TABLE4_GROUPS[:6], n_pairs=2, n_outliers=15, n_days=150, seed=4
        )
        result = RockPipeline(
            k=8, theta=0.8, similarity=MissingAwareJaccard(),
            min_cluster_size=2, outlier_multiple=1.0, seed=0,
        ).fit(funds.dataset)
        named = {}
        for cluster in result.clusters:
            labels = {funds.group_labels[i] for i in cluster}
            assert len(labels) == 1  # never mixes groups
            named.setdefault(labels.pop(), 0)
        for name, size, _ in TABLE4_GROUPS[:6]:
            assert name in named


class TestBasketWithDiskLabeling:
    def test_sample_cluster_label_from_disk_file(self, tmp_path):
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=120, n_outliers=15, seed=6
        )
        path = tmp_path / "txns.txt"
        write_transactions(basket.transactions, path)
        # stream back from disk, sample, cluster, and label the stream
        streamed = list(iter_transactions(path))
        assert len(streamed) == len(basket.transactions)
        result = RockPipeline(
            k=3, theta=0.4, sample_size=120, min_cluster_size=5, seed=6
        ).fit(streamed)
        assert result.n_clusters == 3
        wrong = misclassified_count(basket.labels, result.labels.tolist())
        assert wrong <= len(basket.labels) * 0.05

    def test_quality_improves_with_sample_size(self):
        """The Table 6 trend at miniature scale: more sample, fewer
        misclassified transactions (checked as a weak monotonicity)."""
        basket = small_synthetic_basket(
            n_clusters=4, cluster_size=200, n_outliers=30, seed=8
        )
        wrongs = []
        for sample_size in (60, 320):
            result = RockPipeline(
                k=4, theta=0.4, sample_size=sample_size, min_cluster_size=4, seed=1
            ).fit(basket.transactions)
            wrongs.append(misclassified_count(basket.labels, result.labels.tolist()))
        assert wrongs[1] <= wrongs[0]


class TestCriterionConsistency:
    def test_rock_merge_improves_criterion_over_random_split(self):
        from repro.core import compute_links, compute_neighbor_graph, criterion_value

        basket = small_synthetic_basket(
            n_clusters=2, cluster_size=40, n_outliers=0, seed=9
        )
        graph = compute_neighbor_graph(basket.transactions, theta=0.4)
        links = compute_links(graph)
        result = RockPipeline(k=2, theta=0.4, seed=0).fit(basket.transactions)
        f = 1 / 3
        rock_value = criterion_value(result.clusters, links, f)
        # a deliberately shuffled split of the same sizes scores lower
        rng = np.random.default_rng(0)
        all_points = np.arange(len(basket.transactions))
        rng.shuffle(all_points)
        half = len(result.clusters[0])
        random_split = [all_points[:half].tolist(), all_points[half:].tolist()]
        random_value = criterion_value(random_split, links, f)
        assert rock_value > random_value
