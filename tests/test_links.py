"""Tests for link computation (Sections 3.2, 4.4, Figure 4)."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import (
    LinkTable,
    compute_links,
    dense_link_matrix,
    path_link_matrix,
    sparse_link_table,
)
from repro.core.neighbors import NeighborGraph, compute_neighbor_graph
from repro.data.transactions import Transaction, TransactionDataset


def graph_from_edges(n, edges):
    adj = np.zeros((n, n), dtype=bool)
    for i, j in edges:
        adj[i, j] = adj[j, i] = True
    return NeighborGraph(adj)


def random_graph_strategy(max_n=12):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_n))
        edges = draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda e: e[0] < e[1]
                ),
                max_size=n * (n - 1) // 2,
            )
        )
        return graph_from_edges(n, edges)

    return build()


class TestLinkTable:
    def test_increment_and_get_symmetric(self):
        table = LinkTable(3)
        table.increment(0, 2)
        table.increment(2, 0, amount=4)
        assert table.get(0, 2) == 5
        assert table.get(2, 0) == 5
        assert table.get(0, 1) == 0

    def test_self_link_rejected(self):
        table = LinkTable(2)
        with pytest.raises(ValueError):
            table.increment(1, 1)
        with pytest.raises(ValueError):
            table.get(0, 0)

    def test_pairs_each_once(self):
        table = LinkTable(3)
        table.increment(0, 1, 2)
        table.increment(1, 2, 3)
        assert sorted(table.pairs()) == [(0, 1, 2), (1, 2, 3)]
        assert table.nnz_pairs() == 2

    def test_dense_round_trip(self):
        table = LinkTable(4)
        table.increment(0, 3, 7)
        table.increment(1, 2, 1)
        dense = table.to_dense()
        back = LinkTable.from_dense(dense)
        assert sorted(back.pairs()) == sorted(table.pairs())

    def test_from_dense_validation(self):
        with pytest.raises(ValueError, match="square"):
            LinkTable.from_dense(np.zeros((2, 3)))
        asym = np.zeros((2, 2), dtype=np.int64)
        asym[0, 1] = 1
        with pytest.raises(ValueError, match="symmetric"):
            LinkTable.from_dense(asym)
        diag = np.eye(2, dtype=np.int64)
        with pytest.raises(ValueError, match="diagonal"):
            LinkTable.from_dense(diag)


class TestLinkCounts:
    def test_triangle_every_pair_links_once(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        links = dense_link_matrix(g)
        # in a triangle each pair has exactly one common neighbor
        for i, j in combinations(range(3), 2):
            assert links[i, j] == 1

    def test_star_leaves_link_through_hub(self):
        g = graph_from_edges(4, [(0, 1), (0, 2), (0, 3)])
        links = dense_link_matrix(g)
        for i, j in combinations([1, 2, 3], 2):
            assert links[i, j] == 1
        assert links[0, 1] == 0  # hub shares no neighbor with a leaf

    def test_path_endpoints(self):
        g = graph_from_edges(3, [(0, 1), (1, 2)])
        links = dense_link_matrix(g)
        assert links[0, 2] == 1
        assert links[0, 1] == 0

    def test_isolated_point_zero_links(self):
        g = graph_from_edges(3, [(0, 1)])
        assert dense_link_matrix(g)[2].sum() == 0

    def test_diagonal_zeroed(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert dense_link_matrix(g).diagonal().tolist() == [0, 0, 0]

    def test_example_1_2_exact_counts(self):
        """The paper's Example 1.2 / Section 3.2 link counts, verbatim."""
        big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
        small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
        ds = TransactionDataset([Transaction(t) for t in big + small])
        idx = {t.items: i for i, t in enumerate(ds)}
        graph = compute_neighbor_graph(ds, theta=0.5)
        links = compute_links(graph)

        def link(a, b):
            return links.get(idx[frozenset(a)], idx[frozenset(b)])

        assert link({1, 2, 3}, {1, 2, 4}) == 5
        assert link({1, 2, 3}, {1, 2, 6}) == 3
        assert link({1, 2, 6}, {1, 2, 7}) == 5
        assert link({1, 6, 7}, {1, 2, 6}) == 2
        # {1,6,7} has 0 links with non-12x members of the big cluster
        assert link({1, 6, 7}, {3, 4, 5}) == 0


class TestSparseDenseEquivalence:
    def test_forced_methods_agree(self):
        g = graph_from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)])
        dense = compute_links(g, method="dense").to_dense()
        sparse = compute_links(g, method="sparse").to_dense()
        assert np.array_equal(dense, sparse)

    def test_invalid_method(self):
        g = graph_from_edges(2, [])
        with pytest.raises(ValueError, match="unknown method"):
            compute_links(g, method="quantum")

    @settings(max_examples=80, deadline=None)
    @given(random_graph_strategy())
    def test_figure4_equals_matrix_square(self, graph):
        assert np.array_equal(
            sparse_link_table(graph).to_dense(), dense_link_matrix(graph)
        )

    @settings(max_examples=40, deadline=None)
    @given(random_graph_strategy(max_n=8))
    def test_links_bounded_by_min_degree(self, graph):
        links = dense_link_matrix(graph)
        degrees = graph.degrees()
        for i in range(graph.n):
            for j in range(graph.n):
                if i != j:
                    assert links[i, j] <= min(degrees[i], degrees[j])

    @settings(max_examples=40, deadline=None)
    @given(random_graph_strategy(max_n=10))
    def test_space_bound_of_section_4_5(self, graph):
        """Section 4.5: "a point i can have links to at most
        min{n, m_m m_i} other points" -- the storage bound for the
        sparse link table."""
        table = sparse_link_table(graph)
        degrees = graph.degrees()
        mm = int(degrees.max()) if graph.n else 0
        for i in range(graph.n):
            partners = len(table.row(i))
            assert partners <= min(graph.n, mm * int(degrees[i])), i
        assert table.nnz_pairs() <= min(
            graph.n * graph.n, mm * int(degrees.sum())
        )


class TestPathLinks:
    def test_length_2_is_dense_links(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert np.array_equal(path_link_matrix(g, 2), dense_link_matrix(g))

    def test_unsupported_length(self):
        g = graph_from_edges(2, [])
        with pytest.raises(ValueError):
            path_link_matrix(g, 4)

    def brute_force_paths3(self, graph):
        adj = graph.adjacency
        n = graph.n
        counts = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                for a in range(n):
                    if a in (i, j) or not adj[i, a]:
                        continue
                    for b in range(n):
                        if b in (i, j, a) or not adj[a, b] or not adj[b, j]:
                            continue
                        counts[i, j] += 1
        return counts

    def test_length_3_path_count_on_square(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert np.array_equal(path_link_matrix(g, 3), self.brute_force_paths3(g))

    @settings(max_examples=30, deadline=None)
    @given(random_graph_strategy(max_n=7))
    def test_length_3_matches_bruteforce(self, graph):
        assert np.array_equal(
            path_link_matrix(graph, 3), self.brute_force_paths3(graph)
        )
