"""Cross-module property tests: end-to-end fuzzing and global invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RockPipeline, compute_links, compute_neighbor_graph, rock
from repro.core.goodness import goodness
from repro.core.tuning import suggest_theta
from repro.data.transactions import Transaction, TransactionDataset

transaction_sets = st.lists(
    st.sets(st.integers(0, 15), min_size=1, max_size=6),
    min_size=2,
    max_size=25,
)


class TestGoodnessSymmetry:
    @settings(max_examples=100)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 10_000),
        st.integers(1, 10_000),
        st.floats(0.0, 1.0),
    )
    def test_bitwise_symmetric(self, links, ni, nj, f):
        assert goodness(links, ni, nj, f) == goodness(links, nj, ni, f)


class TestEndToEndFuzz:
    @settings(max_examples=60, deadline=None)
    @given(transaction_sets, st.floats(0.05, 0.95), st.integers(1, 5))
    def test_rock_always_returns_valid_partition(self, sets, theta, k):
        ds = TransactionDataset([Transaction(s) for s in sets])
        result = rock(ds, k=k, theta=theta)
        flat = sorted(p for c in result.clusters for p in c)
        assert flat == list(range(len(ds)))  # exact partition
        assert len(result.clusters) >= min(k, len(ds)) or result.stopped_early
        labels = result.labels()
        for c, members in enumerate(result.clusters):
            for p in members:
                assert labels[p] == c

    @settings(max_examples=30, deadline=None)
    @given(transaction_sets, st.floats(0.1, 0.9))
    def test_pipeline_never_mislabels_structures(self, sets, theta):
        ds = TransactionDataset([Transaction(s) for s in sets])
        try:
            result = RockPipeline(k=2, theta=theta, seed=0).fit(ds)
        except ValueError as error:
            # the only sanctioned failure: everything pruned as isolated
            assert "pruned" in str(error)
            return
        assert len(result.labels) == len(ds)
        # clusters and labels agree; outliers are exactly the -1s
        for c, members in enumerate(result.clusters):
            for p in members:
                assert result.labels[p] == c
        clustered = {p for c in result.clusters for p in c}
        unlabeled = {i for i, l in enumerate(result.labels) if l == -1}
        assert clustered | unlabeled == set(range(len(ds)))
        assert not clustered & unlabeled

    @settings(max_examples=30, deadline=None)
    @given(transaction_sets, st.floats(0.1, 0.9))
    def test_links_bound_by_common_neighbor_definition(self, sets, theta):
        ds = TransactionDataset([Transaction(s) for s in sets])
        graph = compute_neighbor_graph(ds, theta)
        links = compute_links(graph)
        adjacency = graph.adjacency
        for i, j, count in links.pairs():
            manual = int(np.sum(adjacency[i] & adjacency[j]))
            assert count == manual


class TestSerializationFuzz:
    @settings(max_examples=30, deadline=None)
    @given(transaction_sets, st.integers(1, 4))
    def test_rock_result_roundtrips_for_any_input(self, sets, k):
        import io

        from repro.core.serialization import load_result, save_result

        ds = TransactionDataset([Transaction(s) for s in sets])
        result = rock(ds, k=k, theta=0.4)
        buffer = io.StringIO()
        save_result(result, buffer)
        buffer.seek(0)
        back = load_result(buffer)
        assert back.clusters == result.clusters
        assert back.merges == result.merges
        assert back.stopped_early == result.stopped_early


class TestCategoricalPipelineFuzz:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from(["a", "b", "c", None]), min_size=3, max_size=3),
            min_size=3,
            max_size=20,
        ),
        st.floats(0.2, 0.9),
    )
    def test_categorical_records_never_crash(self, rows, theta):
        from repro.data.records import CategoricalDataset, CategoricalSchema

        schema = CategoricalSchema(["x", "y", "z"])
        ds = CategoricalDataset(schema, rows)
        try:
            result = RockPipeline(k=2, theta=theta, seed=0).fit(ds)
        except ValueError as error:
            assert "pruned" in str(error)
            return
        assert len(result.labels) == len(ds)


class TestThetaAdvisorOnReplicas:
    def test_mushroom_suggestion_recovers_paper_setting(self):
        """The advisor lands near the paper's theta = 0.8 for mushroom."""
        from repro.core.encoding import dataset_to_transactions
        from repro.datasets import small_mushroom

        data = small_mushroom(seed=1)
        transactions = dataset_to_transactions(data.dataset)
        suggestion = suggest_theta(transactions, rng=0, max_pairs=1500)
        assert 0.7 <= suggestion.theta <= 0.9

    def test_votes_suggestion_recovers_paper_setting(self):
        """The advisor lands near the paper's theta = 0.73 for votes."""
        from repro.core.encoding import dataset_to_transactions
        from repro.datasets import generate_votes

        votes = generate_votes(seed=4)
        suggestion = suggest_theta(dataset_to_transactions(votes), rng=0)
        assert 0.6 <= suggestion.theta <= 0.85
