"""Cross-validation of from-scratch components against scipy/networkx.

Everything in this library is implemented from scratch; where a mature
library computes the same mathematical object, we check agreement on
randomised inputs.  These tests are corroboration, not dependency: the
library itself never imports scipy, and networkx only inside the
optional min-cut partitioner.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hierarchical import (
    agglomerate,
    group_average_update,
    single_link_update,
)
from repro.core.components import connected_components
from repro.core.neighbors import NeighborGraph
from repro.core.similarity import JaccardSimilarity
from repro.data.transactions import Transaction, TransactionDataset


def random_points(seed, n=18, d=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d))


def distance_matrix(points):
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def partition_from_fcluster(assignment):
    clusters = {}
    for i, c in enumerate(assignment):
        clusters.setdefault(int(c), []).append(i)
    return sorted(
        (sorted(members) for members in clusters.values()),
        key=lambda c: (-len(c), c[0]),
    )


class TestAgainstScipyHierarchy:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_single_link_matches_scipy(self, seed, k):
        from scipy.cluster.hierarchy import fcluster, linkage
        from scipy.spatial.distance import squareform

        points = random_points(seed)
        d = distance_matrix(points)
        ours = agglomerate(d, k, single_link_update)
        scipy_tree = linkage(squareform(d, checks=False), method="single")
        theirs = partition_from_fcluster(
            fcluster(scipy_tree, t=k, criterion="maxclust")
        )
        assert sorted(map(tuple, ours.clusters)) == sorted(map(tuple, theirs))

    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_group_average_matches_scipy(self, seed, k):
        from scipy.cluster.hierarchy import fcluster, linkage
        from scipy.spatial.distance import squareform

        points = random_points(seed)
        d = distance_matrix(points)
        ours = agglomerate(d, k, group_average_update)
        scipy_tree = linkage(squareform(d, checks=False), method="average")
        theirs = partition_from_fcluster(
            fcluster(scipy_tree, t=k, criterion="maxclust")
        )
        assert sorted(map(tuple, ours.clusters)) == sorted(map(tuple, theirs))

    def test_merge_distances_match_scipy_single(self):
        from scipy.cluster.hierarchy import linkage
        from scipy.spatial.distance import squareform

        points = random_points(7)
        d = distance_matrix(points)
        ours = agglomerate(d, 1, single_link_update)
        scipy_tree = linkage(squareform(d, checks=False), method="single")
        assert np.allclose(
            sorted(m.distance for m in ours.merges),
            sorted(scipy_tree[:, 2]),
        )


class TestAgainstScipyJaccard:
    @settings(max_examples=60)
    @given(
        st.sets(st.integers(0, 10), min_size=1, max_size=8),
        st.sets(st.integers(0, 10), min_size=1, max_size=8),
    )
    def test_jaccard_matches_scipy_boolean_distance(self, a, b):
        from scipy.spatial.distance import jaccard as scipy_jaccard

        universe = sorted(a | b)
        va = np.array([i in a for i in universe], dtype=bool)
        vb = np.array([i in b for i in universe], dtype=bool)
        ours = JaccardSimilarity()(a, b)
        theirs = 1.0 - float(scipy_jaccard(va, vb))
        assert ours == pytest.approx(theirs)


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 15),
        st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40),
    )
    def test_components_match_networkx(self, n, raw_edges):
        import networkx as nx

        edges = {(a % n, b % n) for a, b in raw_edges if a % n != b % n}
        adj = np.zeros((n, n), dtype=bool)
        for a, b in edges:
            adj[a, b] = adj[b, a] = True
        ours = connected_components(NeighborGraph(adj))

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        theirs = sorted(
            (sorted(c) for c in nx.connected_components(graph)),
            key=lambda c: (-len(c), c[0]),
        )
        assert ours == theirs

    def test_link_counts_match_networkx_common_neighbors(self):
        import networkx as nx

        from repro.core.links import compute_links
        from repro.core.neighbors import compute_neighbor_graph

        ds = TransactionDataset(
            [Transaction({i, i + 1, (i * 2) % 9}) for i in range(12)]
        )
        graph = compute_neighbor_graph(ds, theta=0.3)
        links = compute_links(graph)
        nxg = nx.from_numpy_array(graph.adjacency.astype(int))
        for i in range(len(ds)):
            for j in range(i + 1, len(ds)):
                expected = len(list(nx.common_neighbors(nxg, i, j)))
                assert links.get(i, j) == expected
