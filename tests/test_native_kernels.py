"""Native kernels vs the reference paths -- byte-for-byte equivalence.

The :mod:`repro.native` kernels are only admissible as pure
optimisations: for every input the native fused pass must produce the
same survivor sets, neighbor lists, degrees and link counts as
:func:`repro.parallel.links.fused_neighbor_links`, and the native merge
engine must replay the same merge history -- bitwise-equal goodness
floats and identical ``heap_ops`` accounting -- as both the Figure 3
reference loop and the fast Python engine.  The hypothesis properties
mirror ``tests/test_merge_engine.py`` and ``tests/test_parallel_fit.py``
and run against every backend tier that probes successfully on this
machine (numba where the ``[native]`` extra is installed, the C
extension wherever a system compiler exists); unavailable tiers skip.
"""

import math
import os
import random
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goodness import (
    default_f,
    goodness,
    merge_kernel_for,
    naive_goodness,
)
from repro.core.links import LinkTable
from repro.core.merge import (
    component_merge_stream,
    fast_cluster_with_links,
    partition_components,
)
from repro.core.pipeline import RockPipeline
from repro.core.rock import cluster_with_links, rock
from repro.core.similarity import JaccardSimilarity, OverlapSimilarity
from repro.data.transactions import Transaction, TransactionDataset
from repro.native import _BACKEND_NAMES, _reset_for_tests, get_kernels
from repro.native.links import (
    native_fit_supported,
    native_neighbor_links,
    native_transaction_csr,
)
from repro.native.merge import native_component_streams, native_merge_supported
from repro.obs.registry import MetricsRegistry
from repro.parallel.links import fused_neighbor_links

# probe once per tier; tests loop over whatever works on this machine
AVAILABLE = [name for name in _BACKEND_NAMES if get_kernels(name) is not None]

pytestmark = pytest.mark.skipif(
    not AVAILABLE, reason="no native backend available on this machine"
)


@contextmanager
def forced_backend(name: str):
    """Pin ``get_kernels()`` (no-arg form) to one tier for a block."""
    old = os.environ.get("REPRO_NATIVE_BACKEND")
    os.environ["REPRO_NATIVE_BACKEND"] = name
    _reset_for_tests()
    try:
        yield get_kernels(name)
    finally:
        if old is None:
            os.environ.pop("REPRO_NATIVE_BACKEND", None)
        else:
            os.environ["REPRO_NATIVE_BACKEND"] = old
        _reset_for_tests()


item_sets = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), max_size=6),
    min_size=1,
    max_size=40,
)

THETAS = [0.2, 0.25, 0.5, 0.75, 1.0]


def tables_equal(a: LinkTable, b: LinkTable) -> bool:
    return a.n == b.n and sorted(a.pairs()) == sorted(b.pairs())


def assert_identical(ref, other) -> None:
    """Byte-for-byte RockResult equality, goodness floats included."""
    assert ref.clusters == other.clusters
    assert ref.stopped_early == other.stopped_early
    assert len(ref.merges) == len(other.merges)
    for a, b in zip(ref.merges, other.merges):
        assert a == b
        assert math.isclose(a.goodness, b.goodness, rel_tol=0.0, abs_tol=0.0) or (
            np.float64(a.goodness).tobytes() == np.float64(b.goodness).tobytes()
        )


# -- the fused pass: native block kernel vs scipy-product reference -----------


class TestNativeFusedPass:
    @settings(max_examples=40, deadline=None)
    @given(
        sets=item_sets,
        theta=st.sampled_from(THETAS),
        block_size=st.sampled_from([1, 3, 64]),
        overlap=st.booleans(),
    )
    def test_links_degrees_graph_identical(self, sets, theta, block_size, overlap):
        dataset = TransactionDataset([Transaction(s) for s in sets])
        similarity = OverlapSimilarity() if overlap else JaccardSimilarity()
        reference = fused_neighbor_links(
            dataset, theta, similarity=similarity, workers=1,
            block_size=block_size, keep_graph=True,
        )
        for name in AVAILABLE:
            with forced_backend(name):
                native = native_neighbor_links(
                    dataset, theta, similarity=similarity, workers=1,
                    block_size=block_size, keep_graph=True,
                )
            assert tables_equal(native.links, reference.links)
            assert np.array_equal(native.degrees, reference.degrees)
            for a, b in zip(
                native.graph.neighbor_lists(), reference.graph.neighbor_lists()
            ):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_worker_count_invariance(self, backend):
        rng = np.random.default_rng(5)
        dataset = TransactionDataset([
            Transaction(frozenset(
                map(int, rng.choice(30, size=rng.integers(1, 8), replace=False))
            ))
            for _ in range(120)
        ])
        with forced_backend(backend):
            serial = native_neighbor_links(
                dataset, 0.4, workers=1, block_size=16
            )
            fanned = native_neighbor_links(
                dataset, 0.4, workers=3, block_size=16
            )
        assert tables_equal(serial.links, fanned.links)
        assert np.array_equal(serial.degrees, fanned.degrees)
        reference = fused_neighbor_links(dataset, 0.4, workers=1, block_size=16)
        assert tables_equal(serial.links, reference.links)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_csr_roundtrip_and_metrics(self, backend):
        dataset = TransactionDataset(
            [Transaction({1, 2, 3}), Transaction({2, 3, 4}), Transaction({9})]
        )
        csr = native_transaction_csr(dataset)
        assert csr is not None and csr.n == 3
        assert np.array_equal(np.diff(csr.indptr), csr.sizes)
        assert csr.t_indices.size == csr.indices.size
        registry = MetricsRegistry()
        with forced_backend(backend):
            native_neighbor_links(dataset, 0.5, workers=1, registry=registry)
        counters = registry.snapshot()["counters"]
        assert counters["fit.native.blocks"] >= 1
        assert counters["fit.native.rows"] == 3

    def test_unsupported_configs_rejected(self):
        ok, reason = native_fit_supported([Transaction({1, 2})], 0.0)
        assert not ok and "theta" in reason
        ok, reason = native_fit_supported(
            [Transaction({1, 2})], 0.5, similarity=lambda a, b: 1.0
        )
        assert not ok
        with pytest.raises(ValueError, match="native fit unsupported"):
            native_neighbor_links([Transaction({1, 2})], 0.0)


# -- the merge engine: native component loop vs heap and fast engines ---------


@st.composite
def link_problems(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    weighted = draw(st.booleans())
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda p: p[0] != p[1])
    if weighted:
        counts = st.floats(min_value=0.05, max_value=8.0, allow_nan=False, width=64)
    else:
        counts = st.integers(min_value=1, max_value=6).map(float)
    raw = draw(st.dictionaries(pairs, counts, max_size=n * 3))
    edges = {(min(a, b), max(a, b)): c for (a, b), c in raw.items()}
    k = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    use_partition = draw(st.booleans())
    initial = None
    if use_partition and n > 1:
        rng = random.Random(seed)
        ids = list(range(n))
        rng.shuffle(ids)
        cuts = sorted(rng.sample(range(1, n), rng.randint(0, n - 1)))
        initial = [ids[a:b] for a, b in zip([0] + cuts, cuts + [n]) if b > a]
    return n, edges, k, initial


def make_links(n: int, edges: dict) -> LinkTable:
    links = LinkTable(n)
    for (i, j), count in edges.items():
        links.increment(i, j, count)
    return links


class TestNativeMergeEngine:
    @settings(max_examples=60, deadline=None)
    @given(problem=link_problems(), naive=st.booleans())
    def test_merge_history_identical(self, problem, naive):
        n, edges, k, initial = problem
        goodness_fn = naive_goodness if naive else goodness
        kwargs = dict(
            k=k, f_theta=default_f(0.5), initial_clusters=initial,
            goodness_fn=goodness_fn,
        )
        links = make_links(n, edges)
        ref = cluster_with_links(links, merge_method="heap", **kwargs)
        fast = cluster_with_links(links, merge_method="fast", **kwargs)
        assert_identical(ref, fast)
        for name in AVAILABLE:
            with forced_backend(name):
                native = cluster_with_links(
                    links, merge_method="native", **kwargs
                )
            assert_identical(ref, native)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_streams_and_heap_ops_identical(self, backend):
        """The native streams match the Python ones field for field."""
        rng = random.Random(11)
        links = LinkTable(90)
        for base in range(0, 90, 6):
            for i in range(base, base + 6):
                for j in range(i + 1, base + 6):
                    links.increment(i, j, rng.randint(1, 5))
        sizes = np.ones(90, dtype=np.int64)
        lo, hi, counts = links.pair_arrays()
        problems = partition_components(90, sizes, lo, hi, counts)
        kernel = merge_kernel_for(goodness, default_f(0.5), n_max=90)
        serial = [component_merge_stream(p, kernel) for p in problems]
        registry = MetricsRegistry()
        with forced_backend(backend) as kernels:
            native = native_component_streams(
                problems, kernel, kernels, registry=registry
            )
        assert len(native) == len(serial)
        for a, b in zip(serial, native):
            assert np.array_equal(a.left, b.left)
            assert np.array_equal(a.right, b.right)
            assert a.goodness.tobytes() == b.goodness.tobytes()
            assert np.array_equal(a.sizes, b.sizes)
            assert a.heap_ops == b.heap_ops
        counters = registry.snapshot()["counters"]
        assert counters["fit.cluster.heap_ops"] == sum(
            s.heap_ops for s in serial
        )

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_stopped_early_disconnected(self, backend):
        edges = {(0, 1): 3.0, (1, 2): 2.0, (3, 4): 4.0, (5, 6): 1.0}
        links = make_links(8, edges)  # point 7 fully isolated
        ref = cluster_with_links(
            links, k=1, f_theta=default_f(0.5), merge_method="heap"
        )
        with forced_backend(backend):
            native = cluster_with_links(
                links, k=1, f_theta=default_f(0.5), merge_method="native"
            )
        assert ref.stopped_early and native.stopped_early
        assert_identical(ref, native)

    def test_merge_supported_matrix(self):
        assert native_merge_supported(merge_kernel_for(goodness, 0.5))
        assert native_merge_supported(merge_kernel_for(naive_goodness, 0.5))
        assert not native_merge_supported(None)
        assert not native_merge_supported(
            merge_kernel_for(lambda c, ni, nj, f: c, 0.5)
        )


# -- the serving assign kernel: fused gather/threshold/argmax ----------------


class TestNativeAssignKernel:
    def test_probe_advertises_assign_block(self):
        """Every advertised tier carries the serving assign kernel.

        The probe's smoke test exercises ``assign_block`` before a tier
        is offered at all, so a namespace without it (or with a broken
        one) must never reach ``AVAILABLE``.
        """
        for name in AVAILABLE:
            kernels = get_kernels(name)
            assert hasattr(kernels, "assign_block"), name

    @settings(max_examples=40, deadline=None)
    @given(
        sets=item_sets,
        points=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=20), max_size=6),
            min_size=1,
            max_size=25,
        ),
        theta=st.sampled_from(THETAS),
        block_size=st.sampled_from([1, 3, 8192]),
    )
    def test_assign_block_matches_pruned_path(
        self, sets, points, theta, block_size
    ):
        from repro.core.labeling import LabelingIndex
        from repro.serve.index import AssignmentIndex
        from repro.data.transactions import Transaction as T

        half = max(1, len(sets) // 2)
        labeling_sets = [
            [T(s) for s in sets[:half]], [T(s) for s in sets[half:]]
        ]
        dense = LabelingIndex(labeling_sets, theta, 0.4)
        fast = AssignmentIndex(dense)
        batch = [T(p) for p in points]
        ref_labels, ref_best = fast.assign_with_scores(
            batch, block_size=block_size
        )
        assert np.array_equal(dense.assign(batch), ref_labels)
        for name in AVAILABLE:
            kernels = get_kernels(name)
            labels, best = fast.assign_with_scores(
                batch, block_size=block_size, kernels=kernels
            )
            assert np.array_equal(labels, ref_labels), name
            assert best.tobytes() == ref_best.tobytes(), name


# -- end to end ---------------------------------------------------------------


class TestNativeEndToEnd:
    def _baskets(self, n_clusters: int = 4, per: int = 12, seed: int = 3):
        rng = np.random.default_rng(seed)
        txns = []
        for c in range(n_clusters):
            pool = np.arange(c * 12, c * 12 + 12)
            for _ in range(per):
                txns.append(
                    Transaction(rng.choice(pool, 8, replace=False).tolist())
                )
        return TransactionDataset(txns)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_rock_native_modes(self, backend):
        data = self._baskets()
        ref = rock(data, k=4, theta=0.5, fit_mode="fused", merge_method="heap")
        with forced_backend(backend):
            native = rock(
                data, k=4, theta=0.5, fit_mode="native", merge_method="native"
            )
        assert_identical(ref, native)

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_pipeline_native_equals_fused(self, backend):
        data = self._baskets(n_clusters=5, per=10)
        kwargs = dict(
            k=5, theta=0.5, sample_size=40, min_cluster_size=3, seed=9
        )
        ref = RockPipeline(
            fit_mode="fused", merge_method="heap", **kwargs
        ).fit(data)
        with forced_backend(backend):
            native = RockPipeline(
                fit_mode="native", merge_method="native", **kwargs
            ).fit(data)
        assert ref.clusters == native.clusters
        assert np.array_equal(ref.labels, native.labels)
        assert ref.outlier_indices == native.outlier_indices
        assert native.backends["fit"] == f"native:{backend}"
        assert native.backends["merge"] == f"native:{backend}"
        assert ref.backends["fit"] == "fused"
