"""repro.shard: store round-trips, sharded == fused identity, fallbacks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RockPipeline, rock
from repro.core.neighbors import SparseTransactionScorer
from repro.data.transactions import Transaction, TransactionDataset
from repro.datasets import small_synthetic_basket, write_basket_file
from repro.estimator import RockClusterer
from repro.shard import (
    StoreIntegrityError,
    StoreScorer,
    TransactionStore,
    plan_shards,
    shard_fit,
    shard_supported,
)
from repro.shard.planner import component_chunks

transaction_sets = st.lists(
    st.sets(st.integers(0, 15), min_size=1, max_size=6),
    min_size=2,
    max_size=25,
)


@pytest.fixture(scope="module")
def basket():
    return small_synthetic_basket(
        n_clusters=3, cluster_size=40, n_outliers=8, seed=7
    )


def _dataset(sets):
    return TransactionDataset([Transaction(s) for s in sets])


def _merge_key(result):
    """Byte-level identity of the merge history (incl. goodness)."""
    return [
        (m.left, m.right, m.merged, float(m.goodness).hex(), m.size)
        for m in result.merges
    ]


def _assert_identical(a, b):
    assert a.clusters == b.clusters
    assert a.stopped_early == b.stopped_early
    assert _merge_key(a) == _merge_key(b)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class TestTransactionStore:
    def test_round_trip(self, tmp_path, basket):
        ds = basket.transactions
        store = TransactionStore.write(tmp_path / "store", ds)
        assert len(store) == len(ds)
        assert store.n_items == ds.n_items
        assert store.nnz == sum(len(t) for t in ds)
        sizes = store.sizes()
        for i, txn in enumerate(ds):
            assert sizes[i] == len(txn)
            assert sorted(store.row_items(i)) == sorted(str(x) for x in txn)

    def test_open_and_verify(self, tmp_path, basket):
        path = tmp_path / "store"
        written = TransactionStore.write(path, basket.transactions)
        reopened = TransactionStore.open(path, verify=True)
        assert reopened.checksum == written.checksum
        assert reopened.nnz == written.nnz

    def test_tamper_detected(self, tmp_path, basket):
        path = tmp_path / "store"
        TransactionStore.write(path, basket.transactions)
        payload = bytearray((path / "items.i32").read_bytes())
        payload[0] ^= 0xFF
        (path / "items.i32").write_bytes(bytes(payload))
        with pytest.raises(StoreIntegrityError):
            TransactionStore.open(path, verify=True)
        with pytest.raises(StoreIntegrityError):
            TransactionStore.open(path).verify()

    def test_from_transactions_file_matches_in_memory(self, tmp_path):
        source = tmp_path / "txns.txt"
        write_basket_file(source, 300, n_clusters=3, seed=5)
        from repro.data.io import read_transactions

        ds = read_transactions(source)
        from_file = TransactionStore.from_transactions_file(
            source, tmp_path / "s1", chunk_rows=17
        )
        from_memory = TransactionStore.write(tmp_path / "s2", ds)
        # item codes may permute (first-seen vs sorted vocabulary) but
        # the decoded content is identical row for row
        assert len(from_file) == len(from_memory)
        assert from_file.nnz == from_memory.nnz
        for i in range(0, len(ds), 37):
            assert sorted(from_file.row_items(i)) == sorted(
                from_memory.row_items(i)
            )
        # and similarity is permutation-invariant, so fits agree
        f_theta = (1 - 0.5) / (1 + 0.5)
        a = shard_fit(store=from_file, k=3, theta=0.5, f_theta=f_theta)
        b = shard_fit(store=from_memory, k=3, theta=0.5, f_theta=f_theta)
        _assert_identical(a.result, b.result)

    def test_chunked_write_is_chunk_size_invariant(self, tmp_path, basket):
        ds = basket.transactions
        a = TransactionStore.write(tmp_path / "a", ds, chunk_rows=7)
        b = TransactionStore.write(tmp_path / "b", ds, chunk_rows=4096)
        assert a.checksum == b.checksum

    def test_scorer_matches_sparse_scorer(self, tmp_path, basket):
        ds = basket.transactions
        store = TransactionStore.write(tmp_path / "store", ds)
        reference = SparseTransactionScorer(ds, overlap=False)
        sharded = StoreScorer(store)
        for start, stop in [(0, 13), (13, 60), (60, len(ds))]:
            ref_rows = reference.neighbor_rows(start, stop, 0.4)
            got_rows = sharded.neighbor_rows(start, stop, 0.4)
            for ref, got in zip(ref_rows, got_rows):
                np.testing.assert_array_equal(ref, got)


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class TestPlanner:
    def test_blocks_cover_exactly(self):
        plan = plan_shards(100, block_rows=13)
        spans = [span for _, span in plan.block_units()]
        assert spans[0][0] == 0 and spans[-1][1] == 100
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start

    def test_component_chunks_partition(self):
        costs = np.array([5, 1, 1, 90, 2, 2, 7], dtype=np.float64)
        chunks = component_chunks(costs, max_units=3)
        assert chunks[0][0] == 0 and chunks[-1][1] == len(costs)
        assert all(start < stop for start, stop in chunks)
        assert len(chunks) <= 3

    def test_component_chunks_empty(self):
        assert component_chunks(np.empty(0)) == []


# ---------------------------------------------------------------------------
# sharded == fused == dense, property-tested
# ---------------------------------------------------------------------------

class TestShardedIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        transaction_sets,
        st.floats(0.1, 0.9),
        st.integers(1, 4),
        st.sampled_from([None, 3, 7, 13]),
    )
    def test_sharded_equals_fused_and_dense(self, sets, theta, k, block_rows):
        ds = _dataset(sets)
        dense = rock(ds, k=k, theta=theta, fit_mode="dense")
        fused = rock(ds, k=k, theta=theta, fit_mode="fused")
        sharded = rock(
            ds, k=k, theta=theta, fit_mode="sharded",
            shard_block_rows=block_rows,
        )
        _assert_identical(dense, fused)
        _assert_identical(fused, sharded)

    @pytest.mark.parametrize("workers", [None, 2, 7])
    @pytest.mark.parametrize("block_rows", [None, 7, 13])
    def test_worker_and_block_invariance(self, basket, workers, block_rows):
        ds = basket.transactions
        fused = rock(ds, k=4, theta=0.5, fit_mode="fused")
        sharded = rock(
            ds, k=4, theta=0.5, fit_mode="sharded",
            workers=workers, shard_block_rows=block_rows,
        )
        _assert_identical(fused, sharded)

    def test_fit_from_store_only(self, tmp_path, basket):
        ds = basket.transactions
        store = TransactionStore.write(tmp_path / "store", ds)
        fused = rock(ds, k=4, theta=0.5, fit_mode="fused")
        sharded = shard_fit(store=store, k=4, theta=0.5, f_theta=(1 - 0.5) / (1 + 0.5))
        _assert_identical(fused, sharded.result)
        assert sharded.store_path == str(tmp_path / "store")

    def test_pipeline_identity_with_sampling_and_labeling(self, basket):
        ds = basket.transactions
        kwargs = dict(k=4, theta=0.5, sample_size=90, min_neighbors=1, seed=3)
        reference = RockPipeline(fit_mode="fused", **kwargs).fit(ds)
        sharded = RockPipeline(fit_mode="sharded", **kwargs).fit(ds)
        np.testing.assert_array_equal(reference.labels, sharded.labels)
        assert sharded.backends["fit"] == "sharded"
        assert sharded.backends["merge"] == "fast"

    def test_overlap_similarity(self, basket):
        from repro.core.similarity import OverlapSimilarity

        ds = basket.transactions
        fused = rock(ds, k=4, theta=0.6, similarity=OverlapSimilarity(), fit_mode="fused")
        sharded = rock(ds, k=4, theta=0.6, similarity=OverlapSimilarity(), fit_mode="sharded")
        _assert_identical(fused, sharded)


# ---------------------------------------------------------------------------
# fallback taxonomy
# ---------------------------------------------------------------------------

class TestShardedFallbacks:
    def _points(self):
        return small_synthetic_basket(
            n_clusters=2, cluster_size=25, n_outliers=4, seed=1
        ).transactions

    def test_custom_goodness_falls_back(self):
        ds = self._points()
        supported, reason = shard_supported(ds, None, lambda l, ni, nj, f: l)
        assert not supported and "goodness" in reason
        with pytest.warns(RuntimeWarning, match="sharded.*unavailable"):
            result = rock(
                ds, k=3, theta=0.4, fit_mode="sharded",
                goodness_fn=lambda l, ni, nj, f: float(l),
            )
        reference = rock(
            ds, k=3, theta=0.4, goodness_fn=lambda l, ni, nj, f: float(l)
        )
        assert result.clusters == reference.clusters

    def test_min_neighbors_above_one_falls_back(self):
        ds = self._points()
        pipeline = RockPipeline(k=3, theta=0.4, min_neighbors=3, fit_mode="sharded")
        with pytest.warns(RuntimeWarning, match="min_neighbors"):
            result = pipeline.fit(ds)
        reference = RockPipeline(k=3, theta=0.4, min_neighbors=3).fit(ds)
        np.testing.assert_array_equal(result.labels, reference.labels)

    def test_min_cluster_size_falls_back(self):
        ds = self._points()
        pipeline = RockPipeline(
            k=3, theta=0.4, min_cluster_size=3, fit_mode="sharded"
        )
        with pytest.warns(RuntimeWarning, match="weeding"):
            result = pipeline.fit(ds)
        reference = RockPipeline(k=3, theta=0.4, min_cluster_size=3).fit(ds)
        np.testing.assert_array_equal(result.labels, reference.labels)

    def test_initial_clusters_falls_back(self):
        ds = self._points()
        seed_partition = [[i] for i in range(len(ds))]
        pipeline = RockPipeline(k=3, theta=0.4, fit_mode="sharded")
        with pytest.warns(RuntimeWarning, match="initial_clusters"):
            pipeline.fit(ds, initial_clusters=seed_partition)

    def test_missing_aware_falls_back(self):
        from repro.core.similarity import MissingAwareJaccard
        from repro.datasets import generate_votes

        votes = generate_votes(seed=0).subset(range(80))
        pipeline = RockPipeline(
            k=2, theta=0.5, similarity=MissingAwareJaccard(),
            fit_mode="sharded",
        )
        with pytest.warns(RuntimeWarning, match="sharded.*unavailable"):
            result = pipeline.fit(votes)
        reference = RockPipeline(
            k=2, theta=0.5, similarity=MissingAwareJaccard()
        ).fit(votes)
        np.testing.assert_array_equal(result.labels, reference.labels)

    def test_shard_fit_rejects_unsupported_directly(self):
        ds = self._points()
        with pytest.raises(ValueError, match="built-in goodness"):
            shard_fit(
                ds, k=2, theta=0.5, f_theta=0.33,
                goodness_fn=lambda l, ni, nj, f: float(l),
            )
        with pytest.raises(ValueError, match="min_neighbors"):
            shard_fit(ds, k=2, theta=0.5, f_theta=0.33, min_neighbors=2)


# ---------------------------------------------------------------------------
# estimator + observability + host memory
# ---------------------------------------------------------------------------

class TestIntegration:
    def test_estimator_params_round_trip(self):
        est = RockClusterer(
            n_clusters=3, theta=0.5, fit_mode="sharded", shard_block_rows=32,
            spill_dir="/tmp/spill-x", max_retries=5,
        )
        params = est.get_params()
        assert params["shard_block_rows"] == 32
        assert params["spill_dir"] == "/tmp/spill-x"
        assert params["max_retries"] == 5
        clone = RockClusterer(**params)
        assert clone.get_params() == params

    def test_estimator_fit_sharded(self, basket):
        ds = basket.transactions
        sharded = RockClusterer(n_clusters=4, theta=0.5, fit_mode="sharded").fit(ds)
        reference = RockClusterer(n_clusters=4, theta=0.5).fit(ds)
        np.testing.assert_array_equal(sharded.labels_, reference.labels_)

    def test_shard_metrics_and_spans(self, basket):
        from repro.obs import Tracer

        tracer = Tracer()
        RockPipeline(k=4, theta=0.5, fit_mode="sharded").fit(
            basket.transactions, tracer=tracer
        )
        snap = tracer.registry.snapshot()
        assert snap["counters"]["fit.shard.blocks"] >= 1
        assert snap["counters"]["fit.shard.components"] >= 1
        assert snap["gauges"]["fit.shard.block_rows"] >= 1
        assert snap["gauges"]["fit.shard.store_bytes"] > 0
        names = tracer.span_names()
        assert "neighbors" in names and "cluster" in names
        assert any(name.startswith("shard.block-") for name in names)

    def test_model_metadata_records_shard_config(self, basket):
        from repro.serve.model import model_from_result

        pipeline = RockPipeline(
            k=4, theta=0.5, fit_mode="sharded", shard_block_rows=48,
            labeling_fraction=0.5, seed=2,
        )
        result, model = pipeline.fit_model(basket.transactions)
        assert model.metadata["fit_mode"] == "sharded"
        assert model.metadata["shard_block_rows"] == 48
        assert model.metadata["max_retries"] == 2
        assert model.metadata["backends"]["fit"] == "sharded"

    def test_host_memory_in_metadata(self):
        from repro.obs import host_memory, host_metadata

        meta = host_metadata()
        assert "mem_total_bytes" in meta
        assert "mem_available_bytes" in meta
        total, available = host_memory()
        if total is not None:
            assert total > 0
            assert meta["mem_total_bytes"] == total
        if total is not None and available is not None:
            assert 0 < available <= total

    def test_resolve_memory_budget(self):
        from repro.core.neighbors import (
            DEFAULT_MEMORY_BUDGET,
            resolve_memory_budget,
        )
        from repro.obs import host_memory

        assert resolve_memory_budget(12345) == 12345
        default = resolve_memory_budget()
        _, available = host_memory()
        if available is None:
            assert default == DEFAULT_MEMORY_BUDGET
        else:
            assert (256 << 20) <= default <= (4 << 30)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestShardCli:
    def _write_input(self, tmp_path):
        from repro.data.io import write_transactions

        path = tmp_path / "txns.txt"
        basket = small_synthetic_basket(
            n_clusters=3, cluster_size=30, n_outliers=5, seed=4
        )
        write_transactions(basket.transactions, path)
        return path

    def test_cluster_sharded_matches_default(self, tmp_path, capsys):
        from repro.cli import main

        source = self._write_input(tmp_path)
        out_a = tmp_path / "a.labels"
        out_b = tmp_path / "b.labels"
        base = ["cluster", "--input", str(source), "--theta", "0.5", "-k", "4"]
        assert main(base + ["--output", str(out_a)]) == 0
        assert main(
            base
            + [
                "--output", str(out_b),
                "--fit-mode", "sharded",
                "--shard-block-rows", "16",
                "--spill-dir", str(tmp_path / "spill"),
            ]
        ) == 0
        capsys.readouterr()
        assert out_a.read_text() == out_b.read_text()

    def test_gen_data(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "big.txt"
        labels = tmp_path / "big.labels"
        code = main(
            [
                "gen-data", "--out", str(out), "-n", "500",
                "--clusters", "4", "--labels", str(labels),
                "--chunk-rows", "64", "--seed", "9",
            ]
        )
        assert code == 0
        assert len(out.read_text().splitlines()) == 500
        assert len(labels.read_text().splitlines()) == 500
        stdout = capsys.readouterr().out
        assert "500 transactions" in stdout

    def test_gen_data_deterministic_and_chunk_invariant(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        write_basket_file(a, 400, n_clusters=4, chunk_rows=11, seed=2)
        write_basket_file(b, 400, n_clusters=4, chunk_rows=4096, seed=2)
        assert a.read_text() == b.read_text()
