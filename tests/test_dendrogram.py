"""Tests for the dendrogram view over ROCK merge histories."""

import pytest

from repro.core.dendrogram import Dendrogram
from repro.core.links import LinkTable
from repro.core.rock import MergeStep, cluster_with_links


def links_from_pairs(n, pairs):
    table = LinkTable(n)
    for i, j, count in pairs:
        table.increment(i, j, count)
    return table


@pytest.fixture
def chain_result():
    # two tight pairs loosely linked: merges happen pair-first
    links = links_from_pairs(
        4, [(0, 1, 9), (2, 3, 9), (1, 2, 1)]
    )
    return cluster_with_links(links, k=1, f_theta=1 / 3)


class TestConstruction:
    def test_from_result(self, chain_result):
        tree = Dendrogram.from_result(chain_result)
        assert tree.n_initial == 4
        assert len(tree.merges) == 3

    def test_members_of_merged_nodes(self, chain_result):
        tree = Dendrogram.from_result(chain_result)
        # node 4 is the first merge, node 6 the root
        assert tree.members(chain_result.merges[0].merged) in ([0, 1], [2, 3])
        assert tree.members(chain_result.merges[-1].merged) == [0, 1, 2, 3]

    def test_initial_clusters_supported(self):
        merges = [MergeStep(left=0, right=1, merged=2, goodness=1.0, size=5)]
        tree = Dendrogram(5, merges, initial_clusters=[[0, 1, 4], [2, 3]])
        assert tree.n_initial == 2
        assert tree.members(2) == [0, 1, 2, 3, 4]

    def test_bad_merge_ids_rejected(self):
        merges = [MergeStep(left=0, right=1, merged=7, goodness=1.0, size=2)]
        with pytest.raises(ValueError, match="consecutive"):
            Dendrogram(3, merges)

    def test_dead_cluster_reference_rejected(self):
        merges = [
            MergeStep(left=0, right=1, merged=3, goodness=1.0, size=2),
            MergeStep(left=0, right=2, merged=4, goodness=1.0, size=3),
        ]
        with pytest.raises(ValueError, match="not alive"):
            Dendrogram(3, merges)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(0, [])


class TestCut:
    def test_cut_reproduces_every_granularity(self, chain_result):
        tree = Dendrogram.from_result(chain_result)
        assert tree.cut(4) == [[0], [1], [2], [3]]
        two = tree.cut(2)
        assert sorted(map(sorted, two)) == [[0, 1], [2, 3]]
        assert tree.cut(1) == [[0, 1, 2, 3]]

    def test_cut_matches_fresh_run_at_same_k(self):
        links = links_from_pairs(
            6, [(0, 1, 5), (1, 2, 4), (3, 4, 5), (4, 5, 4), (2, 3, 1)]
        )
        full = cluster_with_links(links, k=1, f_theta=1 / 3)
        tree = Dendrogram.from_result(full)
        for k in (2, 3):
            fresh = cluster_with_links(links, k=k, f_theta=1 / 3)
            assert sorted(map(tuple, tree.cut(k))) == sorted(
                map(tuple, fresh.clusters)
            )

    def test_cut_out_of_range(self, chain_result):
        tree = Dendrogram.from_result(chain_result)
        with pytest.raises(ValueError):
            tree.cut(0)
        with pytest.raises(ValueError):
            tree.cut(5)


class TestGoodnessDiagnostics:
    def test_trace_matches_merges(self, chain_result):
        tree = Dendrogram.from_result(chain_result)
        assert list(tree.goodness_trace()) == [
            m.goodness for m in chain_result.merges
        ]

    def test_suggest_k_finds_the_drop(self):
        # two clean clusters: the pair merges are good, the bridging
        # merge is poor -- suggest_k should say 2
        links = links_from_pairs(
            6,
            [(0, 1, 9), (0, 2, 9), (1, 2, 9), (3, 4, 9), (3, 5, 9), (4, 5, 9),
             (2, 3, 1)],
        )
        result = cluster_with_links(links, k=1, f_theta=1 / 3)
        tree = Dendrogram.from_result(result)
        assert tree.suggest_k() == 2

    def test_suggest_k_with_few_merges(self):
        links = links_from_pairs(2, [(0, 1, 1)])
        result = cluster_with_links(links, k=1, f_theta=1 / 3)
        tree = Dendrogram.from_result(result)
        assert tree.suggest_k() in (1, 2)

    def test_suggest_k_respects_min_k(self):
        links = links_from_pairs(
            6,
            [(0, 1, 9), (0, 2, 9), (1, 2, 9), (3, 4, 9), (3, 5, 9), (4, 5, 9),
             (2, 3, 1)],
        )
        result = cluster_with_links(links, k=1, f_theta=1 / 3)
        tree = Dendrogram.from_result(result)
        assert tree.suggest_k(min_k=3) >= 3
        with pytest.raises(ValueError):
            tree.suggest_k(min_k=0)
