"""Hot model reload: atomic swap, no torn reads, failure containment.

The acceptance bar: reload the artifact while the server is under
sustained load and observe (a) zero failed requests across the swap,
(b) every response internally consistent -- the returned label always
matches the returned ``model_version`` -- and (c) ``/model`` flipping
to the new version exactly, never to a half-state.

Two deliberately different models make torn reads observable: a probe
point that model A labels ``0`` is labeled ``1`` by model B (whose
labeling sets are swapped), so any response pairing the old version
string with the new label (or vice versa) fails the test.
"""

import dataclasses
import http.client
import json
import os
import threading
import time

import pytest

from repro.data.transactions import Transaction
from repro.serve import RockModel
from repro.serve.http import ModelWatcher, load_versioned_model, serve_in_thread

SETS_A = [
    [Transaction({1, 2, 3}), Transaction({1, 2, 4})],
    [Transaction({7, 8, 9}), Transaction({7, 8, 10})],
]
# same clusters, opposite order: the probe {1,2,3} flips label 0 -> 1
SETS_B = [list(SETS_A[1]), list(SETS_A[0])]

PROBE = [1, 2, 3]
THETA = 0.4


def build_model(labeling_sets, tag):
    return RockModel(
        labeling_sets=labeling_sets,
        theta=THETA,
        f_theta=(1 - THETA) / (1 + THETA),
        metadata={"tag": tag},
    )


def write_model(path, model):
    """Atomic-rename write, the way a deploy pipeline would."""
    tmp = path.with_suffix(".tmp")
    model.save(tmp)
    tmp.replace(path)


def request_json(address, method, path, payload=None, conn=None):
    own = conn is None
    if own:
        conn = http.client.HTTPConnection(*address, timeout=30)
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    if own:
        conn.close()
    return response.status, json.loads(raw)


def wait_for_version(address, version, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, data = request_json(address, "GET", "/model")
        if data["model_version"] == version:
            return data
        time.sleep(0.02)
    raise AssertionError(f"server never served version {version}")


class TestLoadVersionedModel:
    def test_version_is_checksum_prefix(self, tmp_path):
        path = tmp_path / "m.json"
        build_model(SETS_A, "a").save(path)
        model, version = load_versioned_model(path)
        assert len(version) == 16
        assert model.metadata["tag"] == "a"
        # identical content -> identical version, regardless of mtime
        path2 = tmp_path / "copy.json"
        build_model(SETS_A, "a").save(path2)
        assert load_versioned_model(path2)[1] == version

    def test_different_content_different_version(self, tmp_path):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        build_model(SETS_A, "a").save(pa)
        build_model(SETS_B, "b").save(pb)
        assert load_versioned_model(pa)[1] != load_versioned_model(pb)[1]

    def test_corrupt_artifact_refused(self, tmp_path):
        path = tmp_path / "m.json"
        build_model(SETS_A, "a").save(path)
        data = json.loads(path.read_text())
        data["theta"] = 0.9  # tamper after checksumming
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_versioned_model(path)


class TestAtomicSwap:
    def test_model_endpoint_flips_to_new_version(self, tmp_path):
        path = tmp_path / "model.json"
        model_a = build_model(SETS_A, "a")
        write_model(path, model_a)
        with serve_in_thread(path, poll_seconds=0.05) as handle:
            before = request_json(handle.address, "GET", "/model")[1]
            assert before["metadata"]["tag"] == "a"
            write_model(path, build_model(SETS_B, "b"))
            _, new_version = load_versioned_model(path)
            after = wait_for_version(handle.address, new_version)
            assert after["metadata"]["tag"] == "b"
            assert after["model_version"] != before["model_version"]
            _, health = request_json(handle.address, "GET", "/healthz")
            assert health["reloads"] >= 1
            assert health["reload_errors"] == 0

    def test_no_torn_reads_under_load(self, tmp_path):
        path = tmp_path / "model.json"
        write_model(path, build_model(SETS_A, "a"))
        version_a = load_versioned_model(path)[1]
        expected = {version_a: 0}

        with serve_in_thread(
            path, poll_seconds=0.02, batch_max=16, batch_wait_us=500,
            cache_size=0,
        ) as handle:
            stop = threading.Event()
            failures = []
            observed_versions = set()
            n_ok = [0]
            lock = threading.Lock()

            def worker():
                conn = http.client.HTTPConnection(*handle.address, timeout=30)
                while not stop.is_set():
                    status, data = request_json(
                        handle.address, "POST", "/assign",
                        {"point": PROBE}, conn=conn,
                    )
                    with lock:
                        if status != 200:
                            failures.append(("status", status))
                            continue
                        n_ok[0] += 1
                        version = data["model_version"]
                        observed_versions.add(version)
                        want = expected.get(version)
                        if want is None:
                            failures.append(("unknown version", version))
                        elif data["label"] != want:
                            failures.append(
                                ("torn", version, data["label"])
                            )
                conn.close()

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            try:
                time.sleep(0.3)  # load against model A
                write_model(path, build_model(SETS_B, "b"))
                version_b = load_versioned_model(path)[1]
                with lock:
                    expected[version_b] = 1
                wait_for_version(handle.address, version_b)
                time.sleep(0.3)  # load against model B
            finally:
                stop.set()
                for t in threads:
                    t.join(30)
            snap = handle.server.registry.snapshot()["counters"]

        assert failures == [], failures[:10]
        assert n_ok[0] > 50, "load generator barely ran"
        assert observed_versions == {version_a, version_b}, (
            "swap never observed under load"
        )
        assert snap["http.reload.count"] >= 1
        assert snap.get("http.errors.assign", 0) == 0

    def test_failed_reload_keeps_serving_old_model(self, tmp_path):
        path = tmp_path / "model.json"
        write_model(path, build_model(SETS_A, "a"))
        version_a = load_versioned_model(path)[1]
        with serve_in_thread(path, poll_seconds=0.02) as handle:
            wait_for_version(handle.address, version_a)
            path.write_text('{"format": "rock-model", "truncated')
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _, health = request_json(handle.address, "GET", "/healthz")
                if health["reload_errors"] >= 1:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("corrupt artifact never noticed")
            assert health["last_reload_error"]
            # still serving, still on the old generation
            status, data = request_json(
                handle.address, "POST", "/assign", {"point": PROBE}
            )
            assert status == 200
            assert data["model_version"] == version_a
            assert data["label"] == 0
            # recovery: a good artifact heals the watcher
            write_model(path, build_model(SETS_B, "b"))
            version_b = load_versioned_model(path)[1]
            wait_for_version(handle.address, version_b)
            _, health = request_json(handle.address, "GET", "/healthz")
            assert health["last_reload_error"] is None

    def test_tampered_artifact_is_a_contained_reload_error(self, tmp_path):
        path = tmp_path / "model.json"
        write_model(path, build_model(SETS_A, "a"))
        version_a = load_versioned_model(path)[1]
        with serve_in_thread(path, poll_seconds=0.02) as handle:
            wait_for_version(handle.address, version_a)
            data = json.loads(path.read_text())
            data["theta"] = 0.99  # checksum no longer matches
            path.write_text(json.dumps(data))
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _, health = request_json(handle.address, "GET", "/healthz")
                if health["reload_errors"] >= 1:
                    break
                time.sleep(0.02)
            assert "checksum mismatch" in (health["last_reload_error"] or "")
            assert health["model_version"] == version_a


class TestRewriteWindow:
    """Regression: change detection keyed on ``(mtime_ns, size)`` alone
    missed a same-size in-place rewrite landing within the mtime
    granularity.  The watcher must confirm a *recent* unchanged
    signature against the content digest -- and go back to stat-only
    once the mtime has aged past the window."""

    def same_size_rewrite(self, path):
        """Rewrite the artifact in place with swapped labeling sets,
        byte length preserved, and the original stat signature forced
        back (the worst case the mtime granularity can produce)."""
        before = path.stat()
        scratch = path.parent / "rewrite-src.json"
        build_model(SETS_B, "x").save(scratch)
        content_b = scratch.read_text()
        scratch.unlink()
        assert len(content_b.encode()) == before.st_size, (
            "fixture drift: models A and B must serialize to equal sizes"
        )
        path.write_text(content_b)
        os.utime(path, ns=(before.st_atime_ns, before.st_mtime_ns))
        after = path.stat()
        assert (after.st_mtime_ns, after.st_size) == (
            before.st_mtime_ns, before.st_size,
        )

    def test_same_signature_rewrite_detected(self, tmp_path):
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        watcher = ModelWatcher(path, rewrite_window_seconds=60.0)
        version_a = watcher.current.version
        self.same_size_rewrite(path)
        assert watcher.check_once() is True
        assert watcher.current.version != version_a
        assert watcher.current.version == load_versioned_model(path)[1]
        counters = watcher.registry.snapshot()["counters"]
        assert counters["http.reload.content_checks"] >= 1
        assert counters["http.reload.count"] == 1

    def test_missed_without_content_confirmation(self, tmp_path):
        """The bug, demonstrated: with the window disabled the same
        rewrite is invisible to a stat-only poll."""
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        watcher = ModelWatcher(path, rewrite_window_seconds=0.0)
        version_a = watcher.current.version
        self.same_size_rewrite(path)
        assert watcher.check_once() is False
        assert watcher.current.version == version_a

    def test_steady_state_stays_stat_only(self, tmp_path):
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        stat = path.stat()
        # age the artifact well past the default window
        os.utime(
            path, ns=(stat.st_atime_ns, stat.st_mtime_ns - 600 * 10**9)
        )
        watcher = ModelWatcher(path, rewrite_window_seconds=2.0)
        for _ in range(5):
            assert watcher.check_once() is False
        counters = watcher.registry.snapshot()["counters"]
        assert counters.get("http.reload.content_checks", 0) == 0
        assert counters.get("http.reload.count", 0) == 0

    def test_recent_unchanged_content_confirmed_not_swapped(self, tmp_path):
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        watcher = ModelWatcher(path, rewrite_window_seconds=3600.0)
        assert watcher.check_once() is False  # content check, same digest
        counters = watcher.registry.snapshot()["counters"]
        assert counters["http.reload.content_checks"] >= 1
        assert counters.get("http.reload.count", 0) == 0

    def test_negative_window_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        with pytest.raises(ValueError):
            ModelWatcher(path, rewrite_window_seconds=-1.0)


class TestMonotonicAge:
    """Regression: reload recorded ``loaded_unix = time.time()`` while
    the server measured age against ``time.monotonic()`` -- a wall
    clock step (NTP, DST, manual set) corrupted every age readout.
    Age math now lives entirely in the monotonic domain."""

    def test_age_is_monotonic_and_ignores_wall_clock(self, tmp_path):
        path = tmp_path / "model.json"
        build_model(SETS_A, "x").save(path)
        watcher = ModelWatcher(path)
        served = watcher.current
        basis = served.loaded_monotonic
        assert served.age_seconds(now_monotonic=basis + 5.0) == 5.0
        # never negative, even against a stale monotonic reading
        assert served.age_seconds(now_monotonic=basis - 5.0) == 0.0
        # a wall-clock step an hour forward must not touch the age
        skewed = dataclasses.replace(served, loaded_unix=time.time() + 3600)
        assert skewed.age_seconds(now_monotonic=basis + 5.0) == 5.0
        assert 0.0 <= skewed.age_seconds() < 60.0

    def test_server_reports_monotonic_age(self, tmp_path):
        path = tmp_path / "model.json"
        write_model(path, build_model(SETS_A, "a"))
        with serve_in_thread(path, poll_seconds=5.0) as handle:
            _, first = request_json(handle.address, "GET", "/model")
            assert first["model_age_seconds"] >= 0.0
            time.sleep(0.05)
            _, second = request_json(handle.address, "GET", "/model")
            assert second["model_age_seconds"] > first["model_age_seconds"]
            _, health = request_json(handle.address, "GET", "/healthz")
            assert health["model_age_seconds"] >= 0.0
