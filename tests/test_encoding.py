"""Tests for categorical-record encodings (Section 3.1.2, Section 5)."""

import numpy as np
import pytest

from repro.core.encoding import (
    attribute_item,
    dataset_to_boolean_matrix,
    dataset_to_transactions,
    record_to_transaction,
    restrict_to_shared_attributes,
)
from repro.data.records import MISSING, CategoricalDataset, CategoricalRecord, CategoricalSchema


@pytest.fixture
def schema():
    return CategoricalSchema(["color", "size"])


class TestRecordToTransaction:
    def test_items_are_attribute_dot_value(self, schema):
        record = CategoricalRecord(schema, ["brown", "narrow"], rid=7)
        t = record_to_transaction(record)
        assert t.items == {"color.brown", "size.narrow"}
        assert t.tid == 7

    def test_missing_values_ignored(self, schema):
        record = CategoricalRecord(schema, ["brown", MISSING])
        assert record_to_transaction(record).items == {"color.brown"}

    def test_attribute_item_format(self):
        assert attribute_item("odor", "foul") == "odor.foul"

    def test_same_value_different_attribute_distinct(self):
        schema = CategoricalSchema(["a", "b"])
        record = CategoricalRecord(schema, ["x", "x"])
        assert len(record_to_transaction(record)) == 2


class TestDatasetToTransactions:
    def test_consistent_vocabulary(self, schema):
        ds = CategoricalDataset(schema, [["brown", "broad"], ["white", MISSING]])
        txns = dataset_to_transactions(ds)
        assert len(txns) == 2
        assert set(txns.vocabulary) == {"color.brown", "color.white", "size.broad"}


class TestBooleanMatrix:
    def test_one_column_per_attribute_value(self, schema):
        ds = CategoricalDataset(schema, [["brown", "broad"], ["white", "broad"]])
        matrix, names = dataset_to_boolean_matrix(ds)
        assert matrix.shape == (2, 3)
        assert names == ["color.brown", "color.white", "size.broad"]
        assert matrix[0].tolist() == [1.0, 0.0, 1.0]
        assert matrix[1].tolist() == [0.0, 1.0, 1.0]

    def test_missing_expands_to_zero_row_block(self, schema):
        ds = CategoricalDataset(schema, [["brown", MISSING], ["brown", "broad"]])
        matrix, names = dataset_to_boolean_matrix(ds)
        size_col = names.index("size.broad")
        assert matrix[0, size_col] == 0.0

    def test_row_sums_equal_present_attributes(self, schema):
        ds = CategoricalDataset(schema, [["brown", "broad"], [MISSING, MISSING]])
        matrix, _ = dataset_to_boolean_matrix(ds)
        assert matrix.sum(axis=1).tolist() == [2.0, 0.0]


class TestSharedAttributeRestriction:
    def test_only_mutually_present_attributes(self, schema):
        a = CategoricalRecord(schema, ["brown", MISSING])
        b = CategoricalRecord(schema, ["brown", "broad"])
        items_a, items_b = restrict_to_shared_attributes(a, b)
        assert items_a == {"color.brown"}
        assert items_b == {"color.brown"}

    def test_identical_on_shared_gives_equal_sets(self, schema):
        a = CategoricalRecord(schema, ["brown", MISSING])
        b = CategoricalRecord(schema, ["brown", "broad"])
        items_a, items_b = restrict_to_shared_attributes(a, b)
        assert items_a == items_b

    def test_pairwise_dependence(self, schema):
        """The same record maps to different item sets against different
        partners -- the Section 3.1.2 time-series behaviour."""
        r = CategoricalRecord(schema, ["brown", "broad"])
        partner1 = CategoricalRecord(schema, ["white", MISSING])
        partner2 = CategoricalRecord(schema, ["white", "narrow"])
        items_vs_1, _ = restrict_to_shared_attributes(r, partner1)
        items_vs_2, _ = restrict_to_shared_attributes(r, partner2)
        assert items_vs_1 == {"color.brown"}
        assert items_vs_2 == {"color.brown", "size.broad"}

    def test_schema_mismatch_rejected(self, schema):
        other = CategoricalSchema(["x", "y"])
        a = CategoricalRecord(schema, ["brown", "broad"])
        b = CategoricalRecord(other, ["brown", "broad"])
        with pytest.raises(ValueError, match="share a schema"):
            restrict_to_shared_attributes(a, b)
