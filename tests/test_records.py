"""Tests for categorical records, schemas, and datasets."""

import pytest

from repro.data.records import (
    MISSING,
    CategoricalDataset,
    CategoricalRecord,
    CategoricalSchema,
)


@pytest.fixture
def schema():
    return CategoricalSchema(["color", "size", "shape"])


class TestSchema:
    def test_attributes_ordered(self, schema):
        assert schema.attributes == ["color", "size", "shape"]
        assert len(schema) == 3
        assert list(schema) == ["color", "size", "shape"]

    def test_index_and_contains(self, schema):
        assert schema.index("size") == 1
        assert "size" in schema
        assert "weight" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CategoricalSchema(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CategoricalSchema([])

    def test_equality_and_hash(self, schema):
        same = CategoricalSchema(["color", "size", "shape"])
        assert schema == same
        assert hash(schema) == hash(same)
        assert schema != CategoricalSchema(["color", "size"])


class TestRecord:
    def test_positional_values(self, schema):
        r = CategoricalRecord(schema, ["red", "big", "round"])
        assert r["color"] == "red"
        assert r["shape"] == "round"

    def test_mapping_values(self, schema):
        r = CategoricalRecord(schema, {"size": "small", "color": "blue"})
        assert r["size"] == "small"
        assert r["shape"] is MISSING

    def test_mapping_unknown_attribute_rejected(self, schema):
        with pytest.raises(ValueError, match="unknown attributes"):
            CategoricalRecord(schema, {"weight": 3})

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(ValueError, match="3 attributes"):
            CategoricalRecord(schema, ["red"])

    def test_missing_helpers(self, schema):
        r = CategoricalRecord(schema, ["red", MISSING, "round"])
        assert r.is_missing("size")
        assert not r.is_missing("color")
        assert r.present_attributes() == ["color", "shape"]
        assert dict(r.items()) == {"color": "red", "shape": "round"}

    def test_equality_ignores_label(self, schema):
        a = CategoricalRecord(schema, ["r", "s", "t"], label="x")
        b = CategoricalRecord(schema, ["r", "s", "t"], label="y")
        assert a == b
        assert hash(a) == hash(b)


class TestDataset:
    def test_build_from_rows_with_labels(self, schema):
        ds = CategoricalDataset(
            schema, [["r", "s", "t"], ["b", "s", "q"]], labels=["L1", "L2"]
        )
        assert len(ds) == 2
        assert ds.labels() == ["L1", "L2"]
        assert ds[0].rid == 0

    def test_build_from_attribute_names(self):
        ds = CategoricalDataset(["a", "b"], [["x", "y"]])
        assert ds.schema.attributes == ["a", "b"]

    def test_label_length_mismatch_rejected(self, schema):
        with pytest.raises(ValueError, match="labels length"):
            CategoricalDataset(schema, [["r", "s", "t"]], labels=["a", "b"])

    def test_foreign_schema_record_rejected(self, schema):
        other = CategoricalSchema(["x", "y", "z"])
        record = CategoricalRecord(other, [1, 2, 3])
        with pytest.raises(ValueError, match="schema differs"):
            CategoricalDataset(schema, [record])

    def test_domain_excludes_missing(self, schema):
        ds = CategoricalDataset(
            schema, [["r", MISSING, "t"], ["b", "s", "t"], ["r", "s", MISSING]]
        )
        assert ds.domain("color") == ["b", "r"]
        assert ds.domain("size") == ["s"]

    def test_missing_fraction(self, schema):
        ds = CategoricalDataset(schema, [["r", MISSING, "t"], [MISSING, "s", "q"]])
        assert ds.missing_fraction() == pytest.approx(2 / 6)

    def test_missing_fraction_empty(self, schema):
        assert CategoricalDataset(schema).missing_fraction() == 0.0

    def test_subset_and_slice(self, schema):
        ds = CategoricalDataset(schema, [["a", "b", "c"], ["d", "e", "f"], ["g", "h", "i"]])
        assert ds.subset([2])[0]["color"] == "g"
        sliced = ds[:2]
        assert isinstance(sliced, CategoricalDataset)
        assert len(sliced) == 2
