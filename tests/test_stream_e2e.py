"""End-to-end: stream -> drift refit -> republish -> live server hot-swap.

The acceptance path for stream mode, exercised against a real HTTP
server (reusing the atomic-swap-under-load harness from
``test_serve_http_reload``):

* records flow through :class:`StreamClusterer`, which fits a warmup
  model, publishes it, and keeps labeling arrivals;
* the stream then shifts to a disjoint vocabulary -- every arrival is
  an outlier under the warmup model -- so the drift detector must
  trigger at least one refit, republished atomically to the artifact
  the server watches;
* while that happens, every labeled batch is *also* sent to the
  running server's ``POST /assign_batch``; each response must be
  internally consistent -- all labels in a batch explained by the one
  ``model_version`` the response reports (no mixed-version batch),
  verified against locally-loaded copies of every published
  generation;
* the server ends up serving the stream's final version with zero
  reload errors.
"""

import random

from repro.core.pipeline import RockPipeline
from repro.data.transactions import Transaction
from repro.serve.engine import AssignmentEngine
from repro.serve.http import load_versioned_model, serve_in_thread
from repro.stream import DriftDetector, StreamClusterer
from tests.test_serve_http_reload import request_json, wait_for_version

A_VOCAB = [f"a{i}" for i in range(12)]
B_VOCAB = [f"b{i}" for i in range(12)]  # disjoint: pure outliers under A


def make_stream(vocab, count, seed):
    rng = random.Random(seed)
    return [Transaction(rng.sample(vocab, 4)) for _ in range(count)]


def test_drift_refit_republish_hot_swap(tmp_path):
    model_path = tmp_path / "model.json"
    drift = DriftDetector(window=40, max_outlier_rate=0.5)
    clusterer = StreamClusterer(
        RockPipeline(k=3, theta=0.3, seed=11),
        reservoir_size=80,
        warmup=100,
        batch_size=40,
        drift=drift,
        refit_mode="resume",
        publish_to=model_path,
        seed=7,
    )

    # locally-loaded copy of every published generation, keyed by version
    generations = {}
    engines = {}

    def on_refit(event):
        model, version = load_versioned_model(model_path)
        assert version == event.version
        generations[version] = model

    clusterer.on_refit = on_refit

    # phase 1: warmup on vocabulary A publishes generation 1
    warm = clusterer.process(make_stream(A_VOCAB, 100, seed=1))
    assert [event.reason for event in warm.refits] == ["warmup"]
    version_1 = clusterer.version
    assert version_1 in generations

    with serve_in_thread(model_path, poll_seconds=0.02) as handle:
        wait_for_version(handle.address, version_1)
        failures = []
        batch_versions = []

        def on_batch(points, labels, scores, version):
            status, data = request_json(
                handle.address, "POST", "/assign_batch",
                {"points": [sorted(point.items) for point in points]},
            )
            if status != 200:
                failures.append(("status", status))
                return
            served_version = data["model_version"]
            batch_versions.append(served_version)
            model = generations.get(served_version)
            if model is None:
                failures.append(("unknown version", served_version))
                return
            engine = engines.get(served_version)
            if engine is None:
                engine = engines[served_version] = AssignmentEngine(
                    model, cache_size=0
                )
            want = [int(label) for label in engine.assign_batch(points)]
            if data["labels"] != want:
                failures.append(("mixed", served_version, data["labels"], want))

        clusterer.on_batch = on_batch

        # phase 2: the distribution shifts; drift must force a refit and
        # the server must hot-swap to the republished artifact
        shifted = clusterer.process(make_stream(B_VOCAB, 200, seed=2))

        drift_refits = [
            event for event in shifted.refits
            if event.reason.startswith("drift")
        ]
        assert drift_refits, [event.reason for event in shifted.refits]
        assert "outlier_rate" in drift_refits[0].reason
        assert drift_refits[0].resumed  # resume mode carried the partition

        final = wait_for_version(handle.address, clusterer.version)
        assert final["model_age_seconds"] >= 0.0
        _, health = request_json(handle.address, "GET", "/healthz")
        assert health["reloads"] >= 1
        assert health["reload_errors"] == 0
        assert health["model_version"] == clusterer.version

    assert failures == [], failures[:5]
    # every batch was answered by a published generation; the swap is
    # visible as the responses move off generation 1
    assert batch_versions, "no batch ever reached the server"
    assert batch_versions[0] == version_1
    assert set(batch_versions) <= set(generations)
    assert len(generations) >= 2
