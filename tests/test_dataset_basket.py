"""Tests for the Section 5.3 synthetic market-basket generator."""

import pytest

from repro.datasets.synthetic_basket import (
    SyntheticBasketConfig,
    TABLE5_CLUSTER_SIZES,
    TABLE5_OUTLIERS,
    generate_synthetic_basket,
    small_synthetic_basket,
)


@pytest.fixture(scope="module")
def small():
    return small_synthetic_basket(n_clusters=4, cluster_size=100, n_outliers=20, seed=0)


class TestConfig:
    def test_defaults_match_table5(self):
        config = SyntheticBasketConfig()
        assert config.cluster_sizes == TABLE5_CLUSTER_SIZES
        assert config.n_outliers == TABLE5_OUTLIERS
        assert config.n_transactions == 114586  # the paper's total

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticBasketConfig(cluster_sizes=(10,), items_per_cluster=(10, 10))
        with pytest.raises(ValueError):
            SyntheticBasketConfig(cluster_sizes=(), items_per_cluster=())
        with pytest.raises(ValueError):
            SyntheticBasketConfig(
                cluster_sizes=(10,), items_per_cluster=(10,), overlap_fraction=1.0
            )
        with pytest.raises(ValueError):
            SyntheticBasketConfig(
                cluster_sizes=(0,), items_per_cluster=(10,)
            )


class TestGeneration:
    def test_counts_match_config(self, small):
        assert len(small.transactions) == small.config.n_transactions
        assert len(small.labels) == len(small.transactions)
        per_cluster = [small.labels.count(c) for c in range(small.config.n_clusters)]
        assert per_cluster == list(small.config.cluster_sizes)
        assert small.labels.count(-1) == small.config.n_outliers

    def test_cluster_transactions_use_cluster_items(self, small):
        for t, label in zip(small.transactions, small.labels):
            if label >= 0:
                assert t.items <= small.cluster_items[label]

    def test_outliers_draw_from_union(self, small):
        union = frozenset().union(*small.cluster_items)
        for t, label in zip(small.transactions, small.labels):
            if label == -1:
                assert t.items <= union

    def test_item_set_sizes(self, small):
        for items, expected in zip(small.cluster_items, small.config.items_per_cluster):
            assert len(items) == expected

    def test_overlap_fraction_roughly_honoured(self, small):
        for c, items in enumerate(small.cluster_items):
            others = frozenset().union(
                *(s for j, s in enumerate(small.cluster_items) if j != c)
            )
            shared = len(items & others)
            # shared items come only from the common pool
            assert shared <= round(0.45 * len(items)) + 1

    def test_exclusive_items_unique_to_cluster(self, small):
        for c, items in enumerate(small.cluster_items):
            exclusive = {i for i in items if str(i).startswith(f"c{c:02d}x")}
            for j, other in enumerate(small.cluster_items):
                if j != c:
                    assert not exclusive & other

    def test_transaction_sizes_in_band(self):
        """The paper: mean 15, '98% of transactions have sizes between
        11 and 19'."""
        basket = small_synthetic_basket(
            n_clusters=2, cluster_size=2000, n_outliers=0, items_per_cluster=25, seed=1
        )
        sizes = [len(t) for t in basket.transactions]
        mean = sum(sizes) / len(sizes)
        assert 14.3 < mean < 15.7
        in_band = sum(1 for s in sizes if 11 <= s <= 19) / len(sizes)
        assert in_band > 0.95

    def test_deterministic_for_seed(self):
        a = small_synthetic_basket(seed=7)
        b = small_synthetic_basket(seed=7)
        assert [t.items for t in a.transactions] == [t.items for t in b.transactions]
        assert a.labels == b.labels

    def test_different_seeds_differ(self):
        a = small_synthetic_basket(seed=1)
        b = small_synthetic_basket(seed=2)
        assert [t.items for t in a.transactions] != [t.items for t in b.transactions]

    def test_table5_row_shape(self, small):
        row = small.table5_row()
        assert row["transactions"][:-1] == list(small.config.cluster_sizes)
        assert row["transactions"][-1] == small.config.n_outliers
        assert row["items"][-1] == small.n_items


@pytest.mark.slow
class TestFullScale:
    def test_full_table5_instance(self):
        basket = generate_synthetic_basket(seed=0)
        assert len(basket.transactions) == 114586
        assert basket.labels.count(-1) == 5456
        # the paper reports 116 distinct items; the generator's exact
        # 60%-exclusive construction lands close (see module docstring)
        assert 100 <= basket.n_items <= 140
