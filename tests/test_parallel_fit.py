"""Parallel and fused fit kernels vs the dense and serial-blocked paths.

The parallel kernels are only admissible as pure optimisations:
identical :class:`NeighborGraph`, identical :class:`LinkTable`,
identical final clusters for every input and worker count, with
order-preserving (hence byte-deterministic) merges.  The hypothesis
properties drive randomized baskets and categorical records through
every path at tiny block/chunk sizes so each run exercises multi-block
stitching and multi-chunk merging.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import LinkTable, compute_links
from repro.core.neighbors import (
    NeighborGraph,
    SparseTransactionScorer,
    blocked_neighbor_graph,
    build_block_scorer,
    compute_neighbor_graph,
)
from repro.core.pipeline import RockPipeline
from repro.core.rock import FIT_MODES, resolve_fit_mode, rock
from repro.core.similarity import (
    JaccardSimilarity,
    MissingAwareJaccard,
    OverlapSimilarity,
)
from repro.data.records import CategoricalDataset, CategoricalRecord, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset
from repro.parallel import (
    fused_neighbor_links,
    merge_pair_counts,
    pair_link_counts,
    parallel_link_table,
    parallel_neighbor_graph,
)
from repro.parallel.pool import (
    default_workers,
    imap_chunked,
    iter_chunks,
    resolve_workers,
)

THETAS = [0.0, 0.25, 0.5, 0.75, 1.0]

item_sets = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), max_size=6),
    min_size=1,
    max_size=40,
)


def graphs_equal(a: NeighborGraph, b: NeighborGraph) -> bool:
    if a.n != b.n:
        return False
    return all(
        np.array_equal(la, lb)
        for la, lb in zip(a.neighbor_lists(), b.neighbor_lists())
    )


def tables_equal(a: LinkTable, b: LinkTable) -> bool:
    if a.n != b.n:
        return False
    return sorted(a.pairs()) == sorted(b.pairs())


def make_baskets(n: int, vocab: int = 40, seed: int = 0) -> TransactionDataset:
    rng = np.random.default_rng(seed)
    return TransactionDataset([
        Transaction(frozenset(
            map(int, rng.choice(vocab, size=rng.integers(1, 8), replace=False))
        ))
        for _ in range(n)
    ])


# -- hypothesis equivalence: every kernel, every path -------------------------


@settings(max_examples=50, deadline=None)
@given(
    sets=item_sets,
    theta=st.sampled_from(THETAS),
    block_size=st.sampled_from([1, 2, 3, 7, 64]),
    overlap=st.booleans(),
    workers=st.sampled_from([1, 3]),
)
def test_parallel_graph_equals_dense_and_blocked(
    sets, theta, block_size, overlap, workers
):
    dataset = TransactionDataset([Transaction(s) for s in sets])
    similarity = OverlapSimilarity() if overlap else JaccardSimilarity()
    dense = compute_neighbor_graph(
        dataset, theta, similarity=similarity, method="vectorized"
    )
    blocked = blocked_neighbor_graph(
        dataset, theta, similarity=similarity, block_size=block_size
    )
    parallel = parallel_neighbor_graph(
        dataset, theta, similarity=similarity, workers=workers,
        block_size=block_size, min_points=1,
    )
    assert graphs_equal(parallel, dense)
    assert graphs_equal(parallel, blocked)
    assert not parallel.has_dense


@settings(max_examples=50, deadline=None)
@given(
    sets=item_sets,
    theta=st.sampled_from(THETAS),
    block_size=st.sampled_from([1, 3, 64]),
    workers=st.sampled_from([1, 3]),
)
def test_fused_links_equal_dense_and_sparse_paths(sets, theta, block_size, workers):
    dataset = TransactionDataset([Transaction(s) for s in sets])
    dense = compute_neighbor_graph(dataset, theta, method="vectorized")
    expected_dense = compute_links(dense, method="dense")
    expected_sparse = compute_links(dense, method="sparse")
    fused = fused_neighbor_links(
        dataset, theta, workers=workers, block_size=block_size, keep_graph=True,
    )
    assert tables_equal(fused.links, expected_dense)
    assert tables_equal(fused.links, expected_sparse)
    assert graphs_equal(fused.graph, dense)
    assert np.array_equal(fused.degrees, dense.degrees())
    chunked = parallel_link_table(dense, workers=workers, chunk_size=2)
    assert tables_equal(chunked, expected_sparse)


@settings(max_examples=25, deadline=None)
@given(
    sets=item_sets,
    theta=st.sampled_from([0.25, 0.5]),
    mode=st.sampled_from(["dense", "blocked", "parallel", "fused"]),
)
def test_rock_clusters_identical_across_fit_modes(sets, theta, mode):
    dataset = TransactionDataset([Transaction(s) for s in sets])
    base = rock(dataset, k=2, theta=theta)
    alt = rock(dataset, k=2, theta=theta, fit_mode=mode, workers=2)
    assert sorted(map(sorted, alt.clusters)) == sorted(map(sorted, base.clusters))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", None]),
            st.sampled_from(["x", "y", None]),
        ),
        min_size=2,
        max_size=25,
    ),
    theta=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_parallel_graph_on_missing_aware_records(rows, theta):
    schema = CategoricalSchema(("p", "q"))
    dataset = CategoricalDataset(
        schema, [CategoricalRecord(schema, row) for row in rows]
    )
    similarity = MissingAwareJaccard()
    dense = compute_neighbor_graph(
        dataset, theta, similarity=similarity, method="vectorized"
    )
    parallel = parallel_neighbor_graph(
        dataset, theta, similarity=similarity, workers=3,
        block_size=2, min_points=1,
    )
    fused = fused_neighbor_links(
        dataset, theta, similarity=similarity, workers=3,
        block_size=2, keep_graph=True,
    )
    assert graphs_equal(parallel, dense)
    assert graphs_equal(fused.graph, dense)
    assert tables_equal(fused.links, compute_links(dense, method="sparse"))


# -- determinism: identical bytes across repeated multi-worker runs ----------


def test_workers4_runs_are_byte_identical():
    dataset = make_baskets(400)
    graphs = [
        parallel_neighbor_graph(
            dataset, 0.4, workers=4, block_size=37, min_points=1
        )
        for _ in range(2)
    ]
    first, second = (
        [lst.tobytes() for lst in g.neighbor_lists()] for g in graphs
    )
    assert first == second

    fits = [
        RockPipeline(
            k=5, theta=0.4, seed=3, fit_mode=mode, workers=4
        ).fit(dataset, label_remaining=False)
        for mode in ("parallel", "parallel", "fused", "fused")
    ]
    labels = [fit.labels.tobytes() for fit in fits]
    assert labels[0] == labels[1] == labels[2] == labels[3]


def test_fused_merge_is_submission_ordered():
    # degrees must line up with point order even when later blocks are
    # cheaper than earlier ones (completion order != submission order)
    dataset = make_baskets(300)
    serial = fused_neighbor_links(dataset, 0.4, workers=1, block_size=17)
    parallel = fused_neighbor_links(dataset, 0.4, workers=4, block_size=17)
    assert np.array_equal(serial.degrees, parallel.degrees)
    assert tables_equal(serial.links, parallel.links)


# -- pool layer ---------------------------------------------------------------


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers("auto") == default_workers()
    with pytest.raises(ValueError):
        resolve_workers(0)
    with pytest.raises(ValueError):
        resolve_workers("many")


def test_iter_chunks():
    assert list(iter_chunks(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
    assert list(iter_chunks([], 3)) == []
    with pytest.raises(ValueError):
        list(iter_chunks([1], 0))


def test_imap_chunked_serial_runs_initializer_in_process():
    state = {}
    results = list(
        imap_chunked(
            lambda x: x * state["factor"],
            [1, 2, 3],
            workers=1,
            initializer=lambda f: state.__setitem__("factor", f),
            initargs=(10,),
        )
    )
    assert results == [10, 20, 30]


def test_serve_parallel_reexports_pool_layer():
    # serve.parallel became a thin consumer; its public names survive
    from repro.parallel.pool import iter_chunks as pool_chunks
    from repro.serve.parallel import _chunks, default_workers as serve_workers

    assert _chunks is pool_chunks
    assert serve_workers() == default_workers()


# -- pair-count plumbing ------------------------------------------------------


def test_pair_link_counts_and_merge():
    lists = [np.array([1, 3, 4]), np.array([3, 4]), np.array([], dtype=np.int64)]
    codes, counts = pair_link_counts(lists, n=5)
    # pairs: (1,3), (1,4), (3,4) from the first list; (3,4) again
    assert codes.tolist() == [1 * 5 + 3, 1 * 5 + 4, 3 * 5 + 4]
    assert counts.tolist() == [1, 1, 2]

    merged = merge_pair_counts([
        (codes, counts),
        pair_link_counts([np.array([3, 4])], n=5),
    ])
    assert merged[0].tolist() == [8, 9, 19]
    assert merged[1].tolist() == [1, 1, 3]
    empty = merge_pair_counts([])
    assert empty[0].size == 0 and empty[1].size == 0


def test_link_table_from_pair_counts_round_trip():
    dataset = make_baskets(60)
    graph = compute_neighbor_graph(dataset, 0.3, method="vectorized")
    expected = compute_links(graph, method="sparse")
    codes, counts = pair_link_counts(graph.neighbor_lists(), graph.n)
    rebuilt = LinkTable.from_pair_counts(graph.n, codes, counts)
    assert tables_equal(rebuilt, expected)
    with pytest.raises(ValueError):
        LinkTable.from_pair_counts(3, np.array([2 * 3 + 1]), np.array([1]))


def test_link_table_subset_equals_subgraph_links():
    dataset = make_baskets(80, vocab=120, seed=2)
    graph = compute_neighbor_graph(dataset, 0.3, method="vectorized")
    links = compute_links(graph, method="sparse")
    kept = np.flatnonzero(graph.degrees() >= 1)
    assert len(kept) < graph.n  # the seed produces isolated points
    expected = compute_links(graph.subgraph(kept), method="sparse")
    assert tables_equal(links.subset(kept), expected)


# -- fallbacks and routing ----------------------------------------------------


def test_parallel_falls_back_to_serial_below_min_points():
    dataset = make_baskets(30)
    graph = parallel_neighbor_graph(dataset, 0.4, workers=4)  # n < min_points
    assert graphs_equal(
        graph, blocked_neighbor_graph(dataset, 0.4)
    )


def test_sparse_scorer_is_opt_in_for_parallel_paths():
    pytest.importorskip("scipy")
    dataset = make_baskets(30)
    assert isinstance(
        build_block_scorer(dataset, prefer_sparse=True), SparseTransactionScorer
    )
    assert not isinstance(
        build_block_scorer(dataset), SparseTransactionScorer
    )


@settings(max_examples=30, deadline=None)
@given(
    sets=item_sets,
    theta=st.sampled_from(THETAS),
    block_size=st.sampled_from([1, 3, 64]),
    overlap=st.booleans(),
)
def test_sparse_scorer_matches_dense_scorer(sets, theta, block_size, overlap):
    # the parallel paths default to the CSR scorer; its prefilter and
    # unsorted-product handling need their own equivalence property
    # against the forced-dense scorer: same graph and same fused links
    pytest.importorskip("scipy")
    dataset = TransactionDataset([Transaction(s) for s in sets])
    similarity = OverlapSimilarity() if overlap else JaccardSimilarity()
    dense_graph = parallel_neighbor_graph(
        dataset, theta, similarity=similarity, workers=2,
        block_size=block_size, min_points=1, prefer_sparse=False,
    )
    sparse_graph = parallel_neighbor_graph(
        dataset, theta, similarity=similarity, workers=2,
        block_size=block_size, min_points=1, prefer_sparse=True,
    )
    assert graphs_equal(sparse_graph, dense_graph)
    dense_fused = fused_neighbor_links(
        dataset, theta, similarity=similarity, workers=2,
        block_size=block_size, prefer_sparse=False,
    )
    sparse_fused = fused_neighbor_links(
        dataset, theta, similarity=similarity, workers=2,
        block_size=block_size, prefer_sparse=True,
    )
    assert tables_equal(sparse_fused.links, dense_fused.links)
    assert np.array_equal(sparse_fused.degrees, dense_fused.degrees)


def test_fused_pipeline_with_strict_pruning_falls_back():
    # min_neighbors > 1 invalidates the subset shortcut; the pipeline
    # must route to the (two-pass) parallel kernels and still agree
    dataset = make_baskets(200)
    base = RockPipeline(k=4, theta=0.4, seed=1, min_neighbors=3).fit(
        dataset, label_remaining=False
    )
    fused = RockPipeline(
        k=4, theta=0.4, seed=1, min_neighbors=3, fit_mode="fused", workers=2
    ).fit(dataset, label_remaining=False)
    assert np.array_equal(base.labels, fused.labels)


def test_fit_mode_validation():
    assert resolve_fit_mode("parallel") == ("parallel", "parallel")
    with pytest.raises(ValueError):
        resolve_fit_mode("warp")
    with pytest.raises(ValueError):
        RockPipeline(k=2, theta=0.5, fit_mode="warp")
    with pytest.raises(ValueError):
        rock(make_baskets(10), k=2, theta=0.5, fit_mode="warp")
    assert set(FIT_MODES) == {
        "auto", "dense", "blocked", "parallel", "fused", "native", "sharded",
    }


def test_model_metadata_records_fit_mode_and_workers():
    dataset = make_baskets(120)
    pipeline = RockPipeline(
        k=4, theta=0.4, seed=0, sample_size=80, fit_mode="fused", workers=2
    )
    _, model = pipeline.fit_model(dataset)
    assert model.metadata["fit_mode"] == "fused"
    assert model.metadata["workers"] == 2


def test_cli_fit_mode_and_workers(tmp_path, capsys):
    from repro.cli import main

    lines = [
        " ".join(str(x) for x in sorted(txn.items))
        for txn in make_baskets(60, vocab=20, seed=4)
    ]
    data = tmp_path / "baskets.txt"
    data.write_text("\n".join(lines) + "\n", encoding="utf-8")
    model_path = tmp_path / "model.json"
    assert main([
        "fit-model", "--input", str(data), "--format", "transactions",
        "-k", "3", "--theta", "0.4", "--model", str(model_path),
        "--fit-mode", "fused", "--workers", "2", "--seed", "0",
    ]) == 0
    capsys.readouterr()
    from repro.serve.model import RockModel

    model = RockModel.load(model_path)
    assert model.metadata["fit_mode"] == "fused"
    assert model.metadata["workers"] == 2
    with pytest.raises(SystemExit):
        main([
            "cluster", "--input", str(data), "--format", "transactions",
            "-k", "3", "--theta", "0.4", "--workers", "nope",
        ])
