"""Engine/labeler equivalence and the AssignmentEngine behaviours.

The acceptance bar for the serve subsystem is that the vectorised batch
engine is a pure optimisation: point-for-point identical to the §4.6
``ClusterLabeler`` on any input, including all-outlier batches,
duplicate points and empty labeling sets.  The property test drives
randomly generated market-basket data through both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import ClusterLabeler
from repro.core.similarity import JaccardSimilarity, SimilarityTable
from repro.data.transactions import Transaction
from repro.serve import AssignmentEngine, RockModel, ServeMetrics

F_THETA = (1 - 0.4) / (1 + 0.4)

CLUSTER_A = [Transaction({1, 2, 3}), Transaction({1, 2, 4}), Transaction({2, 3, 4})]
CLUSTER_B = [Transaction({7, 8, 9}), Transaction({7, 8, 10})]


def make_model(labeling_sets, theta=0.4, **kwargs):
    return RockModel(
        labeling_sets=labeling_sets,
        theta=theta,
        f_theta=(1 - theta) / (1 + theta),
        **kwargs,
    )


# -- the equivalence property ------------------------------------------------

item_sets = st.frozensets(st.integers(min_value=0, max_value=25), min_size=1, max_size=6)


@settings(max_examples=40, deadline=None)
@given(
    sets_a=st.lists(item_sets, min_size=1, max_size=5),
    sets_b=st.lists(item_sets, min_size=1, max_size=5),
    points=st.lists(
        st.frozensets(st.integers(min_value=0, max_value=40), max_size=8),
        min_size=1,
        max_size=30,
    ),
    theta=st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.9, 1.0]),
)
def test_engine_agrees_with_labeler_on_random_baskets(sets_a, sets_b, points, theta):
    labeling_sets = [
        [Transaction(s) for s in sets_a],
        [Transaction(s) for s in sets_b],
    ]
    batch = [Transaction(p) for p in points]
    # the lambda forces the labeler onto the scalar similarity path, so
    # this cross-validates the engine's vectorised math against an
    # independent implementation, not against itself
    labeler = ClusterLabeler(
        labeling_sets,
        theta=theta,
        similarity=lambda a, b: JaccardSimilarity()(a, b),
        f=lambda _t: (1 - theta) / (1 + theta),
    )
    assert labeler.index is None
    engine = AssignmentEngine(make_model(labeling_sets, theta=theta))
    assert engine.vectorized
    assert engine.assign_batch(batch).tolist() == labeler.assign_all(batch).tolist()


@settings(max_examples=20, deadline=None)
@given(
    points=st.lists(
        st.frozensets(st.integers(min_value=100, max_value=120), min_size=1, max_size=5),
        min_size=1,
        max_size=20,
    )
)
def test_all_outlier_batches(points):
    """Points sharing no item with any representative all label -1."""
    engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
    batch = [Transaction(p) for p in points]
    assert engine.assign_batch(batch).tolist() == [-1] * len(batch)


def test_duplicate_points_consistent_and_cached():
    metrics = ServeMetrics()
    engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]), metrics=metrics)
    point = Transaction({1, 2, 3})
    batch = [point] * 10 + [Transaction({7, 8, 9})] * 5 + [Transaction({99})] * 3
    labels = engine.assign_batch(batch)
    assert labels.tolist() == [0] * 10 + [1] * 5 + [-1] * 3
    snap = metrics.snapshot()
    # 3 distinct points scored, everything else deduplicated in-batch
    assert snap["cache"]["misses"] == 3
    # a second pass over the same points is all cache hits
    labels2 = engine.assign_batch(batch)
    assert labels2.tolist() == labels.tolist()
    assert metrics.snapshot()["cache"]["hits"] >= len(batch)


def test_empty_labeling_set_never_assigned():
    engine = AssignmentEngine(make_model([CLUSTER_A, []]))
    assert engine.assign(Transaction({1, 2, 3})) == 0
    assert engine.assign(Transaction({99})) == -1


class TestEngineBehaviours:
    def test_vectorized_flag_and_fallback_equivalence(self):
        table = SimilarityTable(
            {("p", "a1"): 0.9, ("p", "b1"): 0.3, ("q", "b1"): 0.8}
        )
        model = make_model([["a1"], ["b1"]], theta=0.5, similarity=table)
        engine = AssignmentEngine(model)
        assert not engine.vectorized
        labeler = model.labeler()
        for point in ["p", "q", "zzz"]:
            assert engine.assign(point) == labeler.assign(point)

    def test_blocked_batches_match_unblocked(self):
        engine_small = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), block_size=3, cache_size=0
        )
        engine_big = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
        batch = [Transaction({i % 5, (i * 7) % 11, i % 3}) for i in range(50)]
        assert engine_small.assign_batch(batch).tolist() == \
            engine_big.assign_batch(batch).tolist()

    def test_assign_iter_streams_in_order(self):
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
        batch = [Transaction({1, 2, 3}), Transaction({7, 8, 9}), Transaction({42})]
        assert list(engine.assign_iter(iter(batch), batch_size=2)) == [0, 1, -1]
        assert engine.assign_all(batch).tolist() == [0, 1, -1]

    def test_assign_all_sized_and_unsized_inputs_agree(self):
        """Sized inputs pre-size the label array; generators still work.

        Regression: ``np.fromiter`` was called without ``count=`` even
        for sized inputs, growing the output by repeated reallocation.
        """
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
        batch = [Transaction({1, 2, 3}), Transaction({7, 8, 9}),
                 Transaction({42})] * 7
        from_list = engine.assign_all(batch, batch_size=4)
        from_tuple = engine.assign_all(tuple(batch), batch_size=4)
        from_gen = engine.assign_all((p for p in batch), batch_size=4)
        assert from_list.tolist() == [0, 1, -1] * 7
        assert from_tuple.tolist() == from_list.tolist()
        assert from_gen.tolist() == from_list.tolist()
        assert from_list.dtype == np.int64

    def test_cache_eviction_keeps_results_correct(self):
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]), cache_size=2)
        batch = [Transaction({i, i + 1}) for i in range(20)]
        expected = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), cache_size=0
        ).assign_batch(batch)
        assert engine.assign_batch(batch).tolist() == expected.tolist()
        assert len(engine._cache) <= 2

    def test_cache_disabled(self):
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]), cache_size=0)
        labels = engine.assign_batch([Transaction({1, 2, 3})] * 4)
        assert labels.tolist() == [0] * 4
        assert engine.metrics.snapshot()["cache"]["hits"] == 0

    def test_metrics_record_outliers_and_latency(self):
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
        engine.assign_batch([Transaction({1, 2, 3}), Transaction({99})])
        snap = engine.metrics.snapshot()
        assert snap["requests"] == 1
        assert snap["points"] == 2
        assert snap["outliers"] == 1
        assert snap["outlier_rate"] == pytest.approx(0.5)
        assert snap["latency"]["assign_batch"]["count"] == 1
        assert snap["batch_sizes"]["<=8"] == 1

    def test_validation(self):
        model = make_model([CLUSTER_A])
        with pytest.raises(ValueError, match="cache_size"):
            AssignmentEngine(model, cache_size=-1)
        with pytest.raises(ValueError, match="block_size"):
            AssignmentEngine(model, block_size=0)
        engine = AssignmentEngine(model)
        with pytest.raises(ValueError, match="batch_size"):
            list(engine.assign_iter([], batch_size=0))

    def test_empty_batch(self):
        engine = AssignmentEngine(make_model([CLUSTER_A, CLUSTER_B]))
        assert engine.assign_batch([]).shape == (0,)
        assert engine.assign_all([]).shape == (0,)


class TestCacheAccounting:
    """Hit/miss counters reflect real LRU lookups only (regression).

    Previously ``cache_size=0`` reported every point as a miss, so a
    cacheless engine showed a 0% hit rate over thousands of phantom
    lookups instead of an empty cache section.
    """

    def test_cache_disabled_reports_zero_lookups(self):
        metrics = ServeMetrics()
        engine = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), cache_size=0, metrics=metrics
        )
        engine.assign_batch([Transaction({1, 2, 3})] * 7)
        snap = metrics.snapshot()["cache"]
        assert snap["hits"] == 0
        assert snap["misses"] == 0
        assert snap["lookups"] == 0
        assert snap["hit_rate"] == 0.0
        assert snap["uncacheable"] == 7

    def test_unhashable_points_count_as_uncacheable_not_misses(self):
        table = SimilarityTable(
            {("p", "a1"): 0.9}, key=lambda p: getattr(p, "name", p)
        )
        model = make_model([["a1"], ["b1"]], theta=0.5, similarity=table)
        metrics = ServeMetrics()
        engine = AssignmentEngine(model, metrics=metrics)

        class Unhashable:
            __hash__ = None
            name = "q"

        engine.assign_batch(["p", Unhashable(), Unhashable()])
        snap = metrics.snapshot()["cache"]
        assert snap["misses"] == 1  # "p" is a real lookup miss
        assert snap["uncacheable"] == 2
        assert snap["lookups"] == 1

    def test_cache_disabled_still_dedupes_within_batch(self):
        """cache_size=0 must not re-score duplicates inside one batch.

        Regression: the cacheless path used to score every occurrence,
        so a batch of 5000 copies of one point paid 5000 scorings.  The
        dedupe is in-batch only -- the LRU stays off and the metrics
        still report every occurrence as uncacheable.
        """
        metrics = ServeMetrics()
        engine = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), cache_size=0, metrics=metrics
        )
        scored_sizes = []
        original = engine._assign_uncached

        def spy(points):
            scored_sizes.append(len(points))
            return original(points)

        engine._assign_uncached = spy
        batch = [Transaction({1, 2, 3})] * 5 + [Transaction({7, 8, 9})] * 3
        labels = engine.assign_batch(batch)
        assert labels.tolist() == [0] * 5 + [1] * 3
        assert scored_sizes == [2]  # two distinct keys, scored once each
        snap = metrics.snapshot()["cache"]
        assert snap["hits"] == 0 and snap["misses"] == 0
        assert snap["uncacheable"] == 8
        assert len(engine._cache) == 0  # the LRU really stayed off

    def test_hit_rate_is_exact_with_mixed_traffic(self):
        metrics = ServeMetrics()
        engine = AssignmentEngine(
            make_model([CLUSTER_A, CLUSTER_B]), metrics=metrics
        )
        point = Transaction({1, 2, 3})
        engine.assign_batch([point])  # 1 miss
        engine.assign_batch([point, point, point])  # 3 hits
        snap = metrics.snapshot()["cache"]
        assert snap["hits"] == 3
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.75)


def test_engine_matches_labeler_on_large_mixed_batch():
    """Deterministic large-batch spot check with duplicates and outliers."""
    rng = np.random.default_rng(0)
    labeling_sets = [
        [Transaction(set(rng.choice(20, size=4, replace=False))) for _ in range(6)],
        [Transaction(set(rng.choice(np.arange(20, 40), size=4, replace=False)))
         for _ in range(6)],
    ]
    points = []
    for _ in range(300):
        kind = rng.integers(3)
        universe = [np.arange(20), np.arange(20, 40), np.arange(100, 120)][kind]
        points.append(Transaction(set(rng.choice(universe, size=3, replace=False))))
    points.extend(points[:50])  # duplicates
    labeler = ClusterLabeler(labeling_sets, theta=0.3)
    engine = AssignmentEngine(make_model(labeling_sets, theta=0.3))
    assert engine.assign_batch(points).tolist() == labeler.assign_all(points).tolist()


class TestCacheThreadSafety:
    """The HTTP server shares one engine across executor threads."""

    def test_concurrent_hammer_is_correct_and_uncorrupted(self):
        import threading

        rng = np.random.default_rng(3)
        labeling_sets = [
            [Transaction(set(rng.choice(20, size=4, replace=False)))
             for _ in range(5)],
            [Transaction(set(rng.choice(np.arange(20, 40), size=4,
                                        replace=False))) for _ in range(5)],
        ]
        universe = [np.arange(20), np.arange(20, 40), np.arange(100, 120)]
        points = [
            Transaction(set(rng.choice(universe[rng.integers(3)], size=3,
                                       replace=False)))
            for _ in range(40)
        ]
        labeler = ClusterLabeler(labeling_sets, theta=0.3)
        expected = labeler.assign_all(points).tolist()
        # cache far smaller than the working set: constant concurrent
        # eviction, the worst case for an unlocked OrderedDict
        engine = AssignmentEngine(make_model(labeling_sets, theta=0.3),
                                  cache_size=8)
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            local = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(150):
                i = int(local.integers(len(points)))
                if local.integers(2):
                    got = engine.assign(points[i])
                    want = expected[i]
                    if got != want:
                        errors.append((i, got, want))
                else:
                    idx = local.integers(len(points), size=4).tolist()
                    got = engine.assign_batch([points[j] for j in idx])
                    for j, g in zip(idx, got.tolist()):
                        if g != expected[j]:
                            errors.append((j, g, expected[j]))

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == [], errors[:10]
        snap = engine.metrics.snapshot()
        # accounting stayed consistent under contention
        cache = snap["cache"]
        assert cache["lookups"] == cache["hits"] + cache["misses"]
        # duplicates inside one batch share a lookup, so <= not ==
        assert cache["lookups"] <= snap["points"]
        assert cache["lookups"] > 0
        assert len(engine._cache) <= 8
