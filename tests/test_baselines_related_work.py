"""Tests for the Section 2 related-work baselines: DBSCAN and [HKKM97]."""

from itertools import combinations

import numpy as np
import pytest

from repro.baselines.apriori import frequent_itemsets, rule_confidences
from repro.baselines.dbscan import dbscan_cluster, dbscan_graph
from repro.baselines.itemclustering import (
    Hyperedge,
    build_hyperedges,
    item_cluster_transactions,
    partition_items,
    score_transaction,
)
from repro.core.neighbors import NeighborGraph
from repro.data.transactions import Transaction, TransactionDataset


def figure_1_dataset():
    big = [frozenset(c) for c in combinations([1, 2, 3, 4, 5], 3)]
    small = [frozenset(c) for c in combinations([1, 2, 6, 7], 3)]
    ds = TransactionDataset([Transaction(t) for t in big + small])
    index = {t.items: i for i, t in enumerate(ds)}
    return ds, index


class TestApriori:
    @pytest.fixture
    def rows(self):
        return [
            {1, 2, 3}, {1, 2, 3}, {1, 2}, {2, 3}, {1, 4}, {4, 5}, {4, 5},
        ]

    def test_singleton_supports(self, rows):
        supports = frequent_itemsets(rows, 2)
        assert supports[frozenset({1})] == 4
        assert supports[frozenset({4})] == 3
        assert frozenset({5}) in supports

    def test_pair_and_triple_supports(self, rows):
        supports = frequent_itemsets(rows, 2)
        assert supports[frozenset({1, 2})] == 3
        assert supports[frozenset({1, 2, 3})] == 2
        assert supports[frozenset({4, 5})] == 2
        assert frozenset({1, 4}) not in supports  # support 1

    def test_antimonotone(self, rows):
        supports = frequent_itemsets(rows, 2)
        for itemset, count in supports.items():
            for item in itemset:
                if len(itemset) > 1:
                    assert supports[itemset - {item}] >= count

    def test_max_size_cap(self, rows):
        supports = frequent_itemsets(rows, 2, max_size=2)
        assert all(len(s) <= 2 for s in supports)

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            frequent_itemsets([{1}], 0)

    def test_rule_confidences(self, rows):
        supports = frequent_itemsets(rows, 2)
        confidences = rule_confidences(frozenset({1, 2}), supports)
        # {1}->{2}: 3/4, {2}->{1}: 3/4
        assert sorted(confidences) == [pytest.approx(0.75), pytest.approx(0.75)]

    def test_rule_confidences_need_pairs(self, rows):
        supports = frequent_itemsets(rows, 2)
        with pytest.raises(ValueError):
            rule_confidences(frozenset({1}), supports)

    def test_transactions_dataset_accepted(self):
        ds = TransactionDataset([{1, 2}, {1, 2}, {3}])
        supports = frequent_itemsets(ds, 2)
        assert supports[frozenset({1, 2})] == 2


class TestHypergraphClustering:
    def test_hyperedges_have_weights_in_unit_interval(self):
        ds, _ = figure_1_dataset()
        edges = build_hyperedges(ds, min_support_count=2)
        assert edges
        for edge in edges:
            assert len(edge.items) >= 2
            assert 0.0 < edge.weight <= 1.0

    def test_paper_section2_item_clusters(self):
        """'the hypergraph partitioning algorithm generates two item
        clusters of which one is {7}' -- reproduced with the min-cut
        strategy."""
        ds, _ = figure_1_dataset()
        result = item_cluster_transactions(ds, k=2, min_support_count=2)
        assert [7] in result.item_clusters

    def test_paper_section2_transaction_confusion(self):
        """'this results in transactions {1,2,6} and {3,4,5} being
        assigned to the same cluster' -- the critique that motivates
        links over item clustering."""
        ds, index = figure_1_dataset()
        result = item_cluster_transactions(ds, k=2, min_support_count=2)
        labels = result.labels()
        assert (
            labels[index[frozenset({1, 2, 6})]]
            == labels[index[frozenset({3, 4, 5})]]
        )

    def test_rock_does_not_confuse_those_transactions(self):
        from repro.core import rock

        ds, index = figure_1_dataset()
        result = rock(ds, k=4, theta=0.5)
        labels = result.labels()
        assert (
            labels[index[frozenset({1, 2, 6})]]
            != labels[index[frozenset({3, 4, 5})]]
        )

    def test_agglomerate_strategy_also_partitions(self):
        ds, _ = figure_1_dataset()
        result = item_cluster_transactions(
            ds, k=2, min_support_count=2, strategy="agglomerate"
        )
        assert len(result.item_clusters) == 2

    def test_scores(self):
        scores = score_transaction(
            Transaction({1, 2, 6}), [[1, 2, 3, 4, 5, 6], [7]]
        )
        assert scores.tolist() == [pytest.approx(0.5), 0.0]

    def test_unmatched_transactions_unassigned(self):
        ds = TransactionDataset([{1, 2}, {1, 2}, {99}])
        result = item_cluster_transactions(ds, k=1, min_support_count=2)
        assert result.labels()[2] == -1

    def test_validation(self):
        ds, _ = figure_1_dataset()
        with pytest.raises(ValueError, match="no hyperedges"):
            item_cluster_transactions(ds, k=2, min_support_count=99)
        with pytest.raises(ValueError):
            partition_items([Hyperedge(frozenset({1, 2}), 0.5)], 0)
        with pytest.raises(ValueError, match="strategy"):
            partition_items([Hyperedge(frozenset({1, 2}), 0.5)], 1, strategy="x")

    def test_disconnected_hypergraph_splits_into_components(self):
        edges = [
            Hyperedge(frozenset({1, 2}), 0.9),
            Hyperedge(frozenset({8, 9}), 0.9),
        ]
        groups = partition_items(edges, 2)
        assert sorted(map(tuple, groups)) == [(1, 2), (8, 9)]


class TestDbscan:
    def graph_from_edges(self, n, edges):
        adj = np.zeros((n, n), dtype=bool)
        for i, j in edges:
            adj[i, j] = adj[j, i] = True
        return NeighborGraph(adj)

    def test_two_dense_blobs(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4},
             {7, 8, 9}, {7, 8, 10}, {7, 9, 10}, {8, 9, 10}]
        )
        result = dbscan_cluster(ds, theta=0.4, min_points=2)
        assert sorted(map(sorted, result.clusters)) == [
            [0, 1, 2, 3], [4, 5, 6, 7]
        ]
        assert result.noise == []

    def test_sparse_points_are_noise(self):
        ds = TransactionDataset(
            [{1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}, {50, 51, 52}]
        )
        result = dbscan_cluster(ds, theta=0.4, min_points=2)
        assert result.noise == [4]
        assert result.labels()[4] == -1

    def test_border_points_do_not_expand(self):
        # chain: 0-1-2-3-4 with min_points=2: only 1,2,3 are core; 0 and
        # 4 are border points attached to the single cluster
        g = self.graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        result = dbscan_graph(g, min_points=2)
        assert result.clusters == [[0, 1, 2, 3, 4]]
        assert result.core_points == [1, 2, 3]

    def test_bridge_point_chains_clusters(self):
        """The paper's Section 2 concern: a dense bridge merges two
        clusters that are not well-separated."""
        edges = []
        # two triangles bridged through point 3
        edges += [(0, 1), (1, 2), (0, 2)]
        edges += [(4, 5), (5, 6), (4, 6)]
        edges += [(2, 3), (3, 4)]
        g = self.graph_from_edges(7, edges)
        result = dbscan_graph(g, min_points=2)
        assert len(result.clusters) == 1  # everything chained together

    def test_min_points_validation(self):
        g = self.graph_from_edges(2, [])
        with pytest.raises(ValueError):
            dbscan_graph(g, min_points=0)

    def test_deterministic(self):
        ds = TransactionDataset([{1, 2, 3}, {1, 2, 4}, {2, 3, 4}] * 3)
        a = dbscan_cluster(ds, theta=0.4, min_points=2)
        b = dbscan_cluster(ds, theta=0.4, min_points=2)
        assert a.clusters == b.clusters
