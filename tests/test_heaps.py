"""Tests for the addressable max-heap substrate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heaps import AddressableMaxHeap, build_heap


class TestBasics:
    def test_empty_heap(self):
        heap = AddressableMaxHeap()
        assert len(heap) == 0
        assert not heap
        assert "x" not in heap

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().peek()

    def test_insert_and_peek(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.insert("b", 3.0)
        heap.insert("c", 2.0)
        assert heap.peek() == ("b", 3.0)
        assert len(heap) == 3

    def test_pop_returns_descending_keys(self):
        heap = build_heap([("a", 5.0), ("b", 1.0), ("c", 9.0), ("d", 3.0)])
        popped = [heap.pop() for _ in range(4)]
        assert popped == [("c", 9.0), ("a", 5.0), ("d", 3.0), ("b", 1.0)]
        assert len(heap) == 0

    def test_duplicate_insert_rejected(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        with pytest.raises(KeyError):
            heap.insert("a", 2.0)

    def test_nan_key_rejected(self):
        heap = AddressableMaxHeap()
        with pytest.raises(ValueError):
            heap.insert("a", float("nan"))
        heap.insert("b", 1.0)
        with pytest.raises(ValueError):
            heap.update("b", float("nan"))

    def test_contains_and_key_of(self):
        heap = AddressableMaxHeap()
        heap.insert("a", 7.0)
        assert "a" in heap
        assert heap.key_of("a") == 7.0
        with pytest.raises(KeyError):
            heap.key_of("zzz")

    def test_infinite_keys_supported(self):
        heap = AddressableMaxHeap()
        heap.insert("low", float("-inf"))
        heap.insert("high", float("inf"))
        heap.insert("mid", 0.0)
        assert heap.pop()[0] == "high"
        assert heap.pop()[0] == "mid"
        assert heap.pop()[0] == "low"


class TestUpdateDelete:
    def test_update_increases_key(self):
        heap = build_heap([("a", 1.0), ("b", 2.0), ("c", 3.0)])
        heap.update("a", 10.0)
        assert heap.peek() == ("a", 10.0)

    def test_update_decreases_key(self):
        heap = build_heap([("a", 1.0), ("b", 2.0), ("c", 3.0)])
        heap.update("c", 0.0)
        assert heap.peek() == ("b", 2.0)
        assert heap.key_of("c") == 0.0

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().update("ghost", 1.0)

    def test_insert_or_update(self):
        heap = AddressableMaxHeap()
        heap.insert_or_update("a", 1.0)
        heap.insert_or_update("a", 5.0)
        assert len(heap) == 1
        assert heap.peek() == ("a", 5.0)

    def test_delete_root(self):
        heap = build_heap([("a", 3.0), ("b", 2.0), ("c", 1.0)])
        heap.delete("a")
        assert heap.peek() == ("b", 2.0)
        assert "a" not in heap

    def test_delete_leaf(self):
        heap = build_heap([("a", 3.0), ("b", 2.0), ("c", 1.0)])
        heap.delete("c")
        assert len(heap) == 2
        assert heap.pop() == ("a", 3.0)
        assert heap.pop() == ("b", 2.0)

    def test_delete_middle_restores_invariant(self):
        heap = build_heap([(i, float(k)) for i, k in enumerate([9, 5, 8, 1, 4, 7, 6])])
        heap.delete(1)  # key 5.0, an internal node
        heap.check_invariant()
        keys = [heap.pop()[1] for _ in range(len(heap))]
        assert keys == sorted(keys, reverse=True)

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().delete("ghost")


class TestDeterminism:
    def test_fifo_among_equal_keys(self):
        heap = AddressableMaxHeap()
        for name in ["first", "second", "third"]:
            heap.insert(name, 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"
        assert heap.pop()[0] == "third"

    def test_update_refreshes_no_tie_order_surprise(self):
        # an updated key competes by its original insertion sequence
        heap = AddressableMaxHeap()
        heap.insert("a", 1.0)
        heap.insert("b", 2.0)
        heap.update("a", 2.0)
        assert heap.pop()[0] == "a"  # inserted before b


class TestFromPairs:
    def test_bulk_build_matches_sequential(self):
        pairs = [(i, float((i * 7) % 5)) for i in range(30)]
        bulk = AddressableMaxHeap.from_pairs(pairs)
        seq = build_heap(pairs)
        bulk.check_invariant()
        while bulk:
            assert bulk.pop() == seq.pop()

    def test_tie_order_follows_pair_order(self):
        bulk = AddressableMaxHeap.from_pairs([("a", 1.0), ("b", 1.0), ("c", 1.0)])
        assert [bulk.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_duplicates_rejected(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap.from_pairs([("a", 1.0), ("a", 2.0)])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            AddressableMaxHeap.from_pairs([("a", float("nan"))])

    def test_supports_further_mutation(self):
        heap = AddressableMaxHeap.from_pairs([("a", 1.0), ("b", 3.0)])
        heap.insert("c", 2.0)
        heap.update("a", 9.0)
        heap.delete("b")
        heap.check_invariant()
        assert heap.pop() == ("a", 9.0)
        assert heap.pop() == ("c", 2.0)

    @settings(max_examples=100)
    @given(st.lists(st.floats(-50, 50), max_size=40))
    def test_bulk_equals_sequential_popping(self, keys):
        pairs = [(i, k) for i, k in enumerate(keys)]
        bulk = AddressableMaxHeap.from_pairs(pairs)
        seq = build_heap(pairs)
        bulk.check_invariant()
        assert [bulk.pop() for _ in range(len(keys))] == [
            seq.pop() for _ in range(len(keys))
        ]


@settings(max_examples=200)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=60))
def test_heapsort_matches_sorted(keys):
    heap = AddressableMaxHeap()
    for i, key in enumerate(keys):
        heap.insert(i, key)
    heap.check_invariant()
    popped = [heap.pop()[1] for _ in range(len(keys))]
    assert popped == sorted((float(k) for k in keys), reverse=True)


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ins", "del", "upd", "pop"]),
            st.integers(0, 20),
            st.floats(-100, 100),
        ),
        max_size=80,
    )
)
def test_random_operations_keep_invariant(ops):
    heap = AddressableMaxHeap()
    model: dict[int, float] = {}
    seq = 0
    order: dict[int, int] = {}
    for op, entry, key in ops:
        if op == "ins":
            if entry in model:
                continue
            heap.insert(entry, key)
            model[entry] = float(key)
            order[entry] = seq
            seq += 1
        elif op == "del":
            if entry not in model:
                continue
            heap.delete(entry)
            del model[entry]
        elif op == "upd":
            if entry not in model:
                continue
            heap.update(entry, key)
            model[entry] = float(key)
        elif op == "pop":
            if not model:
                continue
            popped_entry, popped_key = heap.pop()
            best = max(model.items(), key=lambda kv: (kv[1], -order[kv[0]]))
            assert math.isclose(popped_key, best[1], rel_tol=0, abs_tol=0)
            assert model[popped_entry] == popped_key
            del model[popped_entry]
        heap.check_invariant()
    assert len(heap) == len(model)
    for entry, key in model.items():
        assert heap.key_of(entry) == key
