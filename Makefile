PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-fast lint bench bench-serve example-serve

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q

test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q -m "not slow"

lint:
	ruff check src tests

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_serve_throughput.py --benchmark-disable -s

example-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/serve_assign.py
