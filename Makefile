PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-fast lint bench bench-smoke bench-assign bench-serve bench-serve-http bench-stream bench-shard clean-spill example-fast-assign example-serve example-serve-http example-shard example-stream

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q

test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/ -q -m "not slow"

lint:
	ruff check src tests benchmarks examples

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# tiny-n proofs that the blocked and parallel (workers=2) fit paths
# work and equal the dense path, that the fast merge engine matches
# the reference loop byte for byte, that a traced fit leaves a
# complete RunManifest, that the HTTP server answers + coalesces
# under concurrent load, that stream mode's warmup -> drift refit
# -> republish chain runs end to end, that the sharded out-of-core
# fit is merge-identical to fused, and that the pruned/native assign
# tiers equal the dense matmul -- fast enough for CI
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_blocked_fit.py benchmarks/bench_parallel_fit.py \
		benchmarks/bench_merge_phase.py benchmarks/bench_trace_fit.py \
		benchmarks/bench_serve_http.py benchmarks/bench_stream.py \
		benchmarks/bench_shard_fit.py benchmarks/bench_serve_throughput.py \
		-k smoke --benchmark-disable -s

# the assignment-tier comparison: dense matmul vs inverted-index
# pruning vs the native fused kernel across a (clusters x vocab) grid
bench-assign:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_serve_throughput.py::test_assign_tiers \
		benchmarks/bench_serve_http.py::test_serve_http_assign_backends \
		--benchmark-disable -s

# the full sharded-fit bench: 30k overhead/RSS comparison plus the
# 120k RLIMIT_AS reach demonstration (slow; a few minutes)
bench-shard:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_shard_fit.py::test_shard_fit_scale \
		--benchmark-disable -s -m slow

# sharded fits spill per-unit npz checkpoints under a run directory;
# interrupted runs left behind with --spill-dir land here by default
clean-spill:
	rm -rf .rock-spill bench-shard-* /tmp/bench-shard-* 2>/dev/null || true

bench-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_serve_throughput.py --benchmark-disable -s

# the full load comparison: coalescing vs batch_max=1 at several
# concurrency levels (not CI -- throughput assertions want quiet iron)
bench-serve-http:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_serve_http.py::test_serve_http_load \
		--benchmark-disable -s

# the full stream bench: label throughput + refit/republish latency,
# resume vs scratch on the identical shifted stream (not CI)
bench-stream:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_stream.py::test_stream_load \
		--benchmark-disable -s

example-stream:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/stream_cluster.py

example-fast-assign:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/fast_assign.py

example-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/serve_assign.py

example-serve-http:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/serve_http.py

example-shard:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/shard_fit.py
