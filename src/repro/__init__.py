"""repro -- a from-scratch reproduction of ROCK (Guha, Rastogi, Shim; ICDE 1999).

ROCK clusters data with boolean and categorical attributes using
*links* -- common-neighbor counts -- instead of distances.  This package
provides:

* :mod:`repro.core` -- the ROCK algorithm and all of its substrates;
* :mod:`repro.data` -- transaction / categorical-record / time-series
  data models;
* :mod:`repro.datasets` -- the paper's synthetic market-basket
  generator and generative replicas of its three real-life data sets;
* :mod:`repro.baselines` -- the traditional clustering algorithms the
  paper compares against (centroid-based, MST/single-link,
  group-average hierarchical clustering, plus a k-modes extension);
* :mod:`repro.eval` -- clustering quality metrics and the cluster
  characterisation used to regenerate the paper's tables;
* :mod:`repro.serve` -- persisted :class:`RockModel` artifacts and the
  high-throughput assignment engine/service (fit once, serve many).

Quickstart::

    from repro import RockPipeline, Transaction

    points = [Transaction(t) for t in [{1, 2, 3}, {1, 2, 4}, {5, 6}, {5, 7}]]
    result = RockPipeline(k=2, theta=0.3).fit(points)
    print(result.clusters)
"""

from repro.core import (
    ClusterLabeler,
    Dendrogram,
    JaccardSimilarity,
    LinkTable,
    MissingAwareJaccard,
    NeighborGraph,
    OverlapSimilarity,
    PipelineResult,
    RockPipeline,
    RockResult,
    SimilarityTable,
    blocked_neighbor_graph,
    cluster_with_links,
    compute_links,
    compute_neighbor_graph,
    criterion_value,
    default_f,
    goodness,
    qrock,
    rock,
)
from repro.estimator import RockClusterer
from repro.serve import (
    AssignmentEngine,
    ClusteringService,
    RockModel,
    ServeMetrics,
)
from repro.data import (
    CategoricalDataset,
    CategoricalRecord,
    CategoricalSchema,
    TimeSeries,
    Transaction,
    TransactionDataset,
)

__version__ = "1.0.0"

__all__ = [
    "AssignmentEngine",
    "CategoricalDataset",
    "ClusteringService",
    "RockModel",
    "ServeMetrics",
    "Dendrogram",
    "qrock",
    "CategoricalRecord",
    "CategoricalSchema",
    "ClusterLabeler",
    "JaccardSimilarity",
    "LinkTable",
    "MissingAwareJaccard",
    "NeighborGraph",
    "OverlapSimilarity",
    "PipelineResult",
    "RockPipeline",
    "RockClusterer",
    "RockResult",
    "SimilarityTable",
    "TimeSeries",
    "Transaction",
    "TransactionDataset",
    "blocked_neighbor_graph",
    "cluster_with_links",
    "compute_links",
    "compute_neighbor_graph",
    "criterion_value",
    "default_f",
    "goodness",
    "rock",
    "__version__",
]
