"""Deterministic shard schedules for the coordinator.

Two unit families make up a sharded fit:

* **block units** (``block-<i>``): contiguous row ranges of the store,
  each scored by the sharded fused kernel in a worker process;
* **component units** (``comps-<j>``): contiguous chunks of connected
  components, each agglomerated into merge streams by a worker.

Both schedules are pure functions of the problem (n, block size,
component costs) and never of the worker count, so a run directory
written under ``workers=4`` resumes cleanly under ``workers=1`` and
the stitched result is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.neighbors import block_tasks, worker_block_size

__all__ = ["ShardPlan", "component_chunks", "plan_shards"]

# fixed ceiling on component units: fine enough that retries and resume
# lose little work, coarse enough that dispatch overhead stays amortised
MAX_COMPONENT_UNITS = 64


@dataclass(frozen=True)
class ShardPlan:
    """The block schedule for one sharded fit."""

    n: int
    block_rows: int
    blocks: list[tuple[int, int]] = field(repr=False)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def block_units(self) -> list[tuple[str, tuple[int, int]]]:
        return [
            (f"block-{index:05d}", span)
            for index, span in enumerate(self.blocks)
        ]


def plan_shards(
    n: int,
    block_rows: int | None = None,
    workers: int = 1,
    memory_budget: int | None = None,
) -> ShardPlan:
    """Resolve the row-block schedule.

    An explicit ``block_rows`` wins; otherwise the per-worker block
    size of the parallel kernels (budget-aware, floor 16) is reused so
    the sharded scorer touches the same-shaped slices the fused path
    would.  With no explicit budget either, the host-aware default of
    :func:`repro.core.neighbors.resolve_memory_budget` applies.
    """
    if block_rows is None:
        from repro.core.neighbors import resolve_memory_budget

        block_rows = worker_block_size(
            n, max(workers, 1), resolve_memory_budget(memory_budget)
        )
    if block_rows < 1:
        raise ValueError("block_rows must be >= 1")
    return ShardPlan(n=n, block_rows=int(block_rows), blocks=block_tasks(n, block_rows))


def component_chunks(
    costs: np.ndarray, max_units: int = MAX_COMPONENT_UNITS
) -> list[tuple[int, int]]:
    """Chunk components ``0..len(costs)-1`` into contiguous cost-balanced units.

    ``costs`` is a per-component work estimate (pair counts).  Chunks
    are contiguous in component order -- components are already ordered
    by smallest member id, and contiguity keeps the spill layout
    independent of everything but the component partition itself.
    Returns ``(start, stop)`` component ranges.
    """
    n_comps = int(len(costs))
    if n_comps == 0:
        return []
    n_units = min(int(max_units), n_comps)
    weights = np.maximum(np.asarray(costs, dtype=np.float64), 1.0)
    target = float(weights.sum()) / n_units
    chunks: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    for index in range(n_comps):
        acc += float(weights[index])
        if acc >= target and len(chunks) < n_units - 1 and index + 1 < n_comps:
            chunks.append((start, index + 1))
            start = index + 1
            acc = 0.0
    chunks.append((start, n_comps))
    return chunks
