"""Crash-safe run directories: atomic unit spills, resume, bounded retries.

A sharded fit's run directory (the ``spill_dir``) holds::

    run.json            fingerprint of the fit configuration + store
    store/              the encoded transaction store (when owned)
    <unit>.npz          one completed unit's spilled arrays
    <unit>.done         atomic done-marker (written after the npz)

Every unit publish is tmp-write + ``os.replace``, and the marker is
written only after the spill, so a unit either exists completely or
not at all -- a coordinator killed mid-run restarts, matches the
fingerprint in ``run.json``, and skips every marked unit.  A changed
fingerprint (different data, theta, block size, ...) wipes the stale
units instead of resuming into a lie.

Worker execution runs through :class:`ShardExecutor`: a
``ProcessPoolExecutor`` backend (chosen over ``multiprocessing.Pool``
because a SIGKILLed pool worker hangs ``imap`` forever, while the
executor surfaces ``BrokenProcessPool``).  A broken pool is rebuilt
and the not-yet-done units resubmitted up to ``max_retries`` times;
after that the survivors run serially *in the coordinator* with a
``RuntimeWarning`` -- same degrade taxonomy as the native kernels'
fallback, the fit still completes.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import signal
import warnings
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "RunDirectory",
    "ShardExecutor",
    "maybe_kill_for_test",
]

RUN_FORMAT = "rock-shard-run"
RUN_VERSION = 1

# failure-injection hook for the kill/retry/resume tests: when a unit
# named by REPRO_SHARD_KILL_UNIT starts (optionally "name:K" to die on
# the first K attempts), the executing process SIGKILLs itself after
# recording the attempt in a sidecar file.  Subsequent attempts proceed.
KILL_ENV = "REPRO_SHARD_KILL_UNIT"


def maybe_kill_for_test(unit: str, root: Path) -> None:
    spec = os.environ.get(KILL_ENV)
    if not spec:
        return
    target, _, count = spec.partition(":")
    if target != unit:
        return
    kills = int(count) if count else 1
    sidecar = root / f"{unit}.killed"
    attempts = int(sidecar.read_text()) if sidecar.exists() else 0
    if attempts >= kills:
        return
    sidecar.write_text(str(attempts + 1))
    os.kill(os.getpid(), signal.SIGKILL)


class RunDirectory:
    """Atomic spill/marker bookkeeping under one run root."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- fingerprint -----------------------------------------------------

    def begin(self, fingerprint: dict[str, Any]) -> bool:
        """Adopt or reset the directory; returns True when resuming.

        A matching ``run.json`` keeps every completed unit; a missing
        or different one clears stale units and rewrites the
        fingerprint.
        """
        run_path = self.root / "run.json"
        record = {
            "format": RUN_FORMAT,
            "version": RUN_VERSION,
            "fingerprint": fingerprint,
        }
        if run_path.is_file():
            try:
                existing = json.loads(run_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                existing = None
            if existing == record:
                return True
        self.clear_units()
        self._publish_text(run_path, json.dumps(record, indent=2) + "\n")
        return False

    def clear_units(self) -> None:
        for path in self.root.iterdir():
            if path.suffix in (".npz", ".done", ".tmp", ".killed"):
                path.unlink()

    # -- units -----------------------------------------------------------

    def unit_done(self, unit: str) -> bool:
        return (self.root / f"{unit}.done").is_file() and (
            self.root / f"{unit}.npz"
        ).is_file()

    def done_units(self, units: Iterable[str]) -> list[str]:
        return [unit for unit in units if self.unit_done(unit)]

    def publish_unit(self, unit: str, arrays: dict[str, np.ndarray]) -> None:
        """Spill one unit atomically: npz via tmp+replace, then marker."""
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        npz_path = self.root / f"{unit}.npz"
        tmp = npz_path.with_suffix(".npz.tmp")
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, npz_path)
        self._publish_text(self.root / f"{unit}.done", "done\n")

    def load_unit(self, unit: str) -> dict[str, np.ndarray]:
        with np.load(self.root / f"{unit}.npz") as payload:
            return {key: payload[key] for key in payload.files}

    def _publish_text(self, path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


class ShardExecutor:
    """Bounded-retry execution of spill-publishing unit functions.

    ``task_fn(unit_name, payload)`` must be a module-level callable
    that performs the work, publishes the unit spill itself, and
    returns a small info dict.  The executor guarantees every unit in
    ``units`` is done (marker present) when :meth:`run` returns, no
    matter how many workers died on the way.
    """

    def __init__(
        self,
        run_dir: RunDirectory,
        workers: int,
        max_retries: int = 2,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> None:
        self.run_dir = run_dir
        self.workers = max(int(workers), 1)
        self.max_retries = max(int(max_retries), 0)
        self.initializer = initializer
        self.initargs = initargs
        self.retries = 0
        self.degraded = False

    def run(
        self,
        units: list[tuple[str, Any]],
        task_fn: Callable[..., dict[str, Any]],
        on_result: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> None:
        pending = [
            (name, payload)
            for name, payload in units
            if not self.run_dir.unit_done(name)
        ]
        if not pending:
            return
        if self.workers <= 1:
            self._run_serial(pending, task_fn, on_result)
            return
        attempts = 0
        while pending:
            try:
                pending = self._run_pool(pending, task_fn, on_result)
            except BrokenProcessPool:
                pending = [
                    (name, payload)
                    for name, payload in pending
                    if not self.run_dir.unit_done(name)
                ]
                attempts += 1
                self.retries = attempts
                if attempts > self.max_retries:
                    self.degraded = True
                    warnings.warn(
                        f"shard workers died {attempts} times; running the "
                        f"remaining {len(pending)} unit(s) in the "
                        "coordinator process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._run_serial(pending, task_fn, on_result)
                    return

    def _run_serial(
        self,
        pending: list[tuple[str, Any]],
        task_fn: Callable[..., dict[str, Any]],
        on_result: Callable[[str, dict[str, Any]], None] | None,
    ) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for name, payload in pending:
            info = task_fn(name, payload)
            if on_result is not None:
                on_result(name, info)

    def _run_pool(
        self,
        pending: list[tuple[str, Any]],
        task_fn: Callable[..., dict[str, Any]],
        on_result: Callable[[str, dict[str, Any]], None] | None,
    ) -> list[tuple[str, Any]]:
        """One pool generation; raises BrokenProcessPool on worker death."""
        remaining = {name: payload for name, payload in pending}
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            futures = {
                pool.submit(task_fn, name, payload): name
                for name, payload in pending
            }
            open_futures = set(futures)
            while open_futures:
                finished, open_futures = wait(
                    open_futures, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    name = futures[future]
                    info = future.result()  # BrokenProcessPool propagates
                    remaining.pop(name, None)
                    if on_result is not None:
                        on_result(name, info)
        return [(name, payload) for name, payload in remaining.items()]
