"""Out-of-core sharded fit: coordinator/worker runtime over a mmap store.

PR 5 proved the merge loop decomposes *exactly* by link-graph connected
component; this package pushes that decomposition upstream into the
neighbor/link phase so a fit can run at n where even the fused path's
in-RAM structures do not fit:

* :mod:`repro.shard.store` -- transactions encoded once into an on-disk
  int32 CSR (``items.i32`` + ``indptr.i64`` + checksummed ``store.json``)
  that workers open via ``np.memmap``; the pool payload is a *path*,
  not a pickled matrix.
* :mod:`repro.shard.planner` -- deterministic unit schedules: row
  blocks for the sharded fused kernel, cost-balanced component chunks
  for the merge phase.  Unit layout is independent of the worker count
  so a run directory resumes under a different ``workers`` setting.
* :mod:`repro.shard.checkpoint` -- crash-safe run directories: every
  completed unit is an atomic ``.npz`` spill plus done-marker, a
  fingerprinted ``run.json`` decides resume-vs-restart, and a bounded
  retry loop survives SIGKILLed workers (degrading to in-coordinator
  execution with a warning once retries are exhausted).
* :mod:`repro.shard.coordinator` -- drives the phases: sharded scoring
  blocks stream edges into a union-find, per-component merge streams
  reuse the PR 5 engine, and the k-way replay stitches one
  byte-identical :class:`~repro.core.rock.RockResult`.
"""

from repro.shard.checkpoint import RunDirectory, ShardExecutor
from repro.shard.coordinator import ShardFitResult, shard_fit, shard_supported
from repro.shard.planner import ShardPlan, plan_shards
from repro.shard.store import StoreIntegrityError, StoreScorer, TransactionStore

__all__ = [
    "RunDirectory",
    "ShardExecutor",
    "ShardFitResult",
    "ShardPlan",
    "StoreIntegrityError",
    "StoreScorer",
    "TransactionStore",
    "plan_shards",
    "shard_fit",
    "shard_supported",
]
