"""The sharded fit coordinator: blocks -> components -> streams -> replay.

Execution plan (every phase checkpointed through
:mod:`repro.shard.checkpoint`):

1. **Encode** the input into a :class:`~repro.shard.store.TransactionStore`
   under the run directory (or adopt a caller-provided store).  Workers
   receive the store *path* and memory-map it.
2. **Score blocks** (``block-*`` units): each worker runs the sharded
   fused kernel over a row range -- the exact
   ``SparseTransactionScorer`` adjacency plus the Figure 4 pair counts
   -- and spills degrees, neighbor edges and link-pair counts.  The
   coordinator streams the edges into a union-find, so connected
   components exist *before any dense structure*.
3. **Merge components** (``comps-*`` units): per-component link pairs
   (bucketed from the block spills) go to workers that run the PR 5
   engine -- ``partition_components`` + ``component_merge_stream`` --
   and spill each component's merge streams.
4. **Replay**: the spilled streams feed the same k-way replay the fast
   engine uses, stitching one :class:`~repro.core.rock.RockResult`.

Byte-identity with ``fit_mode="fused"`` holds link by link: the store
scorer reproduces the sparse adjacency bit for bit, per-component pair
lists are the (lo, hi)-sorted global pair list restricted to each
component, component-local ids are order-isomorphic to global ids, and
the replay key ``(-goodness, u_global_id)`` never sees a tie it could
order differently.  The property tests in ``tests/test_shard_fit.py``
assert this across worker counts and block sizes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.goodness import goodness as normalized_goodness
from repro.core.goodness import merge_kernel_by_name, merge_kernel_for
from repro.core.merge import (
    ComponentProblem,
    MergeStream,
    _replay_streams,
    component_merge_stream,
    partition_components,
)
from repro.core.rock import RockResult
from repro.obs.trace import Tracer, peak_rss_bytes
from repro.parallel.links import merge_pair_counts, pair_link_counts
from repro.parallel.pool import resolve_workers
from repro.shard.checkpoint import RunDirectory, ShardExecutor, maybe_kill_for_test
from repro.shard.planner import component_chunks, plan_shards
from repro.shard.store import StoreScorer, TransactionStore

__all__ = ["ShardFitResult", "shard_fit", "shard_supported"]

_EMPTY64 = np.empty(0, dtype=np.int64)


@dataclass
class ShardFitResult:
    """Everything the pipeline needs from a sharded fit."""

    result: RockResult
    kept: np.ndarray
    discarded: np.ndarray
    degrees: np.ndarray = field(repr=False)
    n_blocks: int = 0
    n_components: int = 0
    resumed_units: int = 0
    retries: int = 0
    degraded: bool = False
    store_path: str | None = None
    timings: dict[str, float] = field(default_factory=dict)


def shard_supported(points: Any, similarity: Any, goodness_fn: Any) -> tuple[bool, str]:
    """Whether the sharded path can run this fit bit-identically.

    Requires a store-encodable input (transactions, or categorical
    records via the ``A.v`` item expansion) under Jaccard/overlap
    similarity, and a built-in goodness measure (custom callables are
    not assumed picklable and carry no exactness promise under
    reordered evaluation).
    """
    from repro.core.neighbors import supports_blocked
    from repro.core.similarity import MissingAwareJaccard

    if goodness_fn is not None and merge_kernel_for(goodness_fn, 0.0) is None:
        return False, "custom goodness callables are not shardable"
    if isinstance(similarity, MissingAwareJaccard):
        return False, "missing-aware similarity has no store encoding"
    if not supports_blocked(points, similarity):
        return False, "no store encoding for this points/similarity pair"
    return True, ""


def _as_transactions(points: Any, similarity: Any) -> tuple[Any, bool]:
    """Normalise supported inputs to transaction rows + overlap flag."""
    from repro.core.similarity import OverlapSimilarity
    from repro.data.records import CategoricalDataset

    overlap = isinstance(similarity, OverlapSimilarity)
    if isinstance(points, CategoricalDataset):
        from repro.core.encoding import dataset_to_transactions

        return dataset_to_transactions(points), overlap
    return points, overlap


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

_WORKER: dict[str, Any] = {}


def _init_shard_worker(
    store_path: str,
    run_root: str,
    theta: float,
    overlap: bool,
    kernel_name: str,
    f_theta: float,
) -> None:
    """Pool initializer: the payload is a *path*; the scorer mmaps it."""
    _WORKER["scorer"] = None  # built lazily so merge-only pools skip it
    _WORKER["store_path"] = store_path
    _WORKER["root"] = run_root
    _WORKER["theta"] = float(theta)
    _WORKER["overlap"] = bool(overlap)
    _WORKER["kernel_name"] = kernel_name
    _WORKER["f_theta"] = float(f_theta)


def _worker_scorer() -> StoreScorer:
    if _WORKER.get("scorer") is None:
        _WORKER["scorer"] = StoreScorer(
            _WORKER["store_path"], overlap=_WORKER["overlap"]
        )
    return _WORKER["scorer"]


def _score_block(unit: str, span: tuple[int, int]) -> dict[str, Any]:
    """Phase 2 unit: fused scoring of one row block, spilled to disk."""
    root = Path(_WORKER["root"])
    maybe_kill_for_test(unit, root)
    t0 = time.perf_counter()
    scorer = _worker_scorer()
    start, stop = span
    n = scorer.n
    rows = scorer.neighbor_rows(start, stop, _WORKER["theta"])
    degrees = np.asarray([row.shape[0] for row in rows], dtype=np.int64)
    codes, counts = pair_link_counts(rows, n)
    edge_chunks = []
    for offset, neighbors in enumerate(rows):
        i = start + offset
        upper = np.asarray(neighbors, dtype=np.int64)
        upper = upper[upper > i]
        if upper.size:
            edge_chunks.append(i * n + upper)
    edges = np.concatenate(edge_chunks) if edge_chunks else _EMPTY64
    RunDirectory(root).publish_unit(
        unit,
        {
            "start": np.asarray([start], dtype=np.int64),
            "stop": np.asarray([stop], dtype=np.int64),
            "degrees": degrees,
            "edges": edges,
            "codes": np.asarray(codes, dtype=np.int64),
            "counts": np.asarray(counts, dtype=np.int64),
        },
    )
    return {
        "seconds": time.perf_counter() - t0,
        "rss": peak_rss_bytes(),
        "edges": int(edges.size),
        "pairs": int(codes.size),
    }


def _merge_components(unit: str, payload: list[tuple]) -> dict[str, Any]:
    """Phase 3 unit: PR 5 merge streams for a chunk of components."""
    root = Path(_WORKER["root"])
    maybe_kill_for_test(unit, root)
    t0 = time.perf_counter()
    kernel = merge_kernel_by_name(_WORKER["kernel_name"], _WORKER["f_theta"])
    arrays: dict[str, np.ndarray] = {}
    heap_ops = 0
    for comp_index, members_kept, lo, hi, counts in payload:
        size = int(members_kept.shape[0])
        problems = partition_components(
            size, np.ones(size, dtype=np.int64), lo, hi, counts
        )
        key = f"c{comp_index}"
        arrays[f"{key}_nproblems"] = np.asarray([len(problems)], dtype=np.int64)
        for slot, problem in enumerate(problems):
            stream = component_merge_stream(problem, kernel)
            heap_ops += stream.heap_ops
            prefix = f"{key}_p{slot}"
            arrays[f"{prefix}_gids"] = members_kept[problem.global_ids]
            arrays[f"{prefix}_left"] = stream.left
            arrays[f"{prefix}_right"] = stream.right
            arrays[f"{prefix}_goodness"] = stream.goodness
            arrays[f"{prefix}_sizes"] = stream.sizes
    RunDirectory(root).publish_unit(unit, arrays)
    return {
        "seconds": time.perf_counter() - t0,
        "rss": peak_rss_bytes(),
        "heap_ops": heap_ops,
    }


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


def _component_labels_from_edges(
    n: int, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Connected-component labels over the streamed neighbor edges."""
    try:
        from scipy import sparse
        from scipy.sparse import csgraph
    except ImportError:  # pragma: no cover - scipy is a core dependency
        from repro.core.components import UnionFind

        finder = UnionFind(n)
        for a, b in zip(lo.tolist(), hi.tolist()):
            finder.union(a, b)
        return np.asarray([finder.find(i) for i in range(n)], dtype=np.int64)
    ones = np.ones(lo.shape[0], dtype=np.int8)
    matrix = sparse.coo_matrix((ones, (lo, hi)), shape=(n, n))
    _, labels = csgraph.connected_components(matrix, directed=False)
    return np.asarray(labels, dtype=np.int64)


def _prepare_store(
    run_dir: RunDirectory,
    points: Any,
    store: TransactionStore | str | os.PathLike[str] | None,
    chunk_rows: int,
) -> TransactionStore:
    """Adopt an external store or (re)encode ``points`` under the run dir.

    Re-encoding is idempotent: the fresh encode lands in ``store.new``
    and replaces the resident store only when the checksums differ, so
    a resumed run with unchanged data keeps its fingerprint (and its
    completed units).
    """
    if store is not None:
        if isinstance(store, TransactionStore):
            return store
        return TransactionStore.open(store)
    store_dir = run_dir.root / "store"
    fresh_dir = run_dir.root / "store.new"
    fresh = TransactionStore.write(fresh_dir, points, chunk_rows=chunk_rows)
    try:
        resident = TransactionStore.open(store_dir)
    except Exception:
        resident = None
    if resident is not None and resident.meta["checksums"] == fresh.meta["checksums"]:
        del fresh
        shutil.rmtree(fresh_dir)
        return resident
    if store_dir.exists():
        shutil.rmtree(store_dir)
    os.replace(fresh_dir, store_dir)
    return TransactionStore.open(store_dir)


def shard_fit(
    points: Any = None,
    *,
    store: TransactionStore | str | os.PathLike[str] | None = None,
    k: int,
    theta: float,
    f_theta: float,
    similarity: Any = None,
    goodness_fn: Any = None,
    min_neighbors: int = 0,
    workers: int | str | None = None,
    block_rows: int | None = None,
    spill_dir: str | os.PathLike[str] | None = None,
    max_retries: int = 2,
    memory_budget: int | None = None,
    chunk_rows: int = 8192,
    tracer: Tracer | None = None,
) -> ShardFitResult:
    """Out-of-core sharded fit over ``points`` or an encoded ``store``.

    Produces the same :class:`RockResult` (over kept-point indices,
    ascending) as the fused + fast-merge path, byte for byte.  With a
    ``spill_dir`` the run is crash-safe: completed units are skipped on
    the next invocation with the same configuration and data.
    """
    if points is None and store is None:
        raise ValueError("shard_fit needs points or a store")
    if goodness_fn is None:
        goodness_fn = normalized_goodness
    kernel = merge_kernel_for(goodness_fn, f_theta)
    if kernel is None:
        raise ValueError("shard_fit requires a built-in goodness measure")
    if min_neighbors > 1:
        raise ValueError("shard_fit supports min_neighbors <= 1 only")
    if tracer is None:
        tracer = Tracer()
    registry = tracer.registry
    worker_count = resolve_workers(workers)

    overlap = False
    if points is not None and store is None:
        points, overlap = _as_transactions(points, similarity)
    else:
        from repro.core.similarity import OverlapSimilarity

        overlap = isinstance(similarity, OverlapSimilarity)

    owns_spill = spill_dir is None
    if owns_spill:
        spill_dir = tempfile.mkdtemp(prefix="rock-shard-")
    run_dir = RunDirectory(spill_dir)
    try:
        return _shard_fit_run(
            run_dir,
            points,
            store,
            k=k,
            theta=theta,
            f_theta=f_theta,
            kernel_name=kernel.name,
            overlap=overlap,
            min_neighbors=min_neighbors,
            worker_count=worker_count,
            block_rows=block_rows,
            max_retries=max_retries,
            memory_budget=memory_budget,
            chunk_rows=chunk_rows,
            tracer=tracer,
            registry=registry,
        )
    finally:
        if owns_spill:
            run_dir.cleanup()


def _shard_fit_run(
    run_dir: RunDirectory,
    points: Any,
    store_arg: Any,
    *,
    k: int,
    theta: float,
    f_theta: float,
    kernel_name: str,
    overlap: bool,
    min_neighbors: int,
    worker_count: int,
    block_rows: int | None,
    max_retries: int,
    memory_budget: int | None,
    chunk_rows: int,
    tracer: Tracer,
    registry: Any,
) -> ShardFitResult:
    timings: dict[str, float] = {}
    worker_rss = 0

    # -- encode + plan + fingerprint ------------------------------------
    encode_start = time.perf_counter()
    with tracer.span("shard.store") as span:
        store = _prepare_store(run_dir, points, store_arg, chunk_rows)
        span.attrs["n"] = len(store)
        span.attrs["nnz"] = store.nnz
        span.attrs["bytes"] = store.nbytes()
    n = len(store)
    plan = plan_shards(
        n,
        block_rows=block_rows,
        workers=worker_count,
        memory_budget=memory_budget,
    )
    resumed = run_dir.begin(
        {
            "n": n,
            "k": int(k),
            "theta": float(theta),
            "f_theta": float(f_theta),
            "kernel": kernel_name,
            "overlap": bool(overlap),
            "min_neighbors": int(min_neighbors),
            "block_rows": plan.block_rows,
            "store": store.checksum,
        }
    )
    block_units = plan.block_units()
    resumed_units = (
        len(run_dir.done_units([name for name, _ in block_units])) if resumed else 0
    )
    timings["store"] = time.perf_counter() - encode_start

    executor = ShardExecutor(
        run_dir,
        workers=worker_count,
        max_retries=max_retries,
        initializer=_init_shard_worker,
        initargs=(
            str(store.path),
            str(run_dir.root),
            float(theta),
            bool(overlap),
            kernel_name,
            float(f_theta),
        ),
    )

    # -- phase 2: sharded fused scoring + early components --------------
    with tracer.span(
        "neighbors", sharded=True, n=n, blocks=plan.n_blocks,
        block_rows=plan.block_rows, workers=worker_count,
    ) as neighbors_span:
        def on_block(name: str, info: dict[str, Any]) -> None:
            nonlocal worker_rss
            worker_rss = max(worker_rss, int(info.get("rss", 0)))
            with tracer.span(
                f"shard.{name}",
                seconds=round(float(info["seconds"]), 6),
                edges=info.get("edges", 0),
                pairs=info.get("pairs", 0),
            ):
                pass

        executor.run(block_units, _score_block, on_block)

        degrees = np.zeros(n, dtype=np.int64)
        edge_parts: list[np.ndarray] = []
        total_pairs = 0
        for name, (start, stop) in block_units:
            data = run_dir.load_unit(name)
            degrees[start:stop] = data["degrees"]
            edge_parts.append(data["edges"])
            total_pairs += int(data["codes"].size)
        edges = (
            np.concatenate(edge_parts) if edge_parts else _EMPTY64
        )
        labels = _component_labels_from_edges(n, edges // n, edges % n)

        if min_neighbors > 0:
            kept = np.flatnonzero(degrees >= min_neighbors)
        else:
            kept = np.arange(n, dtype=np.int64)
        discarded = np.setdiff1d(np.arange(n, dtype=np.int64), kept)
        kept_pos = np.full(n, -1, dtype=np.int64)
        kept_pos[kept] = np.arange(kept.shape[0], dtype=np.int64)

        # linked points group into components; singletons replay as-is
        linked = np.flatnonzero(degrees > 0)
        comp_members: list[np.ndarray] = []
        if linked.size:
            linked_labels = labels[linked]
            order = np.argsort(linked_labels, kind="stable")
            sorted_labels = linked_labels[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_labels[1:] != sorted_labels[:-1]]
            )
            bounds = np.r_[starts, linked.size]
            comp_members = [
                linked[order[bounds[i]:bounds[i + 1]]]
                for i in range(starts.size)
            ]
        comp_index_of = np.full(n, -1, dtype=np.int64)
        for index, members in enumerate(comp_members):
            comp_index_of[members] = index
        neighbors_span.attrs["components"] = len(comp_members)
        neighbors_span.attrs["edges"] = int(edges.size)
    timings["neighbors"] = neighbors_span.wall_seconds or 0.0

    # -- phase 3: per-component links + merge streams --------------------
    with tracer.span(
        "links", sharded=True, components=len(comp_members), workers=worker_count,
    ) as links_span:
        buckets: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in comp_members
        ]
        for name, _span in block_units:
            data = run_dir.load_unit(name)
            codes = data["codes"]
            if not codes.size:
                continue
            counts = data["counts"]
            comps = comp_index_of[codes // n]
            order = np.argsort(comps, kind="stable")
            sorted_comps = comps[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_comps[1:] != sorted_comps[:-1]]
            )
            bounds = np.r_[starts, codes.size]
            for i in range(starts.size):
                comp = int(sorted_comps[starts[i]])
                picks = order[bounds[i]:bounds[i + 1]]
                buckets[comp].append((codes[picks], counts[picks]))

        payloads: list[tuple] = []
        costs = np.zeros(len(comp_members), dtype=np.float64)
        for index, members in enumerate(comp_members):
            codes, counts = merge_pair_counts(buckets[index])
            buckets[index] = []
            sample_lo = codes // n
            sample_hi = codes % n
            lo = np.searchsorted(members, sample_lo)
            hi = np.searchsorted(members, sample_hi)
            payloads.append(
                (
                    index,
                    kept_pos[members],
                    lo.astype(np.int64),
                    hi.astype(np.int64),
                    counts.astype(np.float64),
                )
            )
            costs[index] = codes.size
        chunks = component_chunks(costs)
        comp_units = [
            (f"comps-{index:05d}", payloads[start:stop])
            for index, (start, stop) in enumerate(chunks)
        ]

        heap_ops = 0

        def on_comps(name: str, info: dict[str, Any]) -> None:
            nonlocal worker_rss, heap_ops
            worker_rss = max(worker_rss, int(info.get("rss", 0)))
            heap_ops += int(info.get("heap_ops", 0))
            with tracer.span(
                f"shard.{name}",
                seconds=round(float(info["seconds"]), 6),
            ):
                pass

        if resumed:
            resumed_units += len(
                run_dir.done_units([name for name, _ in comp_units])
            )
        executor.run(comp_units, _merge_components, on_comps)
        links_span.attrs["component_units"] = len(comp_units)
    timings["links"] = links_span.wall_seconds or 0.0

    # -- phase 4: k-way replay -------------------------------------------
    with tracer.span("cluster", sharded=True, k=k) as cluster_span:
        m = int(kept.shape[0])
        collected: list[tuple[np.ndarray, MergeStream]] = []
        for name, payload in comp_units:
            data = run_dir.load_unit(name)
            for comp_index, _members, _lo, _hi, _counts in payload:
                key = f"c{comp_index}"
                n_problems = int(data[f"{key}_nproblems"][0])
                for slot in range(n_problems):
                    prefix = f"{key}_p{slot}"
                    collected.append(
                        (
                            data[f"{prefix}_gids"],
                            MergeStream(
                                left=data[f"{prefix}_left"],
                                right=data[f"{prefix}_right"],
                                goodness=data[f"{prefix}_goodness"],
                                sizes=data[f"{prefix}_sizes"],
                            ),
                        )
                    )
        collected.sort(key=lambda pair: int(pair[0][0]))
        problems = [
            ComponentProblem(
                index=position,
                global_ids=np.asarray(gids, dtype=np.int64),
                sizes=np.ones(gids.shape[0], dtype=np.int64),
                pair_lo=_EMPTY64,
                pair_hi=_EMPTY64,
                pair_count=np.empty(0, dtype=np.float64),
            )
            for position, (gids, _stream) in enumerate(collected)
        ]
        streams = [stream for _gids, stream in collected]
        registry.inc("fit.cluster.heap_ops", heap_ops)
        cluster_list = [[i] for i in range(m)]
        result = _replay_streams(cluster_list, problems, streams, k, m, registry)
        registry.inc("fit.cluster.merges", len(result.merges))
    timings["cluster"] = cluster_span.wall_seconds or 0.0

    # -- observability ----------------------------------------------------
    registry.inc("fit.shard.blocks", plan.n_blocks)
    registry.inc("fit.shard.components", len(comp_members))
    registry.inc("fit.shard.component_units", len(comp_units))
    registry.inc("fit.shard.edges", int(edges.size))
    registry.inc("fit.shard.linked_pairs", total_pairs)
    if executor.retries:
        registry.inc("fit.shard.retries", executor.retries)
    if executor.degraded:
        registry.inc("fit.shard.degraded")
    if resumed_units:
        registry.inc("fit.shard.resumed_units", resumed_units)
    registry.set_gauge("fit.shard.block_rows", plan.block_rows)
    registry.set_gauge("fit.shard.store_bytes", store.nbytes())
    if worker_rss:
        registry.set_gauge("fit.shard.worker_peak_rss_bytes", worker_rss)

    return ShardFitResult(
        result=result,
        kept=kept,
        discarded=discarded,
        degrees=degrees,
        n_blocks=plan.n_blocks,
        n_components=len(comp_members),
        resumed_units=resumed_units,
        retries=executor.retries,
        degraded=executor.degraded,
        store_path=str(store.path),
        timings=timings,
    )
