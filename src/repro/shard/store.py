"""Memory-mapped transaction store: encode once, mmap everywhere.

The parallel kernels of PR 3 ship their payload (a scorer holding the
whole CSR indicator matrix) through the pool initializer -- every
worker receives a pickled copy.  At sharded scale that copy *is* the
memory problem, so this module encodes a transaction database once
into an on-disk int32 CSR::

    <store>/store.json   format, n, n_items, nnz, vocabulary, checksums
    <store>/items.i32    item codes, row-major, ascending within a row
    <store>/indptr.i64   n+1 row offsets into items.i32

written chunk-at-a-time (the writer never holds more than
``chunk_rows`` encoded rows) and sha256-checksummed per artifact file,
mirroring the ``RockModel`` integrity scheme.  Workers then
``np.memmap`` the two arrays: the pool payload becomes a path and the
page cache shares one physical copy across every worker on the host.

:class:`StoreScorer` rebuilds the exact
:class:`~repro.core.neighbors.SparseTransactionScorer` state on top of
the memmaps -- same CSR values, same integer prefilter, same float64
similarity -- so the sharded adjacency is bit-identical to the fused
path's.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.transactions import Transaction, TransactionDataset

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "StoreIntegrityError",
    "StoreScorer",
    "TransactionStore",
]

STORE_FORMAT = "rock-shard-store"
STORE_VERSION = 1
META_NAME = "store.json"
ITEMS_NAME = "items.i32"
INDPTR_NAME = "indptr.i64"
DEFAULT_CHUNK_ROWS = 8192


class StoreIntegrityError(RuntimeError):
    """A store file is missing, malformed, or fails its checksum."""


def _sha256_hex(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return "sha256:" + digest.hexdigest()


class _ChunkWriter:
    """Appends raw array bytes to a file while folding them into a sha256."""

    def __init__(self, path: Path) -> None:
        self._handle = path.open("wb")
        self._digest = hashlib.sha256()

    def append(self, array: np.ndarray) -> None:
        data = array.tobytes()
        self._handle.write(data)
        self._digest.update(data)

    def close(self) -> str:
        self._handle.close()
        return "sha256:" + self._digest.hexdigest()


def _encode_rows(
    rows: Iterable[Iterable[Any]],
    code_of: dict[Any, int],
    vocabulary: list[Any] | None,
) -> Iterator[np.ndarray]:
    """Yield one sorted int32 code array per row.

    When ``vocabulary`` is a list, unseen items extend it (first-seen
    coding); similarity over transactions is invariant to column order,
    so a store-local vocabulary yields the same neighbor graph as the
    dataset's own.
    """
    for row in rows:
        codes = []
        for item in row:
            code = code_of.get(item)
            if code is None:
                if vocabulary is None:
                    raise StoreIntegrityError(
                        f"item {item!r} missing from the fixed vocabulary"
                    )
                code = len(vocabulary)
                code_of[item] = code
                vocabulary.append(item)
            codes.append(code)
        yield np.sort(np.asarray(codes, dtype=np.int32))


class TransactionStore:
    """An on-disk int32 CSR encoding of a transaction database."""

    def __init__(
        self,
        path: Path,
        meta: dict[str, Any],
        indptr: np.ndarray,
        items: np.ndarray,
    ) -> None:
        self.path = Path(path)
        self.meta = meta
        self.indptr = indptr
        self.items = items
        self.vocabulary: list[Any] = list(meta["vocabulary"])

    # -- writing ---------------------------------------------------------

    @classmethod
    def write(
        cls,
        path: str | os.PathLike[str],
        transactions: Iterable[Any],
        vocabulary: Iterable[Any] | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "TransactionStore":
        """Encode ``transactions`` under directory ``path``.

        Accepts a :class:`TransactionDataset` (its vocabulary is
        reused), any iterable of item iterables, or an explicit
        ``vocabulary``.  Rows are encoded and flushed ``chunk_rows`` at
        a time, so the writer's footprint is bounded regardless of n.
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        path = Path(path)
        if path.exists():
            shutil.rmtree(path)
        path.mkdir(parents=True)

        if vocabulary is not None:
            vocab: list[Any] | None = None
            fixed = list(vocabulary)
            code_of = {item: i for i, item in enumerate(fixed)}
            all_items = fixed
        elif isinstance(transactions, TransactionDataset):
            vocab = None
            all_items = list(transactions.vocabulary)
            code_of = {item: i for i, item in enumerate(all_items)}
        else:
            vocab = []
            all_items = vocab
            code_of = {}

        items_writer = _ChunkWriter(path / ITEMS_NAME)
        indptr_writer = _ChunkWriter(path / INDPTR_NAME)
        indptr_writer.append(np.zeros(1, dtype=np.int64))
        n_rows = 0
        nnz = 0
        chunk: list[np.ndarray] = []
        offsets: list[int] = []

        def flush() -> None:
            nonlocal chunk, offsets
            if chunk:
                items_writer.append(np.concatenate(chunk))
                indptr_writer.append(np.asarray(offsets, dtype=np.int64))
                chunk = []
                offsets = []

        try:
            for codes in _encode_rows(transactions, code_of, vocab):
                chunk.append(codes)
                n_rows += 1
                nnz += codes.shape[0]
                offsets.append(nnz)
                if len(chunk) >= chunk_rows:
                    flush()
            flush()
        finally:
            items_digest = items_writer.close()
            indptr_digest = indptr_writer.close()

        meta = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "n": n_rows,
            "n_items": len(all_items),
            "nnz": nnz,
            "vocabulary": _json_safe_vocabulary(all_items),
            "checksums": {
                ITEMS_NAME: items_digest,
                INDPTR_NAME: indptr_digest,
            },
        }
        tmp = path / (META_NAME + ".tmp")
        tmp.write_text(json.dumps(meta, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path / META_NAME)
        return cls.open(path)

    @classmethod
    def from_transactions_file(
        cls,
        source: str | os.PathLike[str],
        path: str | os.PathLike[str],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "TransactionStore":
        """Encode a transactions text file (one basket per line).

        Streams through :func:`repro.data.io.iter_transactions`, so the
        source is never resident in RAM -- the entry point for fits
        over files that dwarf the memory budget.
        """
        from repro.data.io import iter_transactions

        return cls.write(
            path,
            (txn.items for txn in iter_transactions(source)),
            chunk_rows=chunk_rows,
        )

    # -- reading ---------------------------------------------------------

    @classmethod
    def open(
        cls, path: str | os.PathLike[str], verify: bool = False
    ) -> "TransactionStore":
        """Memory-map an existing store; ``verify=True`` re-checksums it.

        Verification reads every byte once, so the coordinator verifies
        a store a single time and workers open without it.
        """
        path = Path(path)
        meta_path = path / META_NAME
        if not meta_path.is_file():
            raise StoreIntegrityError(f"no {META_NAME} under {path}")
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(f"malformed {meta_path}: {exc}") from exc
        if meta.get("format") != STORE_FORMAT:
            raise StoreIntegrityError(
                f"{meta_path} is not a {STORE_FORMAT} artifact"
            )
        if meta.get("version") != STORE_VERSION:
            raise StoreIntegrityError(
                f"unsupported store version {meta.get('version')!r}"
            )
        n = int(meta["n"])
        nnz = int(meta["nnz"])
        indptr_path = path / INDPTR_NAME
        items_path = path / ITEMS_NAME
        for file_path, expected in (
            (indptr_path, (n + 1) * 8),
            (items_path, nnz * 4),
        ):
            if not file_path.is_file():
                raise StoreIntegrityError(f"missing {file_path}")
            actual = file_path.stat().st_size
            if actual != expected:
                raise StoreIntegrityError(
                    f"{file_path} is {actual} bytes, expected {expected}"
                )
        indptr = np.memmap(indptr_path, dtype=np.int64, mode="r", shape=(n + 1,))
        items = np.memmap(items_path, dtype=np.int32, mode="r", shape=(nnz,))
        store = cls(path, meta, indptr, items)
        if verify:
            store.verify()
        return store

    def verify(self) -> None:
        """Re-hash both array files against the recorded checksums."""
        for name in (ITEMS_NAME, INDPTR_NAME):
            expected = self.meta["checksums"][name]
            actual = _sha256_hex(self.path / name)
            if actual != expected:
                raise StoreIntegrityError(
                    f"checksum mismatch for {self.path / name}: "
                    f"{actual} != {expected}"
                )

    # -- views -----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.meta["n"])

    @property
    def n_items(self) -> int:
        return int(self.meta["n_items"])

    @property
    def nnz(self) -> int:
        return int(self.meta["nnz"])

    @property
    def checksum(self) -> str:
        """The items-file digest: the store's identity for fingerprints."""
        return str(self.meta["checksums"][ITEMS_NAME])

    def nbytes(self) -> int:
        return self.items.nbytes + self.indptr.nbytes

    def sizes(self) -> np.ndarray:
        return np.diff(np.asarray(self.indptr)).astype(np.int64)

    def row_codes(self, i: int) -> np.ndarray:
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return np.asarray(self.items[lo:hi])

    def row_items(self, i: int) -> list[Any]:
        return [self.vocabulary[code] for code in self.row_codes(i)]

    def subset_dataset(self, indices: Iterable[int]) -> TransactionDataset:
        """Decode selected rows into an in-RAM :class:`TransactionDataset`.

        The dataset keeps the *store's* vocabulary so indicator columns
        line up across subsets.
        """
        transactions = [
            Transaction(self.row_items(int(i)), tid=int(i)) for i in indices
        ]
        return TransactionDataset(transactions, vocabulary=self.vocabulary)

    def scorer(self, overlap: bool = False) -> "StoreScorer":
        return StoreScorer(self, overlap=overlap)


def _json_safe_vocabulary(items: list[Any]) -> list[Any]:
    for item in items:
        if not isinstance(item, (str, int, bool)):
            raise StoreIntegrityError(
                "store vocabularies must be JSON-scalar items "
                f"(str/int/bool); got {type(item).__name__}"
            )
    return list(items)


from repro.core.neighbors import SparseTransactionScorer  # noqa: E402


class StoreScorer(SparseTransactionScorer):
    """The sparse CSR scorer rebuilt over a store's memory-maps.

    Reconstructs exactly the fields
    :meth:`SparseTransactionScorer.neighbor_rows` consumes -- the int64
    CSR, transposed CSR, row sizes and global minimum size -- without
    ever materialising an indicator matrix, so the inherited kernel
    (integer prefilter + exact float64 similarity) reproduces the fused
    path's adjacency bit for bit.
    """

    def __init__(
        self, store: TransactionStore | str | os.PathLike[str], overlap: bool = False
    ) -> None:
        from scipy import sparse

        if not isinstance(store, TransactionStore):
            store = TransactionStore.open(store)
        self.store = store
        self.n = len(store)
        indptr = np.asarray(store.indptr)
        indices = np.asarray(store.items)
        data = np.ones(indices.shape[0], dtype=np.int64)
        matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(self.n, max(store.n_items, 1))
        )
        self._s = matrix
        self._st = matrix.T.tocsr()
        self._sizes = store.sizes()
        self._min_size = int(self._sizes.min()) if self.n else 0
        self._overlap = overlap
