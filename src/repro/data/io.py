"""Plain-text readers and writers for the data formats used in the paper.

Two formats are supported:

* **UCI ``.data`` CSV** -- one record per line, comma-separated values,
  ``?`` marking a missing value.  This is the on-disk format of the
  Congressional Votes and Mushroom data sets the paper uses; our
  synthetic replicas round-trip through the same format so the loading
  path is exercised end to end.
* **Transactions file** -- one transaction per line, items separated by
  whitespace.  This is the natural serialisation of the market-basket
  synthetic data set of Section 5.3 and is also how the "data on disk"
  of the labeling phase (Section 4.6) is streamed.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any, TextIO

from repro.data.records import MISSING, CategoricalDataset, CategoricalSchema
from repro.data.transactions import Transaction, TransactionDataset

MISSING_TOKEN = "?"


def _open_for_read(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


# ---------------------------------------------------------------------------
# UCI .data CSV
# ---------------------------------------------------------------------------

def read_uci_data(
    source: str | Path | TextIO,
    attributes: list[str],
    label_column: int | None = 0,
) -> CategoricalDataset:
    """Read a UCI-style ``.data`` file into a :class:`CategoricalDataset`.

    Parameters
    ----------
    source:
        Path or open text stream.
    attributes:
        Names for the non-label columns, in file order.
    label_column:
        Index (within the raw CSV row) of the class-label column, or
        ``None`` when the file has no label.  UCI convention puts the
        label first (mushroom) or derives it from the first field
        (votes); both data sets the paper uses have it at column 0.
    """
    stream, owned = _open_for_read(source)
    try:
        schema = CategoricalSchema(attributes)
        rows: list[list[Any]] = []
        labels: list[Any] = []
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f.strip() for f in line.split(",")]
            label = None
            if label_column is not None:
                if label_column >= len(fields):
                    raise ValueError(f"line {lineno}: no label column {label_column}")
                label = fields[label_column]
                fields = fields[:label_column] + fields[label_column + 1 :]
            if len(fields) != len(attributes):
                raise ValueError(
                    f"line {lineno}: expected {len(attributes)} values, "
                    f"got {len(fields)}"
                )
            rows.append([MISSING if f == MISSING_TOKEN else f for f in fields])
            labels.append(label)
        return CategoricalDataset(schema, rows, labels=labels)
    finally:
        if owned:
            stream.close()


def write_uci_data(
    dataset: CategoricalDataset,
    target: str | Path | TextIO,
    include_label: bool = True,
) -> None:
    """Write a :class:`CategoricalDataset` in UCI ``.data`` CSV format.

    The label, when included, is written as the first column -- matching
    the layout of the mushroom data set.
    """
    stream, owned = _open_for_write(target)
    try:
        for record in dataset:
            fields = [
                MISSING_TOKEN if v is MISSING else str(v) for v in record.values
            ]
            if include_label:
                fields.insert(0, str(record.label))
            stream.write(",".join(fields) + "\n")
    finally:
        if owned:
            stream.close()


# ---------------------------------------------------------------------------
# Transactions file
# ---------------------------------------------------------------------------

def read_transactions(
    source: str | Path | TextIO,
    vocabulary: list[str] | None = None,
) -> TransactionDataset:
    """Read a one-transaction-per-line, whitespace-separated items file."""
    stream, owned = _open_for_read(source)
    try:
        transactions = []
        for lineno, line in enumerate(stream):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            transactions.append(Transaction(line.split(), tid=lineno))
        return TransactionDataset(transactions, vocabulary=vocabulary)
    finally:
        if owned:
            stream.close()


def write_transactions(
    dataset: Iterable[Transaction],
    target: str | Path | TextIO,
) -> None:
    """Write transactions one per line, items sorted and space-separated."""
    stream, owned = _open_for_write(target)
    try:
        for t in dataset:
            stream.write(" ".join(sorted(str(i) for i in t)) + "\n")
    finally:
        if owned:
            stream.close()


def iter_transactions(source: str | Path | TextIO) -> Iterator[Transaction]:
    """Stream transactions from disk one at a time.

    This is the access pattern of the labeling phase (Section 4.6): the
    original data set is *read from disk* sequentially and each point is
    assigned to a cluster without ever materialising the whole database
    in memory.
    """
    stream, owned = _open_for_read(source)
    try:
        for lineno, line in enumerate(stream):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield Transaction(line.split(), tid=lineno)
    finally:
        if owned:
            stream.close()


def transactions_to_string(dataset: Iterable[Transaction]) -> str:
    """Serialise transactions to the transactions-file format in memory."""
    buf = io.StringIO()
    write_transactions(dataset, buf)
    return buf.getvalue()
