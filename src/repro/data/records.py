"""Fixed-schema categorical records with missing values.

Section 3.1.2 of the paper handles data sets with categorical attributes
by modelling each record as a transaction: for every attribute ``A`` and
value ``v`` an item ``A.v`` is introduced, and the transaction for a
record contains ``A.v`` iff the record's value for ``A`` is ``v``.
Missing values simply contribute no item.

This module provides the record/dataset containers; the record-to-
transaction encoding itself lives in :mod:`repro.core.encoding` because
it is part of the similarity machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

MISSING = None
"""Sentinel for a missing attribute value (the paper's '?' marks)."""


class CategoricalSchema:
    """The ordered list of attribute names of a categorical dataset.

    A schema is deliberately tiny: it exists so that records can be
    validated for arity and so that characterisation output (Tables 7-9
    of the paper) can name attributes.
    """

    def __init__(self, attributes: Sequence[str]) -> None:
        names = list(attributes)
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute names in schema")
        if not names:
            raise ValueError("schema must have at least one attribute")
        self._attributes = names
        self._index = {name: i for i, name in enumerate(names)}

    @property
    def attributes(self) -> list[str]:
        return list(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def index(self, name: str) -> int:
        return self._index[name]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CategoricalSchema):
            return self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CategoricalSchema({self._attributes!r})"


class CategoricalRecord:
    """One record: a tuple of categorical values aligned with a schema.

    ``None`` (:data:`MISSING`) marks a missing value.  An optional
    ``label`` carries ground truth (e.g. Republican/Democrat, or
    edible/poisonous) used only for evaluation, never by the clustering
    algorithms themselves.
    """

    __slots__ = ("schema", "values", "label", "rid")

    def __init__(
        self,
        schema: CategoricalSchema,
        values: Sequence[Any] | Mapping[str, Any],
        label: Any = None,
        rid: Any = None,
    ) -> None:
        if isinstance(values, Mapping):
            row = [values.get(name, MISSING) for name in schema]
            unknown = set(values) - set(schema.attributes)
            if unknown:
                raise ValueError(f"values for unknown attributes: {sorted(unknown)}")
        else:
            row = list(values)
            if len(row) != len(schema):
                raise ValueError(
                    f"record has {len(row)} values but schema has "
                    f"{len(schema)} attributes"
                )
        self.schema = schema
        self.values = tuple(row)
        self.label = label
        self.rid = rid

    def __getitem__(self, attribute: str) -> Any:
        return self.values[self.schema.index(attribute)]

    def is_missing(self, attribute: str) -> bool:
        return self[attribute] is MISSING

    def present_attributes(self) -> list[str]:
        """Attribute names whose value is not missing."""
        return [a for a, v in zip(self.schema, self.values) if v is not MISSING]

    def items(self) -> Iterator[tuple[str, Any]]:
        """(attribute, value) pairs for non-missing values."""
        for a, v in zip(self.schema, self.values):
            if v is not MISSING:
                yield a, v

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CategoricalRecord):
            return self.schema == other.schema and self.values == other.values
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f", label={self.label!r}" if self.label is not None else ""
        return f"CategoricalRecord({self.values!r}{tag})"


class CategoricalDataset(Sequence[CategoricalRecord]):
    """A collection of categorical records sharing one schema."""

    def __init__(
        self,
        schema: CategoricalSchema | Sequence[str],
        records: Iterable[CategoricalRecord | Sequence[Any]] = (),
        labels: Sequence[Any] | None = None,
    ) -> None:
        self.schema = (
            schema if isinstance(schema, CategoricalSchema) else CategoricalSchema(schema)
        )
        rows: list[CategoricalRecord] = []
        for i, rec in enumerate(records):
            if isinstance(rec, CategoricalRecord):
                if rec.schema != self.schema:
                    raise ValueError("record schema differs from dataset schema")
                rows.append(rec)
            else:
                label = labels[i] if labels is not None else None
                rows.append(CategoricalRecord(self.schema, rec, label=label, rid=i))
        if labels is not None and len(labels) != len(rows):
            raise ValueError("labels length does not match number of records")
        self._records = rows

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return CategoricalDataset(self.schema, self._records[index])
        return self._records[index]

    def __iter__(self) -> Iterator[CategoricalRecord]:
        return iter(self._records)

    def labels(self) -> list[Any]:
        """Ground-truth labels, aligned with record order (``None`` if absent)."""
        return [r.label for r in self._records]

    def domain(self, attribute: str) -> list[Any]:
        """Sorted distinct non-missing values observed for ``attribute``."""
        idx = self.schema.index(attribute)
        values = {r.values[idx] for r in self._records} - {MISSING}
        try:
            return sorted(values)
        except TypeError:
            return list(values)

    def missing_fraction(self) -> float:
        """Fraction of (record, attribute) cells that are missing."""
        if not self._records:
            return 0.0
        total = len(self._records) * len(self.schema)
        missing = sum(v is MISSING for r in self._records for v in r.values)
        return missing / total

    def subset(self, indices: Iterable[int]) -> "CategoricalDataset":
        return CategoricalDataset(self.schema, [self._records[i] for i in indices])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CategoricalDataset(n={len(self._records)}, "
            f"attributes={len(self.schema)})"
        )
