"""Time-series points and the Up/Down/No categorical transform.

Section 5.1 of the paper clusters a database of U.S. mutual-fund closing
prices by first mapping, for every fund, the real closing price of each
business date to one of three categorical values -- ``Up``, ``Down`` or
``No`` -- according to the sign of the change relative to the previous
business date.  Each date then acts as one categorical attribute and the
missing-value-aware similarity of Section 3.1.2 applies (young funds
have no prices before their inception date).

This module implements that transform from scratch:

* :class:`TimeSeries` -- a (date, price) series with possibly missing
  leading/trailing/interior dates;
* :func:`price_movements` -- the Up/Down/No derivative;
* :func:`series_to_categorical_dataset` -- aligns many series on the
  union of their dates and emits a :class:`~repro.data.records.CategoricalDataset`
  whose attributes are the dates (the first date of each series yields
  no movement and is therefore missing).
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.data.records import MISSING, CategoricalDataset, CategoricalRecord, CategoricalSchema


class Movement(enum.Enum):
    """Daily price movement relative to the previous observed price."""

    UP = "Up"
    DOWN = "Down"
    NO = "No"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TimeSeries:
    """A named series of (time, value) observations.

    Parameters
    ----------
    name:
        Identifier of the series (e.g. a ticker symbol).
    observations:
        Mapping from hashable, orderable time keys (e.g. ``datetime.date``
        or integer day indices) to float values.  Times absent from the
        mapping are missing observations.
    label:
        Optional ground-truth group for evaluation (e.g. "Bonds").
    """

    def __init__(
        self,
        name: str,
        observations: Mapping[Any, float],
        label: Any = None,
    ) -> None:
        for t, v in observations.items():
            if v is None or (isinstance(v, float) and math.isnan(v)):
                raise ValueError(
                    f"series {name!r} has a null value at {t!r}; omit missing "
                    "observations from the mapping instead"
                )
        self.name = name
        self.observations = dict(sorted(observations.items()))
        self.label = label

    def times(self) -> list[Any]:
        return list(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self.observations)})"


def price_movements(series: TimeSeries, tolerance: float = 0.0) -> dict[Any, Movement]:
    """Map each observed time (except the first) to Up/Down/No.

    A change whose absolute value is ``<= tolerance`` counts as ``No``
    (the paper uses exact equality, i.e. ``tolerance = 0``; a small
    tolerance is useful for noisy synthetic prices).

    Movements are computed against the *previous observed* price, so a
    gap in the series does not break the transform -- matching the
    paper's treatment where only business dates exist at all.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    movements: dict[Any, Movement] = {}
    previous: float | None = None
    for t, value in series.observations.items():
        if previous is not None:
            delta = value - previous
            if delta > tolerance:
                movements[t] = Movement.UP
            elif delta < -tolerance:
                movements[t] = Movement.DOWN
            else:
                movements[t] = Movement.NO
        previous = value
    return movements


def movements_to_record(
    schema: CategoricalSchema,
    movements: Mapping[Any, Movement],
    label: Any = None,
    rid: Any = None,
) -> CategoricalRecord:
    """Build a categorical record over a date schema from a movement map.

    Dates absent from ``movements`` become missing values, exactly as
    in the paper's mutual-funds setup where young funds lack early
    prices.
    """
    values = [movements.get(date, MISSING) for date in schema]
    values = [v.value if isinstance(v, Movement) else v for v in values]
    return CategoricalRecord(schema, values, label=label, rid=rid)


def series_to_categorical_dataset(
    series: Iterable[TimeSeries],
    tolerance: float = 0.0,
    dates: Sequence[Any] | None = None,
) -> CategoricalDataset:
    """Convert many time series into one categorical dataset.

    The attribute set is the union of all movement dates (or the explicit
    ``dates`` argument), sorted.  Each series becomes one record whose
    value for a date is its Up/Down/No movement, or missing when the
    series has no movement on that date.

    The record ``rid`` is the series name and the record ``label`` is
    the series label, so downstream evaluation can report fund groups
    as in Table 4 of the paper.
    """
    all_series = list(series)
    if not all_series:
        raise ValueError("need at least one series")
    per_series = [price_movements(s, tolerance=tolerance) for s in all_series]
    if dates is None:
        seen: set[Any] = set()
        for m in per_series:
            seen.update(m)
        dates = sorted(seen)
    if not dates:
        raise ValueError("no movement dates; every series has fewer than 2 points")
    schema = CategoricalSchema([str(d) for d in dates])
    date_by_name = dict(zip((str(d) for d in dates), dates))
    records = []
    for s, movements in zip(all_series, per_series):
        values = [
            movements[date_by_name[name]].value
            if date_by_name[name] in movements
            else MISSING
            for name in schema
        ]
        records.append(CategoricalRecord(schema, values, label=s.label, rid=s.name))
    return CategoricalDataset(schema, records)
