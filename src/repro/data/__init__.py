"""Data representations used throughout the ROCK reproduction.

This subpackage contains the substrate data model:

* :mod:`repro.data.transactions` -- market-basket transactions
  (sets of items) and the :class:`~repro.data.transactions.TransactionDataset`
  container with its item vocabulary and indicator-matrix view.
* :mod:`repro.data.records` -- fixed-schema categorical records with
  missing values and the :class:`~repro.data.records.CategoricalDataset`
  container.
* :mod:`repro.data.timeseries` -- time-series points and the
  Up/Down/No categorical derivative transform of Section 5.1 of the
  paper (used for the mutual-funds experiment).
* :mod:`repro.data.io` -- plain-text readers/writers for the UCI
  ``.data`` CSV format and a simple one-transaction-per-line format.
"""

from repro.data.records import CategoricalDataset, CategoricalRecord, CategoricalSchema
from repro.data.timeseries import (
    Movement,
    TimeSeries,
    movements_to_record,
    series_to_categorical_dataset,
)
from repro.data.transactions import Transaction, TransactionDataset

__all__ = [
    "CategoricalDataset",
    "CategoricalRecord",
    "CategoricalSchema",
    "Movement",
    "TimeSeries",
    "Transaction",
    "TransactionDataset",
    "movements_to_record",
    "series_to_categorical_dataset",
]
