"""Market-basket transactions.

The paper's primary data model (Sections 1 and 3.1.1) is a database of
*transactions*, each of which is a finite set of items.  A transaction is
represented here as an immutable :class:`Transaction` wrapping a
``frozenset`` of hashable items, and a database as a
:class:`TransactionDataset`, which additionally exposes the item
vocabulary and a dense 0/1 indicator matrix used by the vectorised
neighbor computation and by the centroid-based baseline (Section 5:
"we handle categorical attributes by converting them to boolean
attributes with 0/1 values").
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any

import numpy as np

Item = Hashable


class Transaction:
    """An immutable set of items, optionally tagged with an identifier.

    Transactions compare equal (and hash) by their item set alone, so a
    :class:`Transaction` may be used interchangeably with a plain
    ``frozenset`` in dictionaries and set operations.

    Parameters
    ----------
    items:
        Any iterable of hashable items.  Duplicates collapse.
    tid:
        Optional external identifier (e.g. a customer id or a row
        number).  Ignored for equality and hashing.
    """

    __slots__ = ("_items", "tid")

    def __init__(self, items: Iterable[Item], tid: Any = None) -> None:
        self._items = frozenset(items)
        self.tid = tid

    @property
    def items(self) -> frozenset[Item]:
        """The item set of this transaction."""
        return self._items

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._items

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Transaction):
            return self._items == other._items
        if isinstance(other, (frozenset, set)):
            return self._items == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._items)

    def __or__(self, other: "Transaction | frozenset[Item]") -> frozenset[Item]:
        return self._items | _item_set(other)

    def __and__(self, other: "Transaction | frozenset[Item]") -> frozenset[Item]:
        return self._items & _item_set(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(i) for i in sorted(self._items, key=repr))
        tag = f", tid={self.tid!r}" if self.tid is not None else ""
        return f"Transaction({{{inner}}}{tag})"

    def jaccard(self, other: "Transaction | frozenset[Item]") -> float:
        """Jaccard coefficient |T1 ∩ T2| / |T1 ∪ T2| (footnote 2 of the paper).

        Two empty transactions are defined to have similarity 0.0 --
        the paper never compares empty transactions, and treating them
        as dissimilar keeps empty records from becoming universal
        neighbors.
        """
        other_items = _item_set(other)
        union = len(self._items | other_items)
        if union == 0:
            return 0.0
        return len(self._items & other_items) / union


def _item_set(value: "Transaction | frozenset[Item] | set[Item]") -> frozenset[Item]:
    if isinstance(value, Transaction):
        return value.items
    return frozenset(value)


class TransactionDataset(Sequence[Transaction]):
    """An in-memory database of transactions.

    The dataset owns its item *vocabulary* (the sorted union of all items,
    by default) so that every transaction can be embedded as a 0/1 row of
    an indicator matrix.  The indicator matrix is the substrate both for
    the vectorised neighbor computation (set intersections become an
    integer matrix product) and for the euclidean-distance baseline.

    Parameters
    ----------
    transactions:
        The transactions.  Plain iterables of items are wrapped into
        :class:`Transaction` objects.
    vocabulary:
        Optional explicit item vocabulary.  When omitted, the sorted
        union of all items is used.  Items of mixed, unsortable types
        fall back to insertion order.
    """

    def __init__(
        self,
        transactions: Iterable[Transaction | Iterable[Item]],
        vocabulary: Sequence[Item] | None = None,
    ) -> None:
        self._transactions: list[Transaction] = [
            t if isinstance(t, Transaction) else Transaction(t) for t in transactions
        ]
        if vocabulary is None:
            self._vocabulary = self._derive_vocabulary()
        else:
            self._vocabulary = list(vocabulary)
            if len(set(self._vocabulary)) != len(self._vocabulary):
                raise ValueError("vocabulary contains duplicate items")
            universe = set(self._vocabulary)
            for t in self._transactions:
                extra = t.items - universe
                if extra:
                    raise ValueError(
                        f"transaction {t!r} contains items outside the "
                        f"vocabulary: {sorted(map(repr, extra))}"
                    )
        self._item_index = {item: i for i, item in enumerate(self._vocabulary)}
        self._indicator: np.ndarray | None = None

    def _derive_vocabulary(self) -> list[Item]:
        seen: dict[Item, None] = {}
        for t in self._transactions:
            for item in t:
                seen.setdefault(item, None)
        items = list(seen)
        try:
            items.sort()  # type: ignore[arg-type]
        except TypeError:
            pass  # mixed unsortable types: keep insertion order
        return items

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return TransactionDataset(
                self._transactions[index], vocabulary=self._vocabulary
            )
        return self._transactions[index]

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    # -- vocabulary & matrix views ----------------------------------------
    @property
    def vocabulary(self) -> list[Item]:
        """The item vocabulary, one column of the indicator matrix per item."""
        return list(self._vocabulary)

    @property
    def n_items(self) -> int:
        return len(self._vocabulary)

    def item_index(self, item: Item) -> int:
        """Column index of ``item`` in the indicator matrix."""
        return self._item_index[item]

    def indicator_matrix(self) -> np.ndarray:
        """Dense ``(n_transactions, n_items)`` uint8 0/1 matrix.

        Row ``i`` has a 1 in column ``j`` iff transaction ``i`` contains
        vocabulary item ``j`` -- exactly the boolean-attribute view the
        paper uses in Example 1.1 and for the traditional baseline.
        The matrix is computed once and cached.
        """
        if self._indicator is None:
            mat = np.zeros((len(self._transactions), len(self._vocabulary)), dtype=np.uint8)
            for i, t in enumerate(self._transactions):
                for item in t:
                    mat[i, self._item_index[item]] = 1
            self._indicator = mat
        return self._indicator

    def sizes(self) -> np.ndarray:
        """Transaction sizes |T_i| as an int64 vector."""
        return np.array([len(t) for t in self._transactions], dtype=np.int64)

    def subset(self, indices: Iterable[int]) -> "TransactionDataset":
        """A new dataset containing the given rows, sharing the vocabulary."""
        rows = [self._transactions[i] for i in indices]
        return TransactionDataset(rows, vocabulary=self._vocabulary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDataset(n={len(self._transactions)}, "
            f"items={len(self._vocabulary)})"
        )
