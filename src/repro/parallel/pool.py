"""The chunked-execution layer: ordered maps over a one-time-init pool.

Extracted and generalised from the serving-side executor
(:mod:`repro.serve.parallel`, PR 1/2), which is now a thin consumer.
The pattern both the fit and serve paths share:

* a *payload* too big to ship per task (a fitted model, an encoded
  indicator matrix) travels **once per worker** through the pool
  initializer and lands in a module global;
* tasks are small descriptors (row ranges, point chunks) mapped with
  ``imap``, which yields results in **submission order** -- merges are
  order-preserving by construction, never completion-order, so any
  worker count reproduces the serial output byte for byte;
* ``workers <= 1`` short-circuits to an in-process loop (the
  initializer runs locally), so small inputs never pay process startup.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Iterator
from typing import Any

__all__ = [
    "default_workers",
    "imap_chunked",
    "iter_chunks",
    "map_chunked",
    "resolve_workers",
]


def default_workers() -> int:
    """A sane worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a ``workers`` argument to a concrete process count.

    ``None`` means serial (1); ``"auto"`` resolves to
    :func:`default_workers`; an integer is validated and passed through.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers == "auto":
            return default_workers()
        raise ValueError(f"workers must be a positive int, 'auto' or None, got {workers!r}")
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be positive, got {workers!r}")
    return count


def iter_chunks(items: Iterable[Any], chunk_size: int) -> Iterator[list[Any]]:
    """Slice any iterable into lists of at most ``chunk_size`` items."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    chunk: list[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def imap_chunked(
    task_fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
) -> Iterator[Any]:
    """Yield ``task_fn(task)`` for every task, in submission order.

    With ``workers > 1`` tasks run on a :class:`multiprocessing.Pool`
    whose per-worker state is built once by ``initializer(*initargs)``;
    with ``workers <= 1`` the initializer runs in-process and tasks are
    mapped inline -- identical results either way.
    """
    if workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        for task in tasks:
            yield task_fn(task)
        return
    with multiprocessing.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        yield from pool.imap(task_fn, tasks)


def map_chunked(
    task_fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    workers: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
) -> list[Any]:
    """:func:`imap_chunked`, fully collected into a list."""
    return list(
        imap_chunked(
            task_fn, tasks, workers=workers,
            initializer=initializer, initargs=initargs,
        )
    )
