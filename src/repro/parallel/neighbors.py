"""Multi-worker neighbor graph over the PR 2 row-block schedule.

:func:`parallel_neighbor_graph` fans the blocked kernel's row blocks out
across a process pool.  The block scorer (the compact encoded matrix
plus flags, see :class:`repro.core.neighbors.BlockScorer`) ships **once
per worker** through the pool initializer; tasks are just ``(start,
stop)`` row ranges and results stream back through an ordered ``imap``,
so the merged neighbor lists are in row order regardless of which worker
finished first.  Block scoring is row-independent and every arithmetic
step is exact (integer intersections, one float64 division on identical
operands), so the output graph is bit-identical to the serial blocked
and dense paths for any worker count or block size.

Workers default to the CSR intersection scorer
(:class:`repro.core.neighbors.SparseTransactionScorer`: sparse product
plus an integer prefilter, ``O(nnz)`` instead of the dense matmul's
``O(rows * n * vocab)``) when scipy is importable and the data is
transactional, degrading to the dense-matmul scorer otherwise;
``prefer_sparse=False`` forces dense.  Either scorer yields identical
adjacency.  The default block size divides the memory budget by the
worker count so the *aggregate* working set of concurrent blocks stays
within budget.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.neighbors import (
    DEFAULT_MEMORY_BUDGET,
    BlockScorer,
    NeighborGraph,
    build_block_scorer,
    default_block_size,
)
from repro.core.similarity import SimilarityFunction
from repro.obs.registry import MetricsRegistry
from repro.parallel.pool import imap_chunked, resolve_workers

__all__ = [
    "PARALLEL_MIN_POINTS",
    "block_tasks",
    "parallel_neighbor_graph",
    "worker_block_size",
]

# Below this many points process startup dominates any parallel win;
# fall back to the serial blocked kernel.
PARALLEL_MIN_POINTS = 2048

# Per-worker state installed by the pool initializer (fork/spawn safe:
# each worker process gets its own copy).
_WORKER_STATE: dict[str, Any] = {}


def _init_neighbor_worker(scorer: BlockScorer, theta: float) -> None:
    _WORKER_STATE["scorer"] = scorer
    _WORKER_STATE["theta"] = theta


def _score_neighbor_block(
    task: tuple[int, int],
) -> tuple[list[Any], dict[str, Any]]:
    """Score one row block; ship its rows plus a metrics *delta*.

    Each task records into a fresh worker-local
    :class:`~repro.obs.registry.MetricsRegistry` whose snapshot rides
    back with the rows, so per-block activity inside the process pool
    is observable in the parent (the same delta pattern the serving
    path uses for :class:`~repro.serve.metrics.ServeMetrics`).
    """
    start, stop = task
    scorer: BlockScorer = _WORKER_STATE["scorer"]
    t0 = time.perf_counter()
    rows = scorer.neighbor_rows(start, stop, _WORKER_STATE["theta"])
    local = MetricsRegistry()
    local.inc("fit.neighbors.blocks")
    local.inc("fit.neighbors.rows", stop - start)
    local.inc("fit.neighbors.edges", sum(len(r) for r in rows))
    local.observe("fit.neighbors.block_seconds", time.perf_counter() - t0)
    return rows, local.snapshot()


def block_tasks(n: int, block_size: int) -> list[tuple[int, int]]:
    """The ``(start, stop)`` row ranges of the block schedule, in order."""
    return [
        (start, min(start + block_size, n)) for start in range(0, n, block_size)
    ]


def worker_block_size(
    n: int, workers: int, memory_budget: int | None = None
) -> int:
    """Per-worker block size: the budget is split across workers so the
    sum of concurrently-resident block working sets stays within it."""
    budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
    return default_block_size(n, max(budget // max(workers, 1), 1))


def parallel_neighbor_graph(
    points: Any,
    theta: float,
    similarity: SimilarityFunction | None = None,
    workers: int | str | None = "auto",
    block_size: int | None = None,
    memory_budget: int | None = None,
    min_points: int = PARALLEL_MIN_POINTS,
    prefer_sparse: bool = True,
    registry: MetricsRegistry | None = None,
) -> NeighborGraph:
    """Blocked neighbor graph with row blocks fanned out across workers.

    Identical output to :func:`repro.core.neighbors.blocked_neighbor_graph`
    (and the dense path) for every worker count.  Below ``min_points``
    points, or at a resolved worker count of 1, the same scorer runs
    the block schedule inline -- no pool, no process startup, same
    results.  With a ``registry``, every block's worker-side metrics
    delta (block count, rows, edges, per-block seconds) is merged in as
    it streams back.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be positive")
    count = resolve_workers(workers)
    n = len(points)
    if n < min_points:
        count = 1
    scorer = build_block_scorer(points, similarity, prefer_sparse=prefer_sparse)
    if block_size is None:
        block_size = worker_block_size(n, count, memory_budget)
    lists: list[Any] = []
    for rows, delta in imap_chunked(
        _score_neighbor_block,
        block_tasks(n, block_size),
        workers=count,
        initializer=_init_neighbor_worker,
        initargs=(scorer, theta),
    ):
        lists.extend(rows)
        if registry is not None:
            registry.merge(delta)
    return NeighborGraph.from_neighbor_lists(lists, theta=theta, validate=False)
