"""Vectorised and fused Figure 4 link counting over the block schedule.

The Figure 4 algorithm charges +1 to every unordered pair drawn from
each point's neighbor list.  Here that inner pair loop becomes array
arithmetic: the pairs of a list of length ``m`` are the cached
``np.triu_indices(m, 1)`` gather, each pair is packed into a single
int64 code ``i * n + j`` (``i < j``), and counting is one sort plus a
run-length reduction.  Partial counts from different chunks merge by
concatenation + ``np.add.reduceat`` -- integer sums, so the totals are
exactly the serial table's.

Two entry points:

* :func:`parallel_link_table` -- Figure 4 over an existing
  :class:`~repro.core.neighbors.NeighborGraph`, neighbor-list chunks
  fanned out across workers.
* :func:`fused_neighbor_links` -- the fused kernel: each row block's
  neighbor lists are scored, converted to pair counts, and discarded,
  so the full neighbor graph never exists in the parent.  Peak memory
  is one block plus the (compacted) running pair counts, below the
  blocked path which must hold every neighbor list to build the graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.links import LinkTable
from repro.core.neighbors import (
    BlockScorer,
    NeighborGraph,
    build_block_scorer,
)
from repro.core.similarity import SimilarityFunction
from repro.obs.registry import MetricsRegistry
from repro.parallel.neighbors import block_tasks, worker_block_size
from repro.parallel.pool import imap_chunked, resolve_workers

__all__ = [
    "FusedFitResult",
    "fused_neighbor_links",
    "merge_pair_counts",
    "pair_link_counts",
    "parallel_link_table",
]

_EMPTY = np.empty(0, dtype=np.int64)

# Compact the running pair-count chunks whenever their combined length
# passes this many codes (16 MB of int64 pairs) -- bounds the fused
# kernel's parent-side memory at O(linked pairs), not O(increments).
_COMPACT_LIMIT = 1 << 21

# Cache of np.triu_indices(m, 1) keyed by m: neighbor lists repeat the
# same handful of lengths, and regenerating the index pair per list
# dominates the packing cost otherwise.
_TRIU_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _triu_pairs(m: int) -> tuple[np.ndarray, np.ndarray]:
    pair = _TRIU_CACHE.get(m)
    if pair is None:
        pair = np.triu_indices(m, 1)
        _TRIU_CACHE[m] = pair
    return pair


def pair_link_counts(
    neighbor_lists: list[np.ndarray], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate Figure 4 pair increments for a chunk of neighbor lists.

    Returns ``(codes, counts)``: sorted unique pair codes ``i * n + j``
    (``i < j``, valid because neighbor lists are sorted ascending) and
    the number of common neighbors each pair accumulated *within this
    chunk*.
    """
    chunks: list[np.ndarray] = []
    for neighbors in neighbor_lists:
        m = len(neighbors)
        if m < 2:
            continue
        nbr = np.asarray(neighbors, dtype=np.int64)
        a, b = _triu_pairs(m)
        chunks.append(nbr[a] * n + nbr[b])
    if not chunks:
        return _EMPTY, _EMPTY
    codes = np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
    codes.sort()
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(codes)) + 1]
    )
    counts = np.diff(np.concatenate([starts, [codes.size]]))
    return codes[starts], counts


def merge_pair_counts(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Sum per-chunk ``(codes, counts)`` pairs into one sorted table.

    Pure integer addition -- the merged counts equal what a single
    serial pass over all lists would have produced, independent of how
    the lists were chunked.
    """
    parts = [part for part in parts if part[0].size]
    if not parts:
        return _EMPTY, _EMPTY
    if len(parts) == 1:
        return parts[0]
    codes = np.concatenate([codes for codes, _ in parts])
    counts = np.concatenate([counts for _, counts in parts])
    order = np.argsort(codes, kind="stable")
    codes = codes[order]
    counts = counts[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(codes)) + 1])
    return codes[starts], np.add.reduceat(counts, starts)


# -- parallel Figure 4 over an existing graph ---------------------------------

_LINK_STATE: dict[str, Any] = {}


def _init_link_worker(lists: list[np.ndarray], n: int) -> None:
    _LINK_STATE["lists"] = lists
    _LINK_STATE["n"] = n


def _count_link_chunk(
    task: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
    """Count one chunk's pair links; ship counts plus a metrics delta."""
    start, stop = task
    t0 = time.perf_counter()
    codes, counts = pair_link_counts(
        _LINK_STATE["lists"][start:stop], _LINK_STATE["n"]
    )
    local = MetricsRegistry()
    local.inc("fit.links.chunks")
    local.inc("fit.links.pair_increments", int(counts.sum()))
    local.observe("fit.links.chunk_seconds", time.perf_counter() - t0)
    return codes, counts, local.snapshot()


def parallel_link_table(
    graph: NeighborGraph,
    workers: int | str | None = "auto",
    chunk_size: int | None = None,
    registry: MetricsRegistry | None = None,
) -> LinkTable:
    """Figure 4 over chunks of neighbor lists, merged order-preservingly.

    Exactly equals :func:`repro.core.links.sparse_link_table` for any
    worker count or chunking (integer pair sums commute).  With
    ``workers <= 1`` this is still the vectorised pair-code counter, a
    large constant-factor win over the per-pair dict loop.  With a
    ``registry``, worker-side metrics deltas are merged in per chunk.
    """
    count = resolve_workers(workers)
    lists = graph.neighbor_lists()
    n = graph.n
    if chunk_size is None:
        chunk_size = max(256, -(-n // max(4 * count, 1)))
    parts: list[tuple[np.ndarray, np.ndarray]] = []
    for codes, counts, delta in imap_chunked(
        _count_link_chunk,
        block_tasks(n, chunk_size),
        workers=count if n >= 4 * chunk_size else 1,
        initializer=_init_link_worker,
        initargs=(lists, n),
    ):
        parts.append((codes, counts))
        if registry is not None:
            registry.merge(delta)
    return LinkTable.from_pair_counts(n, *merge_pair_counts(parts))


# -- the fused neighbor+link kernel -------------------------------------------

_FUSED_STATE: dict[str, Any] = {}


def _init_fused_worker(scorer: BlockScorer, theta: float, keep_graph: bool) -> None:
    _FUSED_STATE["scorer"] = scorer
    _FUSED_STATE["theta"] = theta
    _FUSED_STATE["keep_graph"] = keep_graph


def _fused_block(
    task: tuple[int, int],
) -> tuple[
    np.ndarray, np.ndarray, np.ndarray, list[np.ndarray] | None, dict[str, Any]
]:
    start, stop = task
    scorer: BlockScorer = _FUSED_STATE["scorer"]
    t0 = time.perf_counter()
    rows = scorer.neighbor_rows(start, stop, _FUSED_STATE["theta"])
    codes, counts = pair_link_counts(rows, scorer.n)
    degrees = np.array([len(r) for r in rows], dtype=np.int64)
    local = MetricsRegistry()
    local.inc("fit.fused.blocks")
    local.inc("fit.fused.rows", stop - start)
    local.inc("fit.fused.pair_increments", int(counts.sum()))
    local.observe("fit.fused.block_seconds", time.perf_counter() - t0)
    return (
        codes, counts, degrees,
        (rows if _FUSED_STATE["keep_graph"] else None),
        local.snapshot(),
    )


@dataclass
class FusedFitResult:
    """Output of the fused kernel: links and degrees, graph optional.

    ``links`` is the full Figure 4 link table over all ``n`` points;
    ``degrees[i]`` is point ``i``'s neighbor count (what isolated-point
    pruning needs, since the graph itself may not exist); ``graph`` is
    populated only when ``keep_graph=True`` was requested.
    """

    links: LinkTable
    degrees: np.ndarray
    theta: float
    graph: NeighborGraph | None = None

    @property
    def n(self) -> int:
        return self.links.n


def fused_neighbor_links(
    points: Any,
    theta: float,
    similarity: SimilarityFunction | None = None,
    workers: int | str | None = "auto",
    block_size: int | None = None,
    memory_budget: int | None = None,
    keep_graph: bool = False,
    prefer_sparse: bool = True,
    registry: MetricsRegistry | None = None,
) -> FusedFitResult:
    """Score, threshold, and link-count each row block in one pass.

    Per block: compute its neighbor rows (same scorer as the parallel
    neighbor kernel), immediately reduce them to packed pair counts,
    record the degrees, and discard the rows.  The parent merges the
    integer pair counts (compacting periodically) and builds one
    :class:`~repro.core.links.LinkTable` at the end -- bit-identical to
    ``compute_links(compute_neighbor_graph(...))`` while never holding
    the neighbor graph (unless ``keep_graph=True``, for tests and
    callers that want both from a single pass).
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be positive")
    count = resolve_workers(workers)
    n = len(points)
    scorer = build_block_scorer(points, similarity, prefer_sparse=prefer_sparse)
    if block_size is None:
        block_size = worker_block_size(n, count, memory_budget)

    pending: list[tuple[np.ndarray, np.ndarray]] = []
    pending_codes = 0
    degree_blocks: list[np.ndarray] = []
    kept_rows: list[np.ndarray] = []
    for codes, counts, degrees, rows, delta in imap_chunked(
        _fused_block,
        block_tasks(n, block_size),
        workers=count,
        initializer=_init_fused_worker,
        initargs=(scorer, theta, keep_graph),
    ):
        if registry is not None:
            registry.merge(delta)
        pending.append((codes, counts))
        pending_codes += codes.size
        degree_blocks.append(degrees)
        if rows is not None:
            kept_rows.extend(rows)
        if pending_codes > _COMPACT_LIMIT:
            pending = [merge_pair_counts(pending)]
            pending_codes = pending[0][0].size

    links = LinkTable.from_pair_counts(n, *merge_pair_counts(pending))
    degrees = (
        np.concatenate(degree_blocks)
        if degree_blocks
        else np.zeros(0, dtype=np.int64)
    )
    graph = (
        NeighborGraph.from_neighbor_lists(kept_rows, theta=theta, validate=False)
        if keep_graph
        else None
    )
    return FusedFitResult(links=links, degrees=degrees, theta=theta, graph=graph)
