"""Per-component fan-out of the fast merge engine's agglomerations.

The component partition of :mod:`repro.core.merge` makes the merge
phase embarrassingly parallel: each :class:`~repro.core.merge.ComponentProblem`
is an independent sub-problem whose greedy stream depends on nothing
outside the component.  Problems are chunked and mapped over the
:mod:`repro.parallel.pool` workers in submission order, so the stream
list -- and therefore the replayed result -- is byte-identical for any
worker count.  Only the built-in goodness measures are shipped (by
kernel *name*; the kernel is rebuilt worker-side from the pool
initializer, custom callables are not assumed picklable) and each chunk
returns a :class:`~repro.obs.registry.MetricsRegistry` delta merged
back in the parent, matching the PR 3 kernels.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.goodness import merge_kernel_by_name
from repro.core.merge import (
    ComponentProblem,
    MergeStream,
    component_merge_stream,
)
from repro.obs.registry import MetricsRegistry
from repro.parallel.pool import imap_chunked, iter_chunks

__all__ = ["parallel_component_streams"]

_MERGE_STATE: dict[str, Any] = {}


def _init_merge_worker(kernel_name: str, f_theta: float, n_max: int) -> None:
    _MERGE_STATE["kernel"] = merge_kernel_by_name(kernel_name, f_theta, n_max)


def _stream_chunk(
    chunk: list[ComponentProblem],
) -> tuple[list[MergeStream], dict[str, Any]]:
    """Agglomerate one chunk of components; ship streams plus metrics."""
    kernel = _MERGE_STATE["kernel"]
    t0 = time.perf_counter()
    streams = [component_merge_stream(problem, kernel) for problem in chunk]
    local = MetricsRegistry()
    local.inc("fit.cluster.chunks")
    local.inc("fit.cluster.heap_ops", sum(s.heap_ops for s in streams))
    local.observe("fit.cluster.chunk_seconds", time.perf_counter() - t0)
    return streams, local.snapshot()


def parallel_component_streams(
    problems: list[ComponentProblem],
    f_theta: float,
    kernel_name: str,
    n_max: int,
    workers: int,
    registry: MetricsRegistry | None = None,
    chunk_size: int | None = None,
) -> list[MergeStream]:
    """Greedy merge streams for every component, pool-parallel.

    Returns streams in ``problems`` order (``imap`` preserves
    submission order), so the caller's replay is independent of the
    worker count.  ``chunk_size`` defaults to a quarter-share per
    worker to amortise IPC over the many-small-components case.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(problems) // max(4 * workers, 1)))
    streams: list[MergeStream] = []
    for chunk_streams, delta in imap_chunked(
        _stream_chunk,
        iter_chunks(problems, chunk_size),
        workers=workers if len(problems) > 1 else 1,
        initializer=_init_merge_worker,
        initargs=(kernel_name, f_theta, n_max),
    ):
        streams.extend(chunk_streams)
        if registry is not None:
            registry.merge(delta)
    return streams
