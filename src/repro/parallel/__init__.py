"""Shared chunked multi-worker execution for the fit and serve paths.

The ROCK cost profile (paper Section 4.4) is dominated by the neighbor
and link kernels -- ``O(n^2 m)`` set intersections plus ``O(sum m_i^2)``
link increments.  PR 2 bounded their memory with a serial row-block
kernel; this package makes those same row blocks the unit of
parallelism:

* :mod:`repro.parallel.pool` -- the generic chunked-execution layer
  (order-preserving ``imap`` over a worker pool whose one-time payload
  travels through the pool initializer, with a transparent serial
  fallback).  :mod:`repro.serve.parallel` is a thin consumer of it.
* :mod:`repro.parallel.neighbors` --
  :func:`~repro.parallel.neighbors.parallel_neighbor_graph`, the PR 2
  blocked neighbor kernel with row blocks fanned out across workers.
* :mod:`repro.parallel.links` -- a vectorised Figure 4 link counter
  (:func:`~repro.parallel.links.parallel_link_table`) and the **fused**
  neighbor+link kernel
  (:func:`~repro.parallel.links.fused_neighbor_links`) that accumulates
  link counts block by block without keeping the neighbor graph.

Every kernel here is a pure optimisation: outputs are exactly equal to
the serial dense/blocked paths (property-tested), and merges preserve
block order so runs are deterministic for any worker count.
"""

from repro.parallel.links import (
    FusedFitResult,
    fused_neighbor_links,
    merge_pair_counts,
    pair_link_counts,
    parallel_link_table,
)
from repro.parallel.neighbors import (
    PARALLEL_MIN_POINTS,
    block_tasks,
    parallel_neighbor_graph,
    worker_block_size,
)
from repro.parallel.pool import (
    default_workers,
    imap_chunked,
    iter_chunks,
    map_chunked,
    resolve_workers,
)

__all__ = [
    "FusedFitResult",
    "PARALLEL_MIN_POINTS",
    "block_tasks",
    "default_workers",
    "fused_neighbor_links",
    "imap_chunked",
    "iter_chunks",
    "map_chunked",
    "merge_pair_counts",
    "pair_link_counts",
    "parallel_link_table",
    "parallel_neighbor_graph",
    "resolve_workers",
    "worker_block_size",
]
