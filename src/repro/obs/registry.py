"""A thread-safe registry of named counters, gauges, and histograms.

This is the metrics substrate shared by the fit and serve paths.  It
generalises what used to be hand-rolled inside
:mod:`repro.serve.metrics` (``_LatencyStat`` and the batch-size bucket
array): every instrument lives under a dotted name in one
:class:`MetricsRegistry`, all mutation happens behind a single lock,
and the whole registry reduces to a plain-dict :meth:`snapshot` that is
JSON-ready and **mergeable** -- a worker process records into its own
registry, ships ``snapshot()`` back with its results, and the parent
folds it in with :meth:`merge`.  Merging is associative and
order-independent for counters and histograms (pure addition /
min-max), which is what makes traces survive the process pool.

Instruments
-----------
* :class:`Counter` -- a monotonically increasing number (``inc``).
* :class:`Gauge` -- a point-in-time value (``set``); merge is
  last-write-wins (the incoming snapshot overwrites).
* :class:`Histogram` -- observation count / sum / min / max plus
  optional cumulative-style bucket counts over fixed upper edges (the
  last bucket is open-ended).  With ``buckets=()`` it degrades to a
  summary (exactly the old ``_LatencyStat``).
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "bucket_labels"]

_INF = float("inf")


def bucket_labels(edges: Sequence[float]) -> list[str]:
    """Human-readable labels for bucket edges: ``<=e`` ... ``>last``."""
    fmt = [f"<={_fmt_edge(e)}" for e in edges]
    if edges:
        fmt.append(f">{_fmt_edge(edges[-1])}")
    return fmt


def _fmt_edge(edge: float) -> str:
    return str(int(edge)) if float(edge).is_integer() else str(edge)


class Counter:
    """A monotonically increasing value.  Mutate via :meth:`inc`."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value.  Mutate via :meth:`set`."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Count/sum/min/max plus optional bucket counts over fixed edges.

    ``edges`` are ascending upper bounds; one extra open-ended bucket
    catches everything above the last edge.  An empty ``edges`` tuple
    makes this a pure summary.
    """

    __slots__ = ("_lock", "edges", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, lock: threading.Lock, edges: Sequence[float] = ()) -> None:
        edges = tuple(float(e) for e in edges)
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly ascending, got {edges}")
        self._lock = lock
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1 if edges else 0)
        self.count = 0
        self.sum = 0.0
        self.min = _INF
        self.max = -_INF

    def observe(self, value: int | float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if self.edges:
                self.bucket_counts[self._bucket(value)] += 1

    def _bucket(self, value: float) -> int:
        for i, edge in enumerate(self.edges):
            if value <= edge:
                return i
        return len(self.edges)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view (caller holds no lock; registry locks).

        ``min``/``max`` are 0.0 when empty; after merging a legacy
        snapshot that never tracked extrema they can be *unknown*
        despite a positive count, in which case the keys are omitted
        (keeping the snapshot finite and re-mergeable).
        """
        snap: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
        }
        if self.count == 0:
            snap["min"] = 0.0
            snap["max"] = 0.0
        else:
            if self.min != _INF:
                snap["min"] = self.min
            if self.max != -_INF:
                snap["max"] = self.max
        if self.edges:
            snap["edges"] = list(self.edges)
            snap["bucket_counts"] = list(self.bucket_counts)
        return snap

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Missing ``min``/``max`` keys are treated as unknown and leave
        the running extrema untouched (used by legacy adapters that
        never tracked them); a zero-count snapshot is a no-op.
        """
        count = int(snap.get("count", 0))
        incoming_edges = tuple(float(e) for e in snap.get("edges", ()))
        if incoming_edges and self.edges and incoming_edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different bucket edges: "
                f"{self.edges} vs {incoming_edges}"
            )
        if count == 0:
            return
        self.count += count
        self.sum += float(snap.get("sum", 0.0))
        if "min" in snap:
            self.min = min(self.min, float(snap["min"]))
        if "max" in snap:
            self.max = max(self.max, float(snap["max"]))
        if incoming_edges:
            if not self.edges:
                self.edges = incoming_edges
                self.bucket_counts = [0] * (len(incoming_edges) + 1)
            for i, c in enumerate(snap.get("bucket_counts", ())):
                self.bucket_counts[i] += int(c)

    def labeled_buckets(self) -> dict[str, int]:
        """Bucket counts keyed by ``<=edge`` / ``>last`` labels."""
        return dict(zip(bucket_labels(self.edges), self.bucket_counts))


class MetricsRegistry:
    """Named instruments behind one lock, with snapshot/merge semantics.

    ``counter``/``gauge``/``histogram`` create-or-return instruments by
    name (a name is bound to one instrument kind for the registry's
    lifetime); ``inc``/``set_gauge``/``observe`` are one-shot
    conveniences for call sites that don't keep a handle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access --------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_free(name, self._counters)
            return self._counters.setdefault(name, Counter(self._lock))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_free(name, self._gauges)
            return self._gauges.setdefault(name, Gauge(self._lock))

    def histogram(self, name: str, edges: Sequence[float] = ()) -> Histogram:
        with self._lock:
            self._check_free(name, self._histograms)
            existing = self._histograms.get(name)
            if existing is None:
                existing = self._histograms[name] = Histogram(self._lock, edges)
            elif edges and tuple(float(e) for e in edges) != existing.edges:
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{existing.edges}"
                )
            return existing

    def _check_free(self, name: str, own: dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already bound to another "
                    "instrument kind"
                )

    # -- one-shot conveniences ----------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: int | float) -> None:
        self.histogram(name).observe(value)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of every instrument, taken atomically."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.snapshot()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters add, histograms combine count/sum/min/max and
        bucket-wise counts, gauges take the incoming value.  Merging an
        empty (or partial) snapshot is a no-op for the missing parts,
        and instruments absent from this registry are created -- two
        registries always merge cleanly.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist_snap in snap.get("histograms", {}).items():
            hist = self.histogram(name, hist_snap.get("edges", ()))
            with self._lock:
                hist.merge_snapshot(hist_snap)
