"""Nestable tracing spans for fit and serve runs.

A :class:`Tracer` hands out ``with tracer.span("neighbors", n=...)``
context managers.  Each span records wall-clock seconds
(``perf_counter``), CPU seconds (``process_time``), and the delta of
the process's peak-RSS high-water mark across the span (0 when the
span allocated nothing beyond the previous peak, or on platforms
without :mod:`resource`).  Spans nest lexically -- a span opened while
another is active becomes its child -- and the finished tree
serialises to plain dicts, ready for a
:class:`~repro.obs.manifest.RunManifest`.

Spans are exception-safe: a span whose body raises still closes, keeps
its timings, records the error as ``"TypeError: ..."`` on the span,
and re-raises.  The active-span stack is thread-local, so concurrent
threads each grow their own branch of the tree; every tracer carries a
:class:`~repro.obs.registry.MetricsRegistry` (created on demand) so
traced code can record metrics through the same object it was handed.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "Tracer", "peak_rss_bytes"]

try:  # pragma: no cover - resource is stdlib on every POSIX platform
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """This process's peak-RSS high-water mark in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to bytes here.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


@dataclass
class Span:
    """One timed region; ``children`` are spans opened inside it."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    rss_delta_bytes: int = 0
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "rss_delta_bytes": self.rss_delta_bytes,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            rss_delta_bytes=int(data.get("rss_delta_bytes", 0)),
            error=data.get("error"),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()


class Tracer:
    """Collects a span tree (plus a metrics registry) for one run."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; yields the :class:`Span` being recorded.

        The yielded span's timing fields are filled when the block
        exits (normally or by exception), so they may be read right
        after the ``with`` statement.
        """
        span = Span(name=name, attrs=attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        rss0 = peak_rss_bytes()
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.wall_seconds = time.perf_counter() - wall0
            span.cpu_seconds = time.process_time() - cpu0
            span.rss_delta_bytes = max(peak_rss_bytes() - rss0, 0)
            stack.pop()

    def attach_root(self, span: Span) -> None:
        """Attach an externally-managed span as a new root.

        For long-lived owners (e.g. the HTTP server) whose root span
        outlives any lexical ``with`` block: the owner appends children
        and fills the timing fields itself.
        """
        with self._lock:
            self._roots.append(span)

    def spans(self) -> list[Span]:
        """The root spans recorded so far (live objects, not copies)."""
        with self._lock:
            return list(self._roots)

    def span_names(self) -> set[str]:
        """Every span name in the tree, flattened."""
        return {
            span.name for root in self.spans() for span in root.iter_spans()
        }

    def to_dicts(self) -> list[dict[str, Any]]:
        """The span tree as JSON-ready dicts."""
        return [span.to_dict() for span in self.spans()]
