"""repro.obs -- the shared observability substrate for fit and serve.

The ROADMAP's north star is a production system, and the paper argues
its own case with wall-clock curves (Figure 5) and per-phase cost
analysis (Section 4.4) -- both need first-class, reproducible
instrumentation.  This package is that layer, dependency-free:

* :class:`~repro.obs.registry.MetricsRegistry` -- thread-safe named
  counters / gauges / histograms with ``snapshot()``/``merge()``
  semantics, so worker processes record locally and ship deltas back
  (:class:`~repro.serve.metrics.ServeMetrics` is now a thin adapter
  over it);
* :class:`~repro.obs.trace.Tracer` -- nestable ``span()`` context
  managers capturing wall time, CPU time, and peak-RSS delta into a
  serialisable span tree;
* :mod:`~repro.obs.export` -- JSON-lines and Prometheus text
  exposition exporters (plain strings);
* :class:`~repro.obs.manifest.RunManifest` -- span tree + metrics
  snapshot + host metadata + config in one versioned JSON artifact.

Quickstart::

    from repro import RockPipeline
    from repro.obs import RunManifest, Tracer

    tracer = Tracer()
    result = RockPipeline(k=4, theta=0.5, fit_mode="parallel",
                          workers=2, seed=0).fit(points, tracer=tracer)
    RunManifest.from_tracer("fit", tracer,
                            config={"k": 4, "theta": 0.5}).save("run.json")
"""

from repro.obs.export import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    prometheus_name,
    spans_to_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    RunManifest,
    host_memory,
    host_metadata,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_labels,
)
from repro.obs.trace import Span, Tracer, peak_rss_bytes

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Tracer",
    "bucket_labels",
    "host_memory",
    "host_metadata",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "peak_rss_bytes",
    "prometheus_name",
    "spans_to_jsonl",
]
