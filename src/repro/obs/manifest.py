"""The per-run artifact: span tree + metrics + host metadata + config.

A :class:`RunManifest` is the single JSON file a fit, serve run, or
benchmark leaves behind: what ran (``name`` + ``config``), where it ran
(:func:`host_metadata`), how long each phase took (the span tree), and
every counter that moved (the registry snapshot).  Persistence follows
the library's no-pickle conventions: plain JSON, explicit format name
and version, hard rejection of mismatched versions -- the same contract
as :class:`~repro.serve.model.RockModel`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from repro.obs.trace import Span, Tracer

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RunManifest",
    "host_metadata",
]

MANIFEST_FORMAT = "rock-run-manifest"
MANIFEST_VERSION = 1


def host_metadata() -> dict[str, Any]:
    """Facts about the machine a run executed on.

    The single source of the host block embedded in manifests and in
    checked-in benchmark results (``benchmarks/machine.py`` renders its
    text summary from this) -- absolute numbers are hardware-bound, so
    every artifact says where it came from.
    """
    meta: dict[str, Any] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    meta["mem_total_bytes"], meta["mem_available_bytes"] = host_memory()
    try:
        import numpy

        meta["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        meta["numpy"] = None
    try:
        from scipy import __version__ as scipy_version

        meta["scipy"] = scipy_version
    except ImportError:  # pragma: no cover - scipy present in dev envs
        meta["scipy"] = None
    return meta


def host_memory() -> tuple[int | None, int | None]:
    """``(total, available)`` physical memory in bytes, or ``None``s.

    Parsed from ``/proc/meminfo`` (Linux); on platforms without it --
    or with an unreadable/odd one -- both slots degrade to ``None``
    rather than raising, so manifests stay writable everywhere.  The
    available figure feeds the sharded fit's default memory budget.
    """
    total: int | None = None
    available: int | None = None
    try:
        with open("/proc/meminfo", encoding="ascii") as handle:
            for line in handle:
                key, _, rest = line.partition(":")
                if key == "MemTotal":
                    total = int(rest.split()[0]) * 1024
                elif key == "MemAvailable":
                    available = int(rest.split()[0]) * 1024
                if total is not None and available is not None:
                    break
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return None, None
    return total, available


@dataclass
class RunManifest:
    """Everything one run leaves behind, JSON-round-trippable.

    Attributes
    ----------
    name:
        What ran (``"fit"``, ``"assign"``, a benchmark name, ...).
    config:
        The run's parameters, free-form but JSON-plain.
    host:
        :func:`host_metadata`-shaped machine facts.
    metrics:
        A :meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict.
    spans:
        The serialised span tree
        (:meth:`~repro.obs.trace.Tracer.to_dicts`).
    created_unix:
        Seconds since the epoch when the manifest was assembled.
    """

    name: str
    config: dict[str, Any] = field(default_factory=dict)
    host: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    created_unix: float | None = None

    @classmethod
    def from_tracer(
        cls,
        name: str,
        tracer: Tracer,
        config: dict[str, Any] | None = None,
        host: dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Bundle a tracer's span tree and registry into a manifest."""
        return cls(
            name=name,
            config=dict(config or {}),
            host=host_metadata() if host is None else dict(host),
            metrics=tracer.registry.snapshot(),
            spans=tracer.to_dicts(),
            created_unix=time.time(),
        )

    # -- queries ------------------------------------------------------------

    def span_names(self) -> set[str]:
        """Every span name in the manifest's tree, flattened."""
        return {
            span.name
            for root in self.spans
            for span in Span.from_dict(root).iter_spans()
        }

    def find_span(self, name: str) -> dict[str, Any] | None:
        """The first span dict with this name, depth-first, or None."""

        def _walk(span: dict[str, Any]) -> dict[str, Any] | None:
            if span.get("name") == name:
                return span
            for child in span.get("children", []):
                found = _walk(child)
                if found is not None:
                    return found
            return None

        for root in self.spans:
            found = _walk(root)
            if found is not None:
                return found
        return None

    # -- JSON round-trip ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "name": self.name,
            "created_unix": self.created_unix,
            "config": dict(self.config),
            "host": dict(self.host),
            "metrics": self.metrics,
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"expected format {MANIFEST_FORMAT!r}, got {data.get('format')!r}"
            )
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported {MANIFEST_FORMAT} version {version!r} "
                f"(this library reads version {MANIFEST_VERSION})"
            )
        created = data.get("created_unix")
        return cls(
            name=str(data["name"]),
            config=dict(data.get("config", {})),
            host=dict(data.get("host", {})),
            metrics=dict(data.get("metrics", {})),
            spans=list(data.get("spans", [])),
            created_unix=None if created is None else float(created),
        )

    def save(self, target: str | Path | TextIO) -> None:
        """Write the manifest as JSON to a path or open text stream."""
        payload = self.to_dict()
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        else:
            json.dump(payload, target, indent=2)

    @classmethod
    def load(cls, source: str | Path | TextIO) -> "RunManifest":
        """Read a manifest saved by :meth:`save`."""
        if isinstance(source, (str, Path)):
            with open(source, encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.load(source)
        return cls.from_dict(data)
