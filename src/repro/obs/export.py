"""Exporters: JSON-lines and Prometheus text exposition, as plain strings.

Both exporters consume the plain-dict forms produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` and
:meth:`~repro.obs.trace.Tracer.to_dicts` -- no dependency on any
metrics stack.  The Prometheus output follows the text exposition
format version 0.0.4: one ``# HELP`` / ``# TYPE`` pair per metric
family (never duplicated), histograms as cumulative ``_bucket{le=...}``
series ending in ``le="+Inf"`` plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

__all__ = [
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "prometheus_name",
    "spans_to_jsonl",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "") -> str:
    """Sanitise a dotted metric name into a Prometheus metric name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_OK.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def metrics_to_jsonl(snapshot: dict[str, Any]) -> str:
    """One JSON object per line, one line per instrument.

    Counter/gauge lines are ``{"kind", "name", "value"}``; histogram
    lines carry the full histogram snapshot under ``"value"``.
    """
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for name, value in snapshot.get(kind, {}).items():
            lines.append(
                json.dumps(
                    {"kind": kind[:-1], "name": name, "value": value},
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_jsonl(span_dicts: list[dict[str, Any]]) -> str:
    """One JSON object per span, depth-first, with a ``path`` breadcrumb.

    The tree structure is preserved through ``path`` (slash-joined
    ancestor names) and ``depth``; ``children`` are not repeated
    inline.
    """
    lines: list[str] = []

    def _walk(span: dict[str, Any], path: str, depth: int) -> None:
        here = f"{path}/{span['name']}" if path else span["name"]
        record = {k: v for k, v in span.items() if k != "children"}
        record["path"] = here
        record["depth"] = depth
        lines.append(json.dumps(record, sort_keys=True))
        for child in span.get("children", []):
            _walk(child, here, depth + 1)

    for root in span_dicts:
        _walk(root, "", 0)
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_prometheus(snapshot: dict[str, Any], prefix: str = "rock") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Family *and* sample names are deduplicated: within one rendering,
    a metric family is emitted at most once, and a family whose sample
    names would collide with already-emitted samples (e.g. a gauge
    named ``foo_sum`` next to a histogram ``foo``, or two dotted names
    that sanitise identically) is skipped entirely rather than
    producing a malformed exposition.  First writer wins, in snapshot
    order (counters, then gauges, then histograms) -- combined
    snapshots such as a serving process's engine + server registry
    always render well-formed.
    """
    out: list[str] = []
    seen_families: set[str] = set()
    seen_samples: set[str] = set()

    def _family(name: str, kind: str, source: str, samples: list[str]) -> bool:
        if name in seen_families or any(s in seen_samples for s in samples):
            return False
        seen_families.add(name)
        seen_samples.update(samples)
        out.append(f"# HELP {name} {source}")
        out.append(f"# TYPE {name} {kind}")
        return True

    for name, value in snapshot.get("counters", {}).items():
        metric = prometheus_name(name, prefix) + "_total"
        if _family(metric, "counter", name, [metric]):
            out.append(f"{metric} {_fmt_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = prometheus_name(name, prefix)
        if _family(metric, "gauge", name, [metric]):
            out.append(f"{metric} {_fmt_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = prometheus_name(name, prefix)
        samples = [f"{metric}_bucket", f"{metric}_sum", f"{metric}_count"]
        if not _family(metric, "histogram", name, samples):
            continue
        edges = hist.get("edges", [])
        bucket_counts = hist.get("bucket_counts", [])
        cumulative = 0
        for edge, count in zip(edges, bucket_counts):
            cumulative += count
            out.append(
                f'{metric}_bucket{{le="{_fmt_value(float(edge))}"}} {cumulative}'
            )
        out.append(f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        out.append(f"{metric}_sum {_fmt_value(float(hist.get('sum', 0.0)))}")
        out.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(out) + ("\n" if out else "")
