"""Incremental clustering over unbounded data (Section 4.6, streamed).

The batch pipeline fits once and exits; this package keeps the fit
alive against a stream:

* :class:`~repro.stream.reservoir.OnlineReservoir` -- Vitter's
  Algorithm X as a persistent state machine, draw-for-draw identical
  to the batch :func:`~repro.core.sampling.reservoir_sample_skip`;
* :class:`~repro.stream.drift.DriftDetector` -- windowed
  assignment-quality gauges (outlier rate, mean score) whose threshold
  crossings trigger refits;
* :class:`~repro.stream.runner.StreamClusterer` -- the session loop:
  label arrivals, refit on interval/drift/drain (optionally resuming
  from the current model's partition via ``initial_clusters``), and
  atomically republish versioned artifacts for
  :class:`~repro.serve.http.reload.ModelWatcher` to hot-swap.

CLI entry point: ``python -m repro stream``.
"""

from repro.stream.drift import DriftDetector
from repro.stream.reservoir import OnlineReservoir
from repro.stream.runner import (
    RefitEvent,
    StreamClusterer,
    StreamSummary,
    publish_model,
)

__all__ = [
    "DriftDetector",
    "OnlineReservoir",
    "RefitEvent",
    "StreamClusterer",
    "StreamSummary",
    "publish_model",
]
