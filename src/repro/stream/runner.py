"""The streaming session: label arrivals, refit periodically, republish.

:class:`StreamClusterer` turns the one-shot pipeline into
clustering-as-a-service over an unbounded record stream:

* every arrival lands in an :class:`~repro.stream.reservoir.OnlineReservoir`
  (Algorithm X, identical draws to the batch sampler), so a uniform
  sample of *everything seen so far* is always on hand;
* once a model exists, arrivals are labeled in batches against its
  labeling sets (the Section 4.6 disk scan, running forever), and the
  per-point outcomes feed a :class:`~repro.stream.drift.DriftDetector`;
* a refit fires on a fixed arrival interval, on a drift trigger, or at
  drain time -- either from scratch or *resuming* from the partition
  the current model induces on the reservoir (the
  ``initial_clusters`` seam of :meth:`RockPipeline.fit`);
* each refit republishes a versioned artifact via atomic
  write-then-:func:`os.replace`, so a :class:`ModelWatcher`-backed HTTP
  server hot-swaps to the new generation mid-stream without ever
  reading a torn file.

Everything is observable: ``stream.*`` counters/gauges/histograms in
the shared registry, one tracer span per refit, and a
:class:`StreamSummary` with the full :class:`RefitEvent` history.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.labeling import ClusterLabeler
from repro.core.pipeline import PipelineResult, RockPipeline
from repro.obs.trace import Tracer
from repro.serve.index import AssignmentIndex, resolve_assign_backend
from repro.serve.model import CHECKSUM_KEY, RockModel, artifact_checksum
from repro.stream.drift import DriftDetector
from repro.stream.reservoir import OnlineReservoir

__all__ = [
    "RefitEvent",
    "StreamClusterer",
    "StreamSummary",
    "publish_model",
]

REFIT_MODES = ("resume", "scratch")


def publish_model(model: RockModel, path: str | Path) -> str:
    """Atomically (re)write a model artifact; returns its served version.

    Writes the checksummed payload to a sibling temp file and
    :func:`os.replace`-s it over ``path``, so a concurrently polling
    :class:`~repro.serve.http.reload.ModelWatcher` sees either the old
    artifact or the new one, never a partial write.  The returned
    version is the digest prefix :func:`load_versioned_model` derives,
    so publishers and servers agree on generation names.
    """
    path = Path(path)
    payload = model.to_dict()
    digest = artifact_checksum(payload)
    payload[CHECKSUM_KEY] = "sha256:" + digest
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)
    return digest[:16]


@dataclass(frozen=True)
class RefitEvent:
    """One refit + republish, as recorded in the session summary."""

    index: int                 # 1-based refit sequence number
    reason: str                # "warmup" / "interval" / "drift: ..." / "drain"
    arrivals_seen: int         # stream position when the refit fired
    sample_size: int           # reservoir points the fit consumed
    resumed: bool              # True when it resumed via initial_clusters
    version: str               # served version of the published artifact
    n_clusters: int
    fit_seconds: float
    publish_seconds: float
    unix_time: float           # wall clock, display only


@dataclass
class StreamSummary:
    """What one :meth:`StreamClusterer.process` call did."""

    arrivals: int = 0
    labeled: int = 0
    outliers: int = 0
    label_seconds: float = 0.0
    refits: list[RefitEvent] = field(default_factory=list)
    drained: bool = False

    @property
    def final_version(self) -> str | None:
        return self.refits[-1].version if self.refits else None

    def labels_per_second(self) -> float:
        return self.labeled / self.label_seconds if self.label_seconds > 0 else 0.0


class StreamClusterer:
    """Incremental ROCK over an unbounded stream of records.

    Parameters
    ----------
    pipeline:
        The fit configuration.  Refits run over the reservoir sample,
        so the pipeline's own ``sample_size`` is normally ``None`` (the
        reservoir *is* the Section 4.6 sample).
    reservoir_size:
        Capacity of the online reservoir.
    publish_to:
        Artifact path each refit atomically republishes to; ``None``
        keeps models in-process only.
    warmup:
        Arrivals to accumulate before the first fit (default: the
        reservoir capacity).  A drain with no model yet still fits once
        so a session always ends with a model.
    refit_every:
        Refit after this many arrivals since the last fit (``None``
        disables interval refits).
    drift:
        A configured :class:`DriftDetector`; threshold crossings
        trigger refits between intervals.  ``None`` disables drift
        refits.
    refit_mode:
        ``"resume"`` starts each refit's merge loop from the partition
        the current model induces on the reservoir (via
        ``initial_clusters``); ``"scratch"`` refits from singletons.
    batch_size:
        Arrivals labeled per vectorised batch.
    seed:
        Reservoir rng seed (the pipeline's own seed governs the fits).
    assign_backend:
        Scoring tier for the labeling hot loop (``"auto"``,
        ``"dense"``, ``"pruned"`` or ``"native"``); the fast index is
        rebuilt once per refit, alongside the labeler.
    tracer:
        Spans + metrics sink; refits record ``stream.refit`` spans and
        the ``stream.*`` counter family lands in ``tracer.registry``.
    on_batch:
        Callback ``(points, labels, scores, version)`` after each
        labeled batch -- the test/benchmark observation hook.
    on_refit:
        Callback ``(RefitEvent)`` after each republish.
    """

    def __init__(
        self,
        pipeline: RockPipeline,
        reservoir_size: int,
        publish_to: str | Path | None = None,
        warmup: int | None = None,
        refit_every: int | None = None,
        drift: DriftDetector | None = None,
        refit_mode: str = "resume",
        batch_size: int = 256,
        seed: int | None = None,
        assign_backend: str = "auto",
        tracer: Tracer | None = None,
        on_batch: Callable[[list[Any], np.ndarray, np.ndarray, str], None] | None = None,
        on_refit: Callable[[RefitEvent], None] | None = None,
    ) -> None:
        if refit_mode not in REFIT_MODES:
            raise ValueError(
                f"refit_mode must be one of {REFIT_MODES}, got {refit_mode!r}"
            )
        if refit_every is not None and refit_every < 1:
            raise ValueError("refit_every must be positive when given")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.pipeline = pipeline
        self.reservoir: OnlineReservoir[Any] = OnlineReservoir(
            reservoir_size, rng=seed
        )
        self.publish_to = None if publish_to is None else Path(publish_to)
        self.warmup = reservoir_size if warmup is None else warmup
        if self.warmup < 1:
            raise ValueError("warmup must be at least 1")
        self.refit_every = refit_every
        self.drift = drift
        self.refit_mode = refit_mode
        self.batch_size = batch_size
        self.tracer = tracer if tracer is not None else Tracer()
        self.on_batch = on_batch
        self.on_refit = on_refit

        registry = self.tracer.registry
        self._arrivals = registry.counter("stream.arrivals")
        self._labeled = registry.counter("stream.labeled")
        self._outliers = registry.counter("stream.outliers")
        self._refits = registry.counter("stream.refits")
        self._fit_hist = registry.histogram("stream.refit.fit_seconds")
        self._publish_hist = registry.histogram("stream.refit.publish_seconds")
        self._registry = registry

        self.model: RockModel | None = None
        self.version: str | None = None
        self.last_result: PipelineResult | None = None
        self._labeler: ClusterLabeler | None = None
        self._assign_backend, self._assign_kernels = resolve_assign_backend(
            assign_backend
        )
        self._fast_index: AssignmentIndex | None = None
        self._arrivals_at_last_fit = 0
        self._refit_count = 0
        self._drain = threading.Event()

    # -- control ------------------------------------------------------------

    def request_drain(self) -> None:
        """Ask :meth:`process` to stop consuming after the current batch.

        Thread-safe; the signal-handler hook for ``python -m repro
        stream``.  The drain still runs a final refit + republish when
        arrivals came in since the last one (or no model exists yet).
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    # -- the session --------------------------------------------------------

    def process(self, records: Iterable[Any]) -> StreamSummary:
        """Consume a stream (until exhaustion or drain); returns the summary.

        May be called repeatedly -- the reservoir, model, and drift
        window persist across calls, so a session can span several
        sources.  Each call returns a fresh summary of its own
        arrivals.
        """
        summary = StreamSummary()
        stream: Iterator[Any] = iter(records)
        while not self._drain.is_set():
            batch = list(islice(stream, self.batch_size))
            if not batch:
                break
            self.reservoir.extend(batch)
            self._arrivals.inc(len(batch))
            summary.arrivals += len(batch)
            self._registry.set_gauge("stream.reservoir.seen", self.reservoir.seen)

            trigger: str | None = None
            if self.model is not None:
                started = time.monotonic()
                labels, scores = self._label_batch(batch)
                elapsed = time.monotonic() - started
                summary.labeled += len(batch)
                summary.label_seconds += elapsed
                summary.outliers += int((labels < 0).sum())
                self._labeled.inc(len(batch))
                self._outliers.inc(int((labels < 0).sum()))
                if self.on_batch is not None:
                    self.on_batch(batch, labels, scores, self.version or "")
                if self.drift is not None:
                    trigger = self.drift.observe(labels.tolist(), scores.tolist())
                    if trigger is not None:
                        trigger = f"drift: {trigger}"

            if self.model is None:
                if self.reservoir.seen >= self.warmup:
                    self._refit("warmup", summary)
            elif trigger is not None:
                self._refit(trigger, summary)
            elif (
                self.refit_every is not None
                and self.reservoir.seen - self._arrivals_at_last_fit
                >= self.refit_every
            ):
                self._refit("interval", summary)

        if self._drain.is_set():
            summary.drained = True
        # a session always ends on a fresh model: fit at drain/exhaustion
        # when arrivals came in since the last fit (or none happened yet)
        if len(self.reservoir) > 0 and (
            self.model is None
            or self.reservoir.seen > self._arrivals_at_last_fit
        ):
            self._refit("drain", summary)
        return summary

    # -- internals ----------------------------------------------------------

    def _label_batch(self, batch: list[Any]) -> tuple[np.ndarray, np.ndarray]:
        """Label one batch against the current model: ``(labels, best scores)``."""
        labeler = self._labeler
        assert labeler is not None
        if self._fast_index is not None:
            return self._fast_index.assign_with_scores(
                batch, kernels=self._assign_kernels
            )
        index = labeler.index
        if index is not None:
            counts = index.neighbor_counts(batch)
            all_scores = counts / index.normalisers
            labels = np.argmax(all_scores, axis=1)
            best = all_scores[np.arange(len(batch)), labels]
            outliers = ~counts.any(axis=1)
            labels[outliers] = -1
            best[outliers] = 0.0
            return labels.astype(np.int64), best
        labels = np.empty(len(batch), dtype=np.int64)
        best = np.zeros(len(batch), dtype=np.float64)
        for i, point in enumerate(batch):
            scores = labeler.scores(point)
            if labeler.neighbor_counts(point).any():
                labels[i] = int(np.argmax(scores))
                best[i] = float(scores[labels[i]])
            else:
                labels[i] = -1
        return labels, best

    def _starting_partition(self, sample: list[Any]) -> list[list[int]] | None:
        """The partition the current model induces on the reservoir sample.

        Outliers (label -1) are left uncovered -- the pipeline's mapping
        turns them into singletons -- so a resume never glues unrelated
        points together just because both were unassignable.
        """
        if self.refit_mode != "resume" or self._labeler is None:
            return None
        labels, _ = self._label_batch(sample)
        groups: dict[int, list[int]] = {}
        for position, label in enumerate(labels):
            if label >= 0:
                groups.setdefault(int(label), []).append(position)
        partition = [members for _, members in sorted(groups.items())]
        return partition if partition else None

    def _refit(self, reason: str, summary: StreamSummary) -> None:
        sample, _indices = self.reservoir.sample()
        initial = self._starting_partition(sample)
        with self.tracer.span(
            "stream.refit",
            reason=reason,
            sample_size=len(sample),
            resumed=initial is not None,
        ):
            fit_started = time.monotonic()
            result = self.pipeline.fit(
                sample, tracer=self.tracer, initial_clusters=initial
            )
            model = self.pipeline.to_model(result, sample)
            fit_seconds = time.monotonic() - fit_started

            publish_started = time.monotonic()
            if self.publish_to is not None:
                version = publish_model(model, self.publish_to)
            else:
                version = artifact_checksum(model.to_dict())[:16]
            publish_seconds = time.monotonic() - publish_started

        self.model = model
        self.version = version
        self.last_result = result
        self._labeler = model.labeler()
        # one index build per refit, reused by every labeled batch (and
        # the next refit's resume partition) until the model changes
        self._fast_index = (
            AssignmentIndex(self._labeler.index)
            if self._labeler.index is not None
            and self._assign_backend != "dense"
            else None
        )
        self._arrivals_at_last_fit = self.reservoir.seen
        self._refit_count += 1
        self._refits.inc()
        self._fit_hist.observe(fit_seconds)
        self._publish_hist.observe(publish_seconds)
        self._registry.set_gauge("stream.model.n_clusters", model.n_clusters)
        if self.drift is not None:
            self.drift.reset()
        event = RefitEvent(
            index=self._refit_count,
            reason=reason,
            arrivals_seen=self.reservoir.seen,
            sample_size=len(sample),
            resumed=initial is not None,
            version=version,
            n_clusters=model.n_clusters,
            fit_seconds=fit_seconds,
            publish_seconds=publish_seconds,
            unix_time=time.time(),
        )
        summary.refits.append(event)
        if self.on_refit is not None:
            self.on_refit(event)
