"""Assignment-quality drift detection over the label stream.

The streaming session labels every arrival against the model fit on an
earlier reservoir.  When the incoming distribution moves, two symptoms
appear in the assignment stream long before anyone inspects clusters:

* the **outlier rate** rises -- arrivals stop having neighbors in any
  labeling set ``L_i`` (label -1);
* the **mean best score** falls -- arrivals still land in a cluster,
  but with fewer neighbors relative to ``(|L_i| + 1)^{f(theta)}`` than
  the points the model was fit on.

:class:`DriftDetector` watches both over a sliding window of recent
assignments, publishes them as registry gauges
(``stream.drift.outlier_rate`` / ``stream.drift.mean_score``), and
reports a threshold crossing as a refit trigger.  The window must be
full before it can trigger (a handful of early outliers is noise, not
drift), and :meth:`reset` empties it after a refit so the new model
gets a fresh window.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.obs.registry import MetricsRegistry

__all__ = ["DriftDetector"]


class DriftDetector:
    """Sliding-window drift triggers over per-point assignment quality.

    Parameters
    ----------
    registry:
        Metrics sink for the two gauges; a private one is created when
        omitted.
    window:
        Number of recent assignments the rate/mean are computed over.
    max_outlier_rate:
        Trigger when the windowed outlier rate exceeds this (``None``
        disables the trigger).
    min_mean_score:
        Trigger when the windowed mean best-score falls below this
        (``None`` disables).  Scores are the labeling phase's
        normalised ``N_i / (|L_i| + 1)^{f(theta)}``; outliers score 0.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        window: int = 512,
        max_outlier_rate: float | None = None,
        min_mean_score: float | None = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_outlier_rate is not None and not 0.0 <= max_outlier_rate <= 1.0:
            raise ValueError(
                f"max_outlier_rate must be in [0, 1], got {max_outlier_rate}"
            )
        if min_mean_score is not None and min_mean_score < 0.0:
            raise ValueError(
                f"min_mean_score must be non-negative, got {min_mean_score}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.window = window
        self.max_outlier_rate = max_outlier_rate
        self.min_mean_score = min_mean_score
        self._outliers: deque[bool] = deque(maxlen=window)
        self._scores: deque[float] = deque(maxlen=window)
        self._outlier_count = 0
        self._score_sum = 0.0
        self._rate_gauge = self.registry.gauge("stream.drift.outlier_rate")
        self._score_gauge = self.registry.gauge("stream.drift.mean_score")

    @property
    def enabled(self) -> bool:
        """Whether any threshold can ever fire."""
        return (
            self.max_outlier_rate is not None
            or self.min_mean_score is not None
        )

    @property
    def outlier_rate(self) -> float:
        return self._outlier_count / len(self._outliers) if self._outliers else 0.0

    @property
    def mean_score(self) -> float:
        return self._score_sum / len(self._scores) if self._scores else 0.0

    def observe(
        self, labels: Sequence[int], scores: Sequence[float]
    ) -> str | None:
        """Fold one labeled batch in; returns a trigger reason or ``None``.

        ``labels`` and ``scores`` are parallel (score 0.0 for
        outliers).  Gauges are refreshed on every call; a trigger is
        only reported once the window is full.
        """
        for label, score in zip(labels, scores):
            if len(self._outliers) == self.window:
                self._outlier_count -= self._outliers[0]
                self._score_sum -= self._scores[0]
            is_outlier = label < 0
            self._outliers.append(is_outlier)
            self._scores.append(float(score))
            self._outlier_count += is_outlier
            self._score_sum += float(score)
        rate = self.outlier_rate
        mean = self.mean_score
        self._rate_gauge.set(rate)
        self._score_gauge.set(mean)
        if len(self._outliers) < self.window:
            return None
        if self.max_outlier_rate is not None and rate > self.max_outlier_rate:
            return (
                f"outlier_rate {rate:.3f} > {self.max_outlier_rate:.3f} "
                f"over last {self.window}"
            )
        if self.min_mean_score is not None and mean < self.min_mean_score:
            return (
                f"mean_score {mean:.4f} < {self.min_mean_score:.4f} "
                f"over last {self.window}"
            )
        return None

    def reset(self) -> None:
        """Forget the window (called after a refit swaps the model)."""
        self._outliers.clear()
        self._scores.clear()
        self._outlier_count = 0
        self._score_sum = 0.0
        self._rate_gauge.set(0.0)
        self._score_gauge.set(0.0)
