"""An online reservoir over an unbounded stream (Section 4.6, [Vit85]).

The batch samplers of :mod:`repro.core.sampling` consume a whole
iterable and return; a long-running stream session instead needs a
reservoir that *persists between arrivals* -- records keep flowing in
while periodic refits read the current sample.  :class:`OnlineReservoir`
is Vitter's Algorithm X restated as a state machine: the skip count
``g`` (how many records to pass over before the next replacement) is
drawn eagerly -- at fill time and after every replacement -- and then
counted down one arrival at a time.

The restatement is *exact*: for the same seed it makes the same random
draws in the same order as :func:`repro.core.sampling.reservoir_sample_skip`
over the concatenated stream, so the held sample is identical to what
the batch sampler would have produced, no matter how arrivals are
chunked across :meth:`extend` calls.  (The equivalence is tested
element-for-element, and the inclusion distribution gets the same
chi-square treatment as the batch algorithms.)
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from typing import Generic, TypeVar

from repro.core.sampling import _as_rng, _check_size

T = TypeVar("T")

__all__ = ["OnlineReservoir"]


class OnlineReservoir(Generic[T]):
    """A uniform sample of everything ever :meth:`add`-ed, maintained online.

    Parameters
    ----------
    sample_size:
        Reservoir capacity ``s``; once the stream exceeds it, every
        record ever seen has inclusion probability ``s / n_seen``.
    rng:
        Seed or :class:`random.Random`; a fixed seed makes the whole
        stream session reproducible.
    """

    def __init__(
        self,
        sample_size: int,
        rng: random.Random | int | None = None,
    ) -> None:
        _check_size(sample_size)
        self.sample_size = sample_size
        self._rng = _as_rng(rng)
        self._reservoir: list[tuple[int, T]] = []
        self._seen = 0
        self._t = 0        # records seen at the last skip draw (Vitter's t)
        self._skip = 0     # arrivals still to pass over before replacing
        self._gap = 0      # the g that _skip started from (advances t)

    @property
    def seen(self) -> int:
        """Total records consumed so far (the stream's ``n``)."""
        return self._seen

    def __len__(self) -> int:
        return len(self._reservoir)

    @property
    def full(self) -> bool:
        return len(self._reservoir) == self.sample_size

    def add(self, item: T) -> None:
        """Consume one arrival, replacing a reservoir slot when its turn comes."""
        index = self._seen
        self._seen += 1
        if len(self._reservoir) < self.sample_size:
            self._reservoir.append((index, item))
            if len(self._reservoir) == self.sample_size:
                self._t = self.sample_size
                self._draw_skip()
            return
        if self._skip > 0:
            self._skip -= 1
            return
        self._reservoir[self._rng.randrange(self.sample_size)] = (index, item)
        self._t += self._gap + 1
        self._draw_skip()

    def extend(self, items: Iterable[T]) -> int:
        """Consume a chunk of arrivals; returns how many were consumed."""
        before = self._seen
        for item in items:
            self.add(item)
        return self._seen - before

    def sample(self) -> tuple[list[T], list[int]]:
        """The current ``(sample, stream_indices)``, ordered by stream position.

        Snapshot semantics: the returned lists are copies, so a refit
        can cluster them while arrivals keep mutating the reservoir.
        """
        ordered = sorted(self._reservoir, key=lambda pair: pair[0])
        return [item for _, item in ordered], [index for index, _ in ordered]

    def _draw_skip(self) -> None:
        # inversion of the skip-distribution tail, exactly as the batch
        # Algorithm X: smallest g with P(skip >= g) <= u
        u = self._rng.random()
        s = self.sample_size
        t = self._t
        quotient = (t - s + 1) / (t + 1)
        g = 0
        while quotient > u:
            g += 1
            quotient *= (t - s + 1 + g) / (t + 1 + g)
        self._gap = g
        self._skip = g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineReservoir(size={len(self._reservoir)}/{self.sample_size}, "
            f"seen={self._seen})"
        )
