"""Plain-text table rendering for benches and examples.

The benchmark harness prints the same rows the paper's tables report;
this module holds the tiny formatting helpers so every bench renders
consistently.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats keep a short fixed precision so the
    bench output diff-compares cleanly between runs.
    """
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in text_rows)) if text_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_composition_table(
    composition: Sequence[dict[Any, int]],
    classes: Sequence[Any],
    title: str | None = None,
) -> str:
    """Render per-cluster class counts in the layout of Tables 2 and 3."""
    headers = ["Cluster No"] + [f"No of {c}" for c in classes]
    rows = [
        [i + 1] + [counts.get(c, 0) for c in classes]
        for i, counts in enumerate(composition)
    ]
    return format_table(headers, rows, title=title)
