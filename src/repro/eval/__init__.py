"""Evaluation: clustering metrics, cluster characterisation, reporting."""

from repro.eval.characterize import (
    AttributeValueSupport,
    characterize_cluster,
    characterize_clustering,
    distinguishing_attributes,
    shared_majority_attributes,
)
from repro.eval.metrics import (
    adjusted_rand_index,
    class_composition,
    cluster_purities,
    confusion_matrix,
    contingency_table,
    misclassified_count,
    normalized_mutual_information,
    purity,
    size_statistics,
)
from repro.eval.report import clustering_report
from repro.eval.reporting import format_composition_table, format_table
from repro.eval.stability import StabilityReport, noise_robustness, stability_analysis

__all__ = [
    "AttributeValueSupport",
    "adjusted_rand_index",
    "characterize_cluster",
    "characterize_clustering",
    "class_composition",
    "clustering_report",
    "cluster_purities",
    "confusion_matrix",
    "contingency_table",
    "distinguishing_attributes",
    "format_composition_table",
    "format_table",
    "misclassified_count",
    "normalized_mutual_information",
    "purity",
    "shared_majority_attributes",
    "size_statistics",
    "StabilityReport",
    "noise_robustness",
    "stability_analysis",
]
