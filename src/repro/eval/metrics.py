"""Clustering quality metrics, implemented from scratch.

The paper's evaluation uses:

* per-cluster class composition (Tables 2 and 3) --
  :func:`class_composition` and :func:`confusion_matrix`;
* misclassified-transaction counts against known generator clusters
  (Table 6) -- :func:`misclassified_count`;
* purity of clusters ("all except one ... are pure clusters") --
  :func:`cluster_purities` and :func:`purity`.

Adjusted Rand index and normalised mutual information are provided as
modern cross-checks on the same comparisons (not in the paper, but
useful for the regression tests that pin reproduction quality).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from typing import Any

import numpy as np


def _pair(n: int | float) -> float:
    """n choose 2."""
    return n * (n - 1) / 2.0


def _validate(labels_true: Sequence[Any], labels_pred: Sequence[Any]) -> None:
    if len(labels_true) != len(labels_pred):
        raise ValueError(
            f"label sequences differ in length: {len(labels_true)} vs "
            f"{len(labels_pred)}"
        )
    if len(labels_true) == 0:
        raise ValueError("cannot score empty labelings")


def contingency_table(
    labels_true: Sequence[Any], labels_pred: Sequence[Any]
) -> dict[tuple[Any, Any], int]:
    """Joint counts of (true class, predicted cluster) pairs."""
    _validate(labels_true, labels_pred)
    table: Counter[tuple[Any, Any]] = Counter()
    for t, p in zip(labels_true, labels_pred):
        table[(t, p)] += 1
    return dict(table)


def confusion_matrix(
    labels_true: Sequence[Any], labels_pred: Sequence[Any]
) -> tuple[np.ndarray, list[Any], list[Any]]:
    """Dense confusion matrix plus its row (true) and column (pred) keys."""
    table = contingency_table(labels_true, labels_pred)
    rows = sorted({t for t, _ in table}, key=repr)
    cols = sorted({p for _, p in table}, key=repr)
    matrix = np.zeros((len(rows), len(cols)), dtype=np.int64)
    row_index = {r: i for i, r in enumerate(rows)}
    col_index = {c: j for j, c in enumerate(cols)}
    for (t, p), count in table.items():
        matrix[row_index[t], col_index[p]] = count
    return matrix, rows, cols


def class_composition(
    clusters: Sequence[Sequence[int]], labels_true: Sequence[Any]
) -> list[dict[Any, int]]:
    """Per-cluster class counts -- the raw content of Tables 2 and 3."""
    composition = []
    for cluster in clusters:
        counts: Counter[Any] = Counter(labels_true[p] for p in cluster)
        composition.append(dict(counts))
    return composition


def cluster_purities(
    clusters: Sequence[Sequence[int]], labels_true: Sequence[Any]
) -> list[float]:
    """Majority-class fraction per cluster (1.0 = a pure cluster)."""
    purities = []
    for cluster in clusters:
        if not cluster:
            raise ValueError("clusters must be non-empty")
        counts = Counter(labels_true[p] for p in cluster)
        purities.append(max(counts.values()) / len(cluster))
    return purities


def purity(
    clusters: Sequence[Sequence[int]], labels_true: Sequence[Any]
) -> float:
    """Overall purity: weighted majority-class fraction over all clustered points."""
    total = sum(len(c) for c in clusters)
    if total == 0:
        raise ValueError("no clustered points")
    correct = 0
    for cluster in clusters:
        counts = Counter(labels_true[p] for p in cluster)
        correct += max(counts.values())
    return correct / total


def misclassified_count(
    labels_true: Sequence[Any],
    labels_pred: Sequence[Any],
    count_unassigned: bool = False,
) -> int:
    """Number of points not in their class's plurality cluster (Table 6).

    Each predicted cluster is associated with its majority true class;
    every member of another class in that cluster is misclassified.
    Points with predicted label -1 (outliers / unassigned) are skipped
    unless ``count_unassigned`` is set, matching the paper's convention
    that deliberately-removed outliers are not errors.
    """
    _validate(labels_true, labels_pred)
    by_cluster: dict[Any, Counter[Any]] = {}
    for t, p in zip(labels_true, labels_pred):
        if p == -1 and not count_unassigned:
            continue
        by_cluster.setdefault(p, Counter())[t] += 1
    wrong = 0
    for counts in by_cluster.values():
        wrong += sum(counts.values()) - max(counts.values())
    return wrong


def adjusted_rand_index(
    labels_true: Sequence[Any], labels_pred: Sequence[Any]
) -> float:
    """Hubert-Arabie adjusted Rand index in [-1, 1]."""
    table = contingency_table(labels_true, labels_pred)
    n = len(labels_true)
    sum_cells = sum(_pair(v) for v in table.values())
    row_totals: Counter[Any] = Counter()
    col_totals: Counter[Any] = Counter()
    for (t, p), count in table.items():
        row_totals[t] += count
        col_totals[p] += count
    sum_rows = sum(_pair(v) for v in row_totals.values())
    sum_cols = sum(_pair(v) for v in col_totals.values())
    expected = sum_rows * sum_cols / _pair(n) if n > 1 else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0  # both labelings are trivial (all-one-cluster or all-singletons)
    return (sum_cells - expected) / (maximum - expected)


def normalized_mutual_information(
    labels_true: Sequence[Any], labels_pred: Sequence[Any]
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table = contingency_table(labels_true, labels_pred)
    n = len(labels_true)
    row_totals: Counter[Any] = Counter()
    col_totals: Counter[Any] = Counter()
    for (t, p), count in table.items():
        row_totals[t] += count
        col_totals[p] += count
    mutual = 0.0
    for (t, p), count in table.items():
        mutual += (count / n) * math.log(
            (count * n) / (row_totals[t] * col_totals[p])
        )
    h_true = -sum((v / n) * math.log(v / n) for v in row_totals.values())
    h_pred = -sum((v / n) * math.log(v / n) for v in col_totals.values())
    mean_entropy = (h_true + h_pred) / 2.0
    if mean_entropy == 0.0:
        return 1.0
    return max(0.0, mutual / mean_entropy)


def size_statistics(clusters: Sequence[Sequence[int]]) -> dict[str, float]:
    """Summary of cluster sizes used by the Table 3 shape checks."""
    sizes = np.array([len(c) for c in clusters], dtype=np.float64)
    if sizes.size == 0:
        raise ValueError("no clusters")
    return {
        "count": float(sizes.size),
        "min": float(sizes.min()),
        "max": float(sizes.max()),
        "mean": float(sizes.mean()),
        "std": float(sizes.std()),
        "skew_ratio": float(sizes.max() / max(sizes.min(), 1.0)),
    }
