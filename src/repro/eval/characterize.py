"""Cluster characterisation (Tables 7-9 of the paper).

The paper describes each discovered cluster by its frequent attribute
values: triples ``(attribute, value, support)`` where support is the
fraction of the cluster's records carrying that value.  Table 7 lists
them for the two voting clusters; Tables 8-9 for the large mushroom
clusters.  This module regenerates those descriptions from any
clustering over a :class:`~repro.data.records.CategoricalDataset`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.data.records import MISSING, CategoricalDataset


@dataclass(frozen=True)
class AttributeValueSupport:
    """One characterisation entry: ``(attribute, value, support)``."""

    attribute: str
    value: Any
    support: float

    def __str__(self) -> str:
        return f"({self.attribute},{self.value},{self.support:.2g})"


def characterize_cluster(
    dataset: CategoricalDataset,
    cluster: Sequence[int],
    min_support: float = 0.5,
) -> list[AttributeValueSupport]:
    """Frequent (attribute, value) pairs of one cluster.

    Support is measured over the whole cluster (records missing the
    attribute count in the denominator, as the paper's Table 7
    frequencies do).  Entries are reported in schema order, most
    supported value first within an attribute; only values with support
    at least ``min_support`` appear.
    """
    if not cluster:
        raise ValueError("cluster must be non-empty")
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    size = len(cluster)
    out: list[AttributeValueSupport] = []
    for attribute in dataset.schema:
        idx = dataset.schema.index(attribute)
        counts: Counter[Any] = Counter()
        for p in cluster:
            value = dataset[p].values[idx]
            if value is not MISSING:
                counts[value] += 1
        for value, count in sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))):
            support = count / size
            if support >= min_support:
                out.append(AttributeValueSupport(attribute, value, support))
    return out


def characterize_clustering(
    dataset: CategoricalDataset,
    clusters: Sequence[Sequence[int]],
    min_support: float = 0.5,
) -> list[list[AttributeValueSupport]]:
    """Characterise every cluster (one list of entries per cluster)."""
    return [
        characterize_cluster(dataset, cluster, min_support=min_support)
        for cluster in clusters
    ]


def distinguishing_attributes(
    dataset: CategoricalDataset,
    cluster_a: Sequence[int],
    cluster_b: Sequence[int],
    min_support: float = 0.5,
) -> list[str]:
    """Attributes whose majority value differs between two clusters.

    The paper's Table 7 commentary: "on 12 of the remaining 13 issues,
    the majority of the Democrats voted differently from the majority of
    the Republicans" -- this function computes that comparison.
    """
    profile_a = {
        e.attribute: e.value
        for e in characterize_cluster(dataset, cluster_a, min_support)
    }
    profile_b = {
        e.attribute: e.value
        for e in characterize_cluster(dataset, cluster_b, min_support)
    }
    differing = []
    for attribute in dataset.schema:
        if attribute in profile_a and attribute in profile_b:
            if profile_a[attribute] != profile_b[attribute]:
                differing.append(attribute)
    return differing


def shared_majority_attributes(
    dataset: CategoricalDataset,
    cluster_a: Sequence[int],
    cluster_b: Sequence[int],
    min_support: float = 0.5,
) -> list[str]:
    """Attributes on which the two clusters' majorities agree."""
    profile_a = {
        e.attribute: e.value
        for e in characterize_cluster(dataset, cluster_a, min_support)
    }
    profile_b = {
        e.attribute: e.value
        for e in characterize_cluster(dataset, cluster_b, min_support)
    }
    return [
        attribute
        for attribute in dataset.schema
        if attribute in profile_a
        and attribute in profile_b
        and profile_a[attribute] == profile_b[attribute]
    ]
