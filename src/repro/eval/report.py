"""Markdown experiment reports for clustering runs.

Bundles the per-run readouts scattered across :mod:`repro.eval` into one
document: run parameters, cluster size table, class composition against
ground truth (when available), quality metrics, and per-cluster
frequent-value characterisation (for categorical data) -- i.e. the
Table 2/3 + Table 7-9 package the paper prints per experiment.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.pipeline import PipelineResult
from repro.data.records import CategoricalDataset
from repro.eval.characterize import characterize_cluster
from repro.eval.metrics import (
    adjusted_rand_index,
    class_composition,
    cluster_purities,
    normalized_mutual_information,
    purity,
)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def clustering_report(
    result: PipelineResult,
    truth: Sequence[Any] | None = None,
    dataset: CategoricalDataset | None = None,
    title: str = "ROCK clustering report",
    parameters: dict[str, Any] | None = None,
    max_characterized_clusters: int = 5,
    min_support: float = 0.5,
) -> str:
    """Render a full markdown report for one pipeline run.

    Parameters
    ----------
    result:
        The pipeline outcome.
    truth:
        Optional ground-truth labels aligned with the input points;
        enables composition and quality sections.
    dataset:
        The categorical dataset that was clustered, when applicable;
        enables the characterisation section.
    parameters:
        Run parameters to record (theta, k, sample size, ...).
    """
    sections: list[str] = [f"# {title}", ""]

    if parameters:
        sections.append("## Parameters")
        sections.append(
            _markdown_table(
                ["parameter", "value"],
                [[k, v] for k, v in sorted(parameters.items())],
            )
        )
        sections.append("")

    sections.append("## Clusters")
    n_points = len(result.labels)
    n_outliers = int((result.labels == -1).sum())
    overview_rows = [
        ["points", n_points],
        ["clusters", result.n_clusters],
        ["outliers / unassigned", n_outliers],
        ["sampled points", len(result.sample_indices)],
    ]
    sections.append(_markdown_table(["measure", "value"], overview_rows))
    sections.append("")

    if truth is not None:
        if len(truth) != n_points:
            raise ValueError("truth labels must align with the clustered points")
        composition = class_composition(result.clusters, truth)
        classes = sorted({t for t in truth}, key=repr)
        comp_rows = [
            [i + 1, len(result.clusters[i])]
            + [counts.get(c, 0) for c in classes]
            for i, counts in enumerate(composition)
        ]
        sections.append("## Composition vs ground truth")
        sections.append(
            _markdown_table(
                ["cluster", "size"] + [str(c) for c in classes], comp_rows
            )
        )
        sections.append("")
        purities = cluster_purities(result.clusters, truth)
        pred = [int(l) for l in result.labels]
        quality_rows = [
            ["purity", purity(result.clusters, truth)],
            ["pure clusters", sum(1 for p in purities if p == 1.0)],
            ["adjusted Rand index", adjusted_rand_index(list(truth), pred)],
            ["NMI", normalized_mutual_information(list(truth), pred)],
        ]
        sections.append("## Quality")
        sections.append(_markdown_table(["metric", "value"], quality_rows))
        sections.append("")

    if dataset is not None:
        sections.append("## Cluster characteristics")
        for i, cluster in enumerate(result.clusters[:max_characterized_clusters]):
            entries = characterize_cluster(dataset, cluster, min_support=min_support)
            sections.append(f"### Cluster {i + 1} (n={len(cluster)})")
            if entries:
                sections.append(
                    _markdown_table(
                        ["attribute", "value", "support"],
                        [[e.attribute, e.value, e.support] for e in entries],
                    )
                )
            else:
                sections.append(f"*no value reaches support {min_support}*")
            sections.append("")

    return "\n".join(sections).rstrip() + "\n"
