"""Stability and robustness analysis (the paper's title claim).

ROCK stands for *RObust* Clustering using linKs: the link mechanism is
claimed to resist the two things that break local-similarity methods --
sampling variation and noise points.  This module gives those claims a
measurable form:

* :func:`stability_analysis` -- run a clustering procedure repeatedly
  under different seeds (different samples, different labeling draws)
  and score how much the partitions move (mean pairwise ARI);
* :func:`noise_robustness` -- inject increasing amounts of noise points
  and score the clustering of the *original* points against ground
  truth at each level.

Both operate on any callable, so baselines can be measured with the
identical harness (see ``benchmarks/bench_robustness.py``).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

import numpy as np

from repro.eval.metrics import adjusted_rand_index

# a clustering procedure: (points, seed) -> per-point labels (-1 allowed)
ClusterProcedure = Callable[[Any, int], Sequence[int]]


@dataclass
class StabilityReport:
    """Outcome of a multi-seed stability analysis."""

    pairwise_ari: list[float]
    truth_ari: list[float] = field(default_factory=list)

    @property
    def mean_pairwise_ari(self) -> float:
        return float(np.mean(self.pairwise_ari)) if self.pairwise_ari else 1.0

    @property
    def worst_pairwise_ari(self) -> float:
        return float(np.min(self.pairwise_ari)) if self.pairwise_ari else 1.0

    @property
    def mean_truth_ari(self) -> float:
        return float(np.mean(self.truth_ari)) if self.truth_ari else float("nan")


def _restricted_ari(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """ARI over the points both runs assigned (label >= 0)."""
    pairs = [
        (a, b)
        for a, b in zip(labels_a, labels_b)
        if a >= 0 and b >= 0
    ]
    if len(pairs) < 2:
        return 1.0
    return adjusted_rand_index([a for a, _ in pairs], [b for _, b in pairs])


def stability_analysis(
    procedure: ClusterProcedure,
    points: Any,
    truth: Sequence[Any] | None = None,
    n_runs: int = 5,
    base_seed: int = 0,
) -> StabilityReport:
    """Run ``procedure`` under ``n_runs`` seeds and score agreement.

    ``pairwise_ari`` holds the ARI of every pair of runs (restricted to
    points both runs assigned); ``truth_ari`` holds each run's ARI
    against ground truth when provided.  A robust procedure keeps both
    high under resampling.
    """
    if n_runs < 2:
        raise ValueError("need at least 2 runs to measure stability")
    runs = [list(procedure(points, base_seed + i)) for i in range(n_runs)]
    for labels in runs:
        if len(labels) != len(points):
            raise ValueError("procedure must label every input point (use -1)")
    pairwise = [
        _restricted_ari(a, b) for a, b in combinations(runs, 2)
    ]
    truth_scores: list[float] = []
    if truth is not None:
        if len(truth) != len(points):
            raise ValueError("truth labels must align with points")
        for labels in runs:
            pairs = [(t, p) for t, p in zip(truth, labels) if p >= 0]
            truth_scores.append(
                adjusted_rand_index([t for t, _ in pairs], [p for _, p in pairs])
                if len(pairs) >= 2
                else 0.0
            )
    return StabilityReport(pairwise_ari=pairwise, truth_ari=truth_scores)


def noise_robustness(
    procedure: ClusterProcedure,
    points: Sequence[Any],
    truth: Sequence[Any],
    make_noise: Callable[[int, random.Random], Any],
    noise_fractions: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    seed: int = 0,
) -> dict[float, float]:
    """Score clustering of the original points as noise is injected.

    For each fraction ``f``, ``round(f * len(points))`` noise points
    (built by ``make_noise(i, rng)``) are appended to the input; the
    procedure clusters the combined set, and the ARI is computed over
    the original points only (noise assignments are ignored; original
    points left unassigned count as their own singleton "cluster" -1,
    penalising procedures that shed real points when noise appears).

    Returns ``{fraction: ari}``.
    """
    if len(truth) != len(points):
        raise ValueError("truth labels must align with points")
    rng = random.Random(seed)
    results: dict[float, float] = {}
    for fraction in noise_fractions:
        if fraction < 0:
            raise ValueError("noise fractions must be non-negative")
        n_noise = round(fraction * len(points))
        noisy = list(points) + [make_noise(i, rng) for i in range(n_noise)]
        labels = list(procedure(noisy, seed))
        if len(labels) != len(noisy):
            raise ValueError("procedure must label every input point (use -1)")
        # unassigned originals become unique singletons so shedding real
        # points under noise is penalised rather than collapsed
        original = [
            label if label >= 0 else -(position + 2)
            for position, label in enumerate(labels[: len(points)])
        ]
        results[float(fraction)] = adjusted_rand_index(list(truth), original)
    return results
