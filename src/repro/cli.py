"""Command-line interface for the ROCK reproduction.

The subcommands cover the end-to-end workflow from the paper:

* ``generate`` -- write one of the synthetic data sets (the Section 5.3
  market-basket generator or a real-data replica) to disk, with its
  ground-truth labels alongside;
* ``cluster`` -- run the ROCK pipeline over a transactions or UCI
  ``.data`` file and write per-record cluster labels;
* ``evaluate`` -- score a predicted labeling against ground truth;
* ``fit-model`` / ``assign`` -- the fit-once / serve-many split of
  Section 4.6: fit on a (sampled) file and persist a JSON
  :class:`~repro.serve.RockModel`, then label any other file against
  the saved model without re-clustering;
* ``serve`` -- stand the saved model up as a long-running HTTP
  service (batched ``/assign``, hot reload on artifact change,
  Prometheus ``/metrics``);
* ``stream`` -- incremental clustering over an unbounded stream: an
  online reservoir feeds periodic refits (interval- or
  drift-triggered), each refit atomically republishes the artifact a
  running ``serve`` hot-swaps.  SIGINT/SIGTERM drain gracefully.

Examples::

    python -m repro generate basket --scale small --out txns.txt
    python -m repro cluster --input txns.txt --theta 0.5 -k 4 \\
        --sample 500 --output labels.txt
    python -m repro evaluate --predicted labels.txt --truth txns.txt.labels
    python -m repro fit-model --input txns.txt --theta 0.5 -k 4 \\
        --sample 500 --model model.json
    python -m repro assign --model model.json --input heldout.txt \\
        --output labels.txt --workers 4 --show-metrics

All randomness is seedable; identical invocations reproduce identical
outputs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any

from repro.core.pipeline import RockPipeline
from repro.core.similarity import MissingAwareJaccard
from repro.data.io import read_transactions, read_uci_data, write_transactions, write_uci_data
from repro.eval.metrics import (
    adjusted_rand_index,
    misclassified_count,
    normalized_mutual_information,
    purity,
)
from repro.eval.reporting import format_table


def _add_fit_memory_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--neighbor-method",
        choices=["auto", "vectorized", "blocked", "bruteforce"],
        default="auto",
        help="neighbor kernel; 'blocked' forces the memory-bounded "
        "row-block path, 'auto' picks it when the dense similarity "
        "matrix would exceed the memory budget",
    )
    sub.add_argument(
        "--memory-budget-mb", type=int, default=None,
        help="dense-intermediate budget in MiB for the auto neighbor-"
        "method heuristic (default 1024)",
    )
    sub.add_argument(
        "--fit-mode",
        choices=[
            "auto", "dense", "blocked", "parallel", "fused", "native",
            "sharded",
        ],
        default="auto",
        help="coarse fit-path switch; 'parallel' fans row blocks out "
        "across --workers processes, 'fused' additionally folds link "
        "counting into the same pass (lowest peak memory), 'native' "
        "runs the fused pass with repro.native kernels (falls back to "
        "fused with a warning when unavailable), 'sharded' runs the "
        "out-of-core coordinator/worker fit over a memory-mapped store "
        "(crash-safe, resumable); all modes produce identical clusters",
    )
    sub.add_argument(
        "--shard-block-rows", type=int, default=None,
        help="rows per sharded scoring unit (fit_mode=sharded; default "
        "derives from the memory budget)",
    )
    sub.add_argument(
        "--spill-dir", type=Path, default=None,
        help="sharded-fit run directory; reusing the same path resumes "
        "an interrupted fit (default: a private temp dir, removed "
        "after the fit)",
    )
    sub.add_argument(
        "--max-retries", type=int, default=2,
        help="pool rebuilds tolerated after shard worker crashes before "
        "degrading to in-coordinator execution",
    )
    sub.add_argument(
        "--merge-method",
        choices=["auto", "heap", "fast", "native"],
        default="auto",
        help="merge-loop engine; 'heap' is the Figure 3 reference "
        "loop, 'fast' the component-partitioned engine, 'native' that "
        "engine with repro.native component kernels, 'auto' picks "
        "fast/native for the built-in goodness measures; all engines "
        "produce byte-identical clusters and merge history",
    )
    sub.add_argument(
        "--workers", default=None,
        help="process count for the parallel/fused kernels: an int, "
        "'auto' (CPU count, capped at 8), or omitted for serial",
    )


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace-out", type=Path, default=None,
        help="write a RunManifest JSON (span tree + metrics snapshot + "
        "host metadata + config) to this path",
    )
    sub.add_argument(
        "--metrics-format", choices=["json", "prom"], default=None,
        help="also print the run's metrics to stdout, as JSON lines or "
        "Prometheus text exposition",
    )


def _emit_observability(
    args: argparse.Namespace,
    name: str,
    tracer: Any,
    config: dict[str, Any],
) -> None:
    """Honour ``--trace-out`` / ``--metrics-format`` for a traced command."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        from repro.obs import RunManifest

        RunManifest.from_tracer(name, tracer, config=config).save(trace_out)
        print(f"trace manifest written to {trace_out}")
    metrics_format = getattr(args, "metrics_format", None)
    if metrics_format is not None:
        from repro.obs import metrics_to_jsonl, metrics_to_prometheus

        snap = tracer.registry.snapshot()
        rendered = (
            metrics_to_jsonl(snap)
            if metrics_format == "json"
            else metrics_to_prometheus(snap)
        )
        print(rendered, end="")


def _format_phase_timings(timings: dict[str, float]) -> str:
    return "  ".join(
        f"{phase}:{seconds:.2f}" for phase, seconds in timings.items()
    )


def _memory_budget_bytes(args: argparse.Namespace) -> int | None:
    if getattr(args, "memory_budget_mb", None) is None:
        return None
    if args.memory_budget_mb < 1:
        raise SystemExit("--memory-budget-mb must be positive")
    return args.memory_budget_mb << 20


def _fit_workers(args: argparse.Namespace) -> int | str | None:
    workers = getattr(args, "workers", None)
    if workers is None or workers == "auto":
        return workers
    try:
        count = int(workers)
    except ValueError:
        raise SystemExit(
            f"--workers must be a positive int or 'auto', got {workers!r}"
        ) from None
    if count < 1:
        raise SystemExit("--workers must be positive")
    return count


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ROCK (Guha, Rastogi, Shim; ICDE 1999) -- reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic data set to disk")
    gen.add_argument(
        "dataset", choices=["basket", "votes", "mushroom", "funds"],
        help="which data set to generate",
    )
    gen.add_argument("--out", required=True, type=Path, help="output file")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--scale", choices=["small", "full"], default="small",
        help="small = laptop-scale instance; full = the paper's sizes",
    )

    gen_data = sub.add_parser(
        "gen-data",
        help="stream a synthetic basket transactions file of arbitrary "
        "size to disk (chunked writer; never holds the rows in memory)",
    )
    gen_data.add_argument("--out", required=True, type=Path, help="output file")
    gen_data.add_argument(
        "-n", "--rows", dest="rows", type=int, required=True,
        help="number of transactions to write",
    )
    gen_data.add_argument(
        "--clusters", type=int, default=None,
        help="generating cluster count (default: rows // 1000, min 2)",
    )
    gen_data.add_argument("--items-per-cluster", type=int, default=20)
    gen_data.add_argument("--outlier-fraction", type=float, default=0.05)
    gen_data.add_argument(
        "--chunk-rows", type=int, default=8192,
        help="rows buffered per write",
    )
    gen_data.add_argument("--seed", type=int, default=0)
    gen_data.add_argument(
        "--labels", type=Path, default=None,
        help="also stream ground-truth labels here (one per line, -1 "
        "for outliers)",
    )

    cluster = sub.add_parser("cluster", help="cluster a data file with ROCK")
    cluster.add_argument("--input", required=True, type=Path)
    cluster.add_argument(
        "--format", choices=["transactions", "uci"], default="transactions",
        dest="input_format",
    )
    cluster.add_argument("--theta", type=float, required=True)
    cluster.add_argument("-k", type=int, required=True, help="cluster-count hint")
    cluster.add_argument("--sample", type=int, default=None, help="random sample size")
    cluster.add_argument("--min-cluster-size", type=int, default=None)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--missing-aware", action="store_true",
        help="use the per-pair missing-value similarity (UCI input only)",
    )
    cluster.add_argument(
        "--output", type=Path, default=None,
        help="write per-record cluster labels here (default: stdout summary only)",
    )
    _add_fit_memory_args(cluster)
    _add_obs_args(cluster)

    ev = sub.add_parser("evaluate", help="score predicted labels against truth")
    ev.add_argument("--predicted", required=True, type=Path)
    ev.add_argument("--truth", required=True, type=Path)

    tune = sub.add_parser(
        "suggest-theta", help="suggest a neighbor threshold from the data"
    )
    tune.add_argument("--input", required=True, type=Path)
    tune.add_argument(
        "--format", choices=["transactions", "uci"], default="transactions",
        dest="input_format",
    )
    tune.add_argument("--max-pairs", type=int, default=2000)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--missing-aware", action="store_true")

    rep = sub.add_parser(
        "report", help="cluster a UCI file and write a markdown report"
    )
    rep.add_argument("--input", required=True, type=Path)
    rep.add_argument("--theta", type=float, required=True)
    rep.add_argument("-k", type=int, required=True)
    rep.add_argument("--min-cluster-size", type=int, default=None)
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--output", required=True, type=Path)
    rep.add_argument("--title", default="ROCK clustering report")

    fit = sub.add_parser(
        "fit-model",
        help="cluster a file and persist a servable JSON RockModel",
    )
    fit.add_argument("--input", required=True, type=Path)
    fit.add_argument(
        "--format", choices=["transactions", "uci"], default="transactions",
        dest="input_format",
    )
    fit.add_argument("--theta", type=float, required=True)
    fit.add_argument("-k", type=int, required=True, help="cluster-count hint")
    fit.add_argument("--sample", type=int, default=None, help="random sample size")
    fit.add_argument("--min-cluster-size", type=int, default=None)
    fit.add_argument("--labeling-fraction", type=float, default=0.25)
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--missing-aware", action="store_true")
    fit.add_argument("--model", required=True, type=Path, help="model output path")
    fit.add_argument(
        "--labels", type=Path, default=None,
        help="also write the fit run's per-record labels here",
    )
    _add_fit_memory_args(fit)
    _add_obs_args(fit)

    assign = sub.add_parser(
        "assign", help="label a data file against a saved RockModel"
    )
    assign.add_argument("--model", required=True, type=Path)
    assign.add_argument("--input", required=True, type=Path)
    assign.add_argument(
        "--format", choices=["transactions", "uci"], default="transactions",
        dest="input_format",
    )
    assign.add_argument(
        "--output", type=Path, default=None,
        help="write per-record labels here (default: stdout summary only)",
    )
    assign.add_argument("--workers", type=int, default=1)
    assign.add_argument("--chunk-size", type=int, default=2048)
    assign.add_argument(
        "--assign-backend",
        choices=["auto", "dense", "pruned", "native"], default="auto",
        help="scoring tier: dense matmul, inverted-index pruning, or the "
        "native fused kernel (auto probes native, falls back to pruned)",
    )
    assign.add_argument(
        "--show-metrics", action="store_true",
        help="print the serving metrics snapshot after assignment",
    )
    _add_obs_args(assign)

    serve = sub.add_parser(
        "serve",
        help="serve a saved RockModel over HTTP (batched /assign, hot "
        "reload, Prometheus /metrics)",
    )
    serve.add_argument("--model", required=True, type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="TCP port; 0 picks an ephemeral port (printed on start)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=64,
        help="flush coalesced /assign requests at this batch size",
    )
    serve.add_argument(
        "--batch-wait-us", type=int, default=2000,
        help="flush once the oldest queued point is this old (microseconds)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="pending-point bound before requests are shed with 503",
    )
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument(
        "--assign-backend",
        choices=["auto", "dense", "pruned", "native"], default="auto",
        help="scoring tier for each model generation's engine",
    )
    serve.add_argument(
        "--poll-seconds", type=float, default=1.0,
        help="how often to poll the model artifact for hot reload",
    )
    serve.add_argument(
        "--shutdown-after", type=float, default=None,
        help="gracefully stop after this many seconds (smoke tests / demos)",
    )
    _add_obs_args(serve)

    stream = sub.add_parser(
        "stream",
        help="incrementally cluster an unbounded transactions stream "
        "(online reservoir, drift-triggered refits, atomic republish)",
    )
    stream.add_argument(
        "--input", required=True,
        help="transactions file, or '-' to consume stdin",
    )
    stream.add_argument("--theta", type=float, required=True)
    stream.add_argument("-k", type=int, required=True, help="cluster-count hint")
    stream.add_argument(
        "--reservoir", type=int, default=500,
        help="online reservoir capacity (the Section 4.6 sample size)",
    )
    stream.add_argument(
        "--warmup", type=int, default=None,
        help="arrivals before the first fit (default: reservoir capacity)",
    )
    stream.add_argument(
        "--refit-every", type=int, default=None,
        help="refit after this many arrivals since the last fit "
        "(omit to refit only on drift / drain)",
    )
    stream.add_argument(
        "--refit-mode", choices=["resume", "scratch"], default="resume",
        help="'resume' restarts each merge loop from the partition the "
        "current model induces on the reservoir; 'scratch' refits from "
        "singletons",
    )
    stream.add_argument(
        "--drift-window", type=int, default=512,
        help="assignments in the drift detector's sliding window",
    )
    stream.add_argument(
        "--max-outlier-rate", type=float, default=None,
        help="refit when the windowed outlier rate exceeds this",
    )
    stream.add_argument(
        "--min-mean-score", type=float, default=None,
        help="refit when the windowed mean assignment score drops below this",
    )
    stream.add_argument(
        "--batch-size", type=int, default=256,
        help="arrivals labeled per vectorised batch",
    )
    stream.add_argument(
        "--max-records", type=int, default=None,
        help="stop after this many arrivals (smoke tests / demos)",
    )
    stream.add_argument(
        "--publish-to", type=Path, default=None,
        help="atomically republish each refit model artifact here "
        "(a serving ModelWatcher hot-swaps it)",
    )
    stream.add_argument("--min-cluster-size", type=int, default=None)
    stream.add_argument("--seed", type=int, default=0)
    _add_fit_memory_args(stream)
    _add_obs_args(stream)
    return parser


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------

def _write_labels(path: Path, labels: list[Any]) -> None:
    path.write_text("\n".join(str(l) for l in labels) + "\n", encoding="utf-8")


def cmd_generate(args: argparse.Namespace) -> int:
    labels_path = Path(str(args.out) + ".labels")
    if args.dataset == "basket":
        from repro.datasets import generate_synthetic_basket, small_synthetic_basket

        if args.scale == "full":
            basket = generate_synthetic_basket(seed=args.seed)
        else:
            basket = small_synthetic_basket(seed=args.seed)
        write_transactions(basket.transactions, args.out)
        _write_labels(labels_path, basket.labels)
        n = len(basket.transactions)
    elif args.dataset == "votes":
        from repro.datasets import generate_votes

        votes = generate_votes(seed=args.seed)
        write_uci_data(votes, args.out)
        _write_labels(labels_path, votes.labels())
        n = len(votes)
    elif args.dataset == "mushroom":
        from repro.datasets import generate_mushroom, small_mushroom

        data = generate_mushroom(seed=args.seed) if args.scale == "full" else small_mushroom(seed=args.seed)
        write_uci_data(data.dataset, args.out)
        _write_labels(labels_path, data.class_labels)
        n = len(data.dataset)
    else:  # funds
        from repro.datasets import TABLE4_GROUPS, generate_mutual_funds

        if args.scale == "full":
            data = generate_mutual_funds(seed=args.seed)
        else:
            data = generate_mutual_funds(
                groups=TABLE4_GROUPS[:6], n_pairs=3, n_outliers=20,
                n_days=150, seed=args.seed,
            )
        write_uci_data(data.dataset, args.out)
        _write_labels(labels_path, data.group_labels)
        n = len(data.dataset)
    print(f"wrote {n} records to {args.out} (labels: {labels_path})")
    return 0


def cmd_gen_data(args: argparse.Namespace) -> int:
    from repro.datasets import write_basket_file

    summary = write_basket_file(
        args.out,
        args.rows,
        n_clusters=args.clusters,
        items_per_cluster=args.items_per_cluster,
        outlier_fraction=args.outlier_fraction,
        chunk_rows=args.chunk_rows,
        seed=args.seed,
        labels_path=args.labels,
    )
    print(
        f"wrote {summary['rows']} transactions to {args.out} "
        f"({summary['clusters']} clusters, {summary['outliers']} outliers, "
        f"{summary['items']} distinct items)"
    )
    if args.labels is not None:
        print(f"labels written to {args.labels}")
    return 0


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

def _load_points(args: argparse.Namespace):
    if args.input_format == "transactions":
        if args.missing_aware:
            raise SystemExit("--missing-aware applies to UCI input only")
        return read_transactions(args.input)
    with open(args.input, encoding="utf-8") as handle:
        first = handle.readline()
    n_columns = len(first.strip().split(","))
    attributes = [f"col{i}" for i in range(n_columns - 1)]
    return read_uci_data(args.input, attributes)


def cmd_cluster(args: argparse.Namespace) -> int:
    points = _load_points(args)
    if len(points) == 0:
        raise SystemExit(f"no records in {args.input}")
    similarity = MissingAwareJaccard() if args.missing_aware else None
    pipeline = RockPipeline(
        k=args.k,
        theta=args.theta,
        similarity=similarity,
        sample_size=args.sample,
        min_cluster_size=args.min_cluster_size,
        neighbor_method=args.neighbor_method,
        memory_budget=_memory_budget_bytes(args),
        fit_mode=args.fit_mode,
        merge_method=args.merge_method,
        workers=_fit_workers(args),
        shard_block_rows=args.shard_block_rows,
        spill_dir=args.spill_dir,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    from repro.obs import Tracer

    tracer = Tracer()
    result = pipeline.fit(points, tracer=tracer)

    sizes = result.cluster_sizes()
    rows = [
        ["records", len(points)],
        ["clusters", result.n_clusters],
        ["cluster sizes", " ".join(map(str, sizes))],
        ["outliers / unassigned", int((result.labels == -1).sum())],
        ["wall-clock (s)", f"{sum(result.timings.values()):.2f}"],
        ["phase seconds", _format_phase_timings(result.timings)],
    ]
    print(format_table(["measure", "value"], rows, title="ROCK clustering"))
    if args.output is not None:
        _write_labels(args.output, result.labels.tolist())
        print(f"labels written to {args.output}")
    _emit_observability(
        args, "cluster", tracer,
        config={
            "input": str(args.input),
            "k": args.k,
            "theta": args.theta,
            "sample": args.sample,
            "fit_mode": args.fit_mode,
            "merge_method": args.merge_method,
            "workers": getattr(args, "workers", None),
            "seed": args.seed,
        },
    )
    return 0


# ---------------------------------------------------------------------------
# evaluate
# ---------------------------------------------------------------------------

def _read_labels(path: Path) -> list[str]:
    return [
        line.strip()
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def cmd_evaluate(args: argparse.Namespace) -> int:
    predicted = _read_labels(args.predicted)
    truth = _read_labels(args.truth)
    if len(predicted) != len(truth):
        raise SystemExit(
            f"label files differ in length: {len(predicted)} vs {len(truth)}"
        )
    clusters: dict[str, list[int]] = {}
    for i, label in enumerate(predicted):
        if label != "-1":
            clusters.setdefault(label, []).append(i)
    cluster_lists = list(clusters.values())
    rows = [
        ["records", len(truth)],
        ["clusters (predicted)", len(cluster_lists)],
        ["purity", purity(cluster_lists, truth) if cluster_lists else 0.0],
        ["misclassified", misclassified_count(truth, predicted)],
        ["adjusted Rand index", adjusted_rand_index(truth, predicted)],
        ["NMI", normalized_mutual_information(truth, predicted)],
    ]
    print(format_table(["metric", "value"], rows, title="Evaluation"))
    return 0


def cmd_suggest_theta(args: argparse.Namespace) -> int:
    from repro.core.tuning import suggest_theta

    points = _load_points(args)
    if len(points) < 2:
        raise SystemExit("need at least two records to profile similarities")
    similarity = MissingAwareJaccard() if args.missing_aware else None
    suggestion = suggest_theta(
        points, similarity=similarity, max_pairs=args.max_pairs, rng=args.seed
    )
    rows = [
        ["suggested theta", f"{suggestion.theta:.3f}"],
        ["similarity gap", f"{suggestion.gap[0]:.3f} .. {suggestion.gap[1]:.3f}"],
        ["gap width", f"{suggestion.gap_width:.3f}"],
        ["pairs sampled", len(suggestion.profile)],
        ["median pairwise similarity",
         f"{float(suggestion.profile[len(suggestion.profile) // 2]):.3f}"],
    ]
    print(format_table(["measure", "value"], rows, title="theta suggestion"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import clustering_report

    args.input_format = "uci"
    args.missing_aware = False
    dataset = _load_points(args)
    if len(dataset) == 0:
        raise SystemExit(f"no records in {args.input}")
    pipeline = RockPipeline(
        k=args.k,
        theta=args.theta,
        min_cluster_size=args.min_cluster_size,
        seed=args.seed,
    )
    result = pipeline.fit(dataset)
    truth = dataset.labels()
    report = clustering_report(
        result,
        truth=truth if any(t is not None for t in truth) else None,
        dataset=dataset,
        title=args.title,
        parameters={
            "theta": args.theta,
            "k": args.k,
            "min_cluster_size": args.min_cluster_size,
            "seed": args.seed,
        },
    )
    args.output.write_text(report, encoding="utf-8")
    print(f"report written to {args.output} "
          f"({result.n_clusters} clusters over {len(dataset)} records)")
    return 0


# ---------------------------------------------------------------------------
# fit-model / assign (the repro.serve loop)
# ---------------------------------------------------------------------------

def cmd_fit_model(args: argparse.Namespace) -> int:
    points = _load_points(args)
    if len(points) == 0:
        raise SystemExit(f"no records in {args.input}")
    similarity = MissingAwareJaccard() if args.missing_aware else None
    pipeline = RockPipeline(
        k=args.k,
        theta=args.theta,
        similarity=similarity,
        sample_size=args.sample,
        min_cluster_size=args.min_cluster_size,
        labeling_fraction=args.labeling_fraction,
        neighbor_method=args.neighbor_method,
        memory_budget=_memory_budget_bytes(args),
        fit_mode=args.fit_mode,
        merge_method=args.merge_method,
        workers=_fit_workers(args),
        shard_block_rows=args.shard_block_rows,
        spill_dir=args.spill_dir,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    from repro.obs import Tracer

    tracer = Tracer()
    result, model = pipeline.fit_model(points, tracer=tracer)
    model.save(args.model)
    # render the per-phase timings off the *persisted* model metadata:
    # this is the wiring that used to be dropped on the floor
    fit_timings = model.metadata.get("fit_timings", {})
    rows = [
        ["records", len(points)],
        ["clusters", result.n_clusters],
        ["cluster sizes", " ".join(map(str, result.cluster_sizes()))],
        ["|L_i| sizes", " ".join(str(len(li)) for li in model.labeling_sets)],
        ["outliers / unassigned", int((result.labels == -1).sum())],
        ["wall-clock (s)", f"{sum(result.timings.values()):.2f}"],
        ["phase seconds", _format_phase_timings(fit_timings)],
        ["model", args.model],
    ]
    print(format_table(["measure", "value"], rows, title="ROCK fit-model"))
    if args.labels is not None:
        _write_labels(args.labels, result.labels.tolist())
        print(f"labels written to {args.labels}")
    _emit_observability(
        args, "fit-model", tracer,
        config={
            "input": str(args.input),
            "k": args.k,
            "theta": args.theta,
            "sample": args.sample,
            "labeling_fraction": args.labeling_fraction,
            "fit_mode": args.fit_mode,
            "merge_method": args.merge_method,
            "workers": getattr(args, "workers", None),
            "seed": args.seed,
            "model": str(args.model),
        },
    )
    return 0


def cmd_assign(args: argparse.Namespace) -> int:
    from repro.obs import Tracer
    from repro.serve import ClusteringService, ServeMetrics

    # the service records into the tracer's registry, so serving
    # counters and the assign span land in the same manifest
    tracer = Tracer()
    metrics = ServeMetrics(registry=tracer.registry)
    service = ClusteringService.from_file(
        args.model, metrics=metrics, assign_backend=args.assign_backend
    )
    start = time.perf_counter()
    with tracer.span(
        "assign", input=str(args.input), workers=args.workers
    ):
        labels = service.assign_file(
            args.input,
            output=args.output,
            input_format=args.input_format,
            workers=args.workers,
            chunk_size=args.chunk_size,
        )
    elapsed = time.perf_counter() - start
    n = len(labels)
    rows = [
        ["records", n],
        ["clusters in model", service.n_clusters],
        ["outliers / unassigned", int((labels == -1).sum())],
        ["assign backend", service.engine.assign_backend],
        ["workers", args.workers],
        ["wall-clock (s)", f"{elapsed:.2f}"],
        ["throughput (points/s)", f"{n / elapsed:,.0f}" if elapsed > 0 else "inf"],
    ]
    print(format_table(["measure", "value"], rows, title="ROCK assign"))
    if args.output is not None:
        print(f"labels written to {args.output}")
    if args.show_metrics:
        print()
        print(service.metrics.render())
    _emit_observability(
        args, "assign", tracer,
        config={
            "model": str(args.model),
            "input": str(args.input),
            "workers": args.workers,
            "chunk_size": args.chunk_size,
            "assign_backend": service.engine.assign_backend,
        },
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs import Tracer
    from repro.serve.http import RockHttpServer

    if not args.model.is_file():
        raise SystemExit(f"model artifact not found: {args.model}")
    tracer = Tracer()
    server = RockHttpServer(
        args.model,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        batch_wait_us=args.batch_wait_us,
        queue_depth=args.queue_depth,
        cache_size=args.cache_size,
        assign_backend=args.assign_backend,
        poll_seconds=args.poll_seconds,
        tracer=tracer,
    )

    async def _main() -> None:
        await server.start()
        host, port = server.address
        served = server.watcher.current
        print(
            f"serving {args.model} (version {served.version}, "
            f"{served.model.n_clusters} clusters) on http://{host}:{port}",
            flush=True,
        )
        print(
            f"batching: max {args.batch_max} points / "
            f"{args.batch_wait_us} us wait; queue depth {args.queue_depth}; "
            f"reload poll every {args.poll_seconds:g}s",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                # non-POSIX loops, or running off the main thread
                # (embedded / under tests) -- rely on --shutdown-after
                pass
        if args.shutdown_after is not None:
            loop.call_later(args.shutdown_after, stop.set)
        await stop.wait()
        print("shutting down: draining in-flight requests", flush=True)
        await server.shutdown()

    asyncio.run(_main())
    counters = tracer.registry.snapshot()["counters"]
    served_requests = sum(
        int(v) for name, v in counters.items()
        if name.startswith("http.requests.")
    )
    print(
        f"served {served_requests} requests "
        f"({int(counters.get('serve.points', 0))} points, "
        f"{int(counters.get('http.reload.count', 0))} reloads)"
    )
    _emit_observability(
        args, "serve", tracer,
        config={
            "model": str(args.model),
            "host": args.host,
            "port": args.port,
            "batch_max": args.batch_max,
            "batch_wait_us": args.batch_wait_us,
            "queue_depth": args.queue_depth,
            "poll_seconds": args.poll_seconds,
        },
    )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    import signal
    from itertools import islice

    from repro.data.io import iter_transactions
    from repro.obs import Tracer
    from repro.stream import DriftDetector, StreamClusterer

    tracer = Tracer()
    pipeline = RockPipeline(
        k=args.k,
        theta=args.theta,
        min_cluster_size=args.min_cluster_size,
        neighbor_method=args.neighbor_method,
        memory_budget=_memory_budget_bytes(args),
        fit_mode=args.fit_mode,
        merge_method=args.merge_method,
        workers=_fit_workers(args),
        shard_block_rows=args.shard_block_rows,
        spill_dir=args.spill_dir,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    drift = None
    if args.max_outlier_rate is not None or args.min_mean_score is not None:
        drift = DriftDetector(
            registry=tracer.registry,
            window=args.drift_window,
            max_outlier_rate=args.max_outlier_rate,
            min_mean_score=args.min_mean_score,
        )

    def _on_refit(event) -> None:
        print(
            f"refit #{event.index} [{event.reason}] at arrival "
            f"{event.arrivals_seen}: {event.n_clusters} clusters, "
            f"version {event.version} "
            f"(fit {event.fit_seconds:.2f}s, "
            f"publish {event.publish_seconds * 1000:.1f}ms)",
            flush=True,
        )

    clusterer = StreamClusterer(
        pipeline,
        reservoir_size=args.reservoir,
        publish_to=args.publish_to,
        warmup=args.warmup,
        refit_every=args.refit_every,
        drift=drift,
        refit_mode=args.refit_mode,
        batch_size=args.batch_size,
        seed=args.seed,
        tracer=tracer,
        on_refit=_on_refit,
    )

    def _drain(signum, frame) -> None:
        print("drain requested: finishing current batch", flush=True)
        clusterer.request_drain()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        source = sys.stdin if args.input == "-" else args.input
        records = iter_transactions(source)
        if args.max_records is not None:
            records = islice(records, args.max_records)
        summary = clusterer.process(records)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    rows = [
        ["arrivals", summary.arrivals],
        ["labeled", summary.labeled],
        ["outliers / unassigned", summary.outliers],
        ["label throughput (points/s)", f"{summary.labels_per_second():,.0f}"],
        ["refits", len(summary.refits)],
        ["refit reasons", " | ".join(e.reason for e in summary.refits)],
        ["final version", summary.final_version or "-"],
        ["drained early", summary.drained],
    ]
    if args.publish_to is not None:
        rows.append(["published to", args.publish_to])
    print(format_table(["measure", "value"], rows, title="ROCK stream"))
    _emit_observability(
        args, "stream", tracer,
        config={
            "input": str(args.input),
            "k": args.k,
            "theta": args.theta,
            "reservoir": args.reservoir,
            "refit_every": args.refit_every,
            "refit_mode": args.refit_mode,
            "drift_window": args.drift_window,
            "max_outlier_rate": args.max_outlier_rate,
            "min_mean_score": args.min_mean_score,
            "publish_to": None if args.publish_to is None else str(args.publish_to),
            "seed": args.seed,
        },
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return cmd_generate(args)
    if args.command == "gen-data":
        return cmd_gen_data(args)
    if args.command == "cluster":
        return cmd_cluster(args)
    if args.command == "suggest-theta":
        return cmd_suggest_theta(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "fit-model":
        return cmd_fit_model(args)
    if args.command == "assign":
        return cmd_assign(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "stream":
        return cmd_stream(args)
    return cmd_evaluate(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
