"""repro.serve.http -- the network serving layer over RockModel artifacts.

The paper's labeling phase is serve-shaped: a model fit on a sample
assigns every future point cheaply.  This package puts that behind a
long-running, zero-dependency async HTTP front-end:

* :class:`~repro.serve.http.server.RockHttpServer` -- asyncio HTTP/1.1
  server exposing ``POST /assign`` / ``POST /assign_batch`` /
  ``GET /model`` / ``GET /healthz`` / ``GET /metrics``;
* :class:`~repro.serve.http.batcher.RequestBatcher` -- coalesces
  concurrent single-point requests into shared
  ``AssignmentEngine.assign_batch`` calls (flush on max batch size or
  max wait), with a bounded queue that sheds load as ``503 +
  Retry-After``;
* :class:`~repro.serve.http.reload.ModelWatcher` -- hot model reload:
  watches the artifact path, loads + checksum-verifies on a side
  thread, and atomically swaps the served generation while in-flight
  requests drain on the old model;
* :func:`~repro.serve.http.server.serve_in_thread` -- run the whole
  server on a background thread (tests, benchmarks, notebooks).

Start one from the CLI with ``python -m repro serve --model model.json
--port 8000``; see ``examples/serve_http.py`` for the library API.
"""

from repro.serve.http.batcher import BatcherClosed, QueueFull, RequestBatcher
from repro.serve.http.protocol import HttpRequest, ProtocolError
from repro.serve.http.reload import ModelWatcher, ServedModel, load_versioned_model
from repro.serve.http.server import RockHttpServer, ServerHandle, serve_in_thread

__all__ = [
    "BatcherClosed",
    "HttpRequest",
    "ModelWatcher",
    "ProtocolError",
    "QueueFull",
    "RequestBatcher",
    "RockHttpServer",
    "ServedModel",
    "ServerHandle",
    "load_versioned_model",
    "serve_in_thread",
]
