"""Request coalescing: many concurrent single-point requests, one matmul.

:class:`~repro.serve.engine.AssignmentEngine.assign_batch` amortises
its fixed per-call cost (executor hop, metrics, the matmul setup) over
a whole batch, so a serving process wants concurrent ``POST /assign``
requests to share engine calls.  :class:`RequestBatcher` is that
coalescing point:

* :meth:`submit` enqueues a point and returns a future for its result;
  the queue is **bounded** -- a full queue raises :class:`QueueFull`,
  which the server maps to ``503 Retry-After`` (backpressure instead
  of unbounded memory growth);
* one flusher task collects a batch and hands it to the ``flush``
  coroutine, flushing when ``batch_max`` points are waiting **or** the
  oldest waiting point has been queued for ``batch_wait_us``
  microseconds, whichever comes first (so the wait bounds queueing
  delay, measured from arrival, not from when the flusher looked);
* while a flush is in flight new submissions pile up in the queue and
  form the next batch -- under closed-loop load the batch size adapts
  to the concurrency automatically.

``batch_max=1`` degrades to one engine call per request (the
no-batching baseline the benchmark compares against).
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Sequence
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = ["BatcherClosed", "QueueFull", "RequestBatcher"]

# upper edges for the coalesced-batch-size histogram
BATCH_SIZE_EDGES = (1, 2, 4, 8, 16, 32, 64, 256)


class QueueFull(RuntimeError):
    """The bounded submission queue is at capacity -- shed load."""


class BatcherClosed(RuntimeError):
    """The batcher is draining or closed; no new work is accepted."""


class RequestBatcher:
    """Coalesce single-point submissions into batched flush calls.

    Parameters
    ----------
    flush:
        ``async (points) -> results`` -- called with 1..batch_max
        points, must return one result per point, in order.  Raised
        exceptions propagate to every future of the batch.
    batch_max:
        Flush as soon as this many points are waiting.
    batch_wait_us:
        Flush once the oldest waiting point is this old (microseconds),
        even if the batch is not full.
    queue_depth:
        Bound on points admitted but not yet flushed; beyond it
        :meth:`submit` raises :class:`QueueFull`.
    registry:
        Optional metrics sink; records ``http.batcher.flushes``,
        ``http.batcher.rejected`` and the ``http.batcher.batch_size``
        histogram.
    """

    def __init__(
        self,
        flush: Callable[[list[Any]], Awaitable[Sequence[Any]]],
        batch_max: int = 64,
        batch_wait_us: int = 2000,
        queue_depth: int = 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be positive")
        if batch_wait_us < 0:
            raise ValueError("batch_wait_us must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self._flush = flush
        self.batch_max = batch_max
        self.batch_wait = batch_wait_us / 1e6
        self.queue_depth = queue_depth
        registry = registry if registry is not None else MetricsRegistry()
        self._flushes = registry.counter("http.batcher.flushes")
        self._rejected = registry.counter("http.batcher.rejected")
        self._sizes = registry.histogram(
            "http.batcher.batch_size", edges=BATCH_SIZE_EDGES
        )
        self._queue: asyncio.Queue[tuple[Any, asyncio.Future, float] | None] = (
            asyncio.Queue()
        )
        self._pending = 0
        self._closing = False
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        """Spawn the flusher task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def pending(self) -> int:
        """Points admitted but not yet answered (queued or in flush)."""
        return self._pending

    def submit(self, point: Any) -> asyncio.Future:
        """Enqueue one point; resolves to its flush result.

        Raises :class:`QueueFull` when ``queue_depth`` points are
        already pending, :class:`BatcherClosed` during shutdown.
        """
        if self._closing:
            raise BatcherClosed("batcher is shutting down")
        if self._pending >= self.queue_depth:
            self._rejected.inc()
            raise QueueFull(
                f"assignment queue at capacity ({self.queue_depth} pending)"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending += 1
        self._queue.put_nowait((point, future, loop.time()))
        return future

    async def aclose(self) -> None:
        """Stop accepting, flush everything already admitted, stop."""
        if self._closing:
            return
        self._closing = True
        if self._task is not None:
            self._queue.put_nowait(None)
            await self._task
            self._task = None

    # -- flusher ------------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                return
            batch = [first]
            # the wait allowance counts from the first point's arrival:
            # points that queued up during the previous flush have
            # already served their wait and flush immediately
            deadline = first[2] + self.batch_wait
            stop = False
            while len(batch) < self.batch_max:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except TimeoutError:
                        break
                if item is None:
                    stop = True
                    break
                batch.append(item)
            await self._dispatch(batch)
            if stop:
                return

    async def _dispatch(
        self, batch: list[tuple[Any, asyncio.Future, float]]
    ) -> None:
        self._flushes.inc()
        self._sizes.observe(len(batch))
        try:
            results = await self._flush([point for point, _, _ in batch])
        except Exception as exc:  # propagate to every waiter, keep serving
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
        else:
            for (_, future, _), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._pending -= len(batch)
