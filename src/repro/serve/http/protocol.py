"""A minimal HTTP/1.1 request/response codec over asyncio streams.

The serving layer deliberately avoids every HTTP framework (and the
synchronous ``http.server``): the whole protocol surface the server
needs -- request line, headers, ``Content-Length`` bodies, keep-alive
-- fits in a few hundred lines over ``asyncio`` streams, keeps the
dependency footprint at zero, and leaves the event loop in full
control of backpressure.

:func:`read_request` parses one request from a ``StreamReader`` with
hard limits on header and body size (oversized or malformed input
raises :class:`ProtocolError`, which the server maps to a 4xx close).
:func:`render_response` serialises status/headers/body to bytes.
Chunked request bodies are not supported -- every client the library
ships (benchmark load generator, examples, tests) sends
``Content-Length``, and rejecting chunked keeps parsing exact.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "read_request",
    "render_response",
]

# RFC-recommended reason phrases for every status the server emits
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed or over-limit HTTP input; carries the status to answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path (query stripped), headers, body."""

    method: str
    path: str
    query: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 keep-alive semantics: persistent unless ``close``."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`ProtocolError` on malformed input, oversized
    headers/body, or an EOF mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head too large", status=413) from exc
    if len(head) > max_header_bytes:
        raise ProtocolError("request head too large", status=413)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError("chunked request bodies are not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"bad Content-Length {length_header!r}")
        if length > max_body_bytes:
            raise ProtocolError("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return HttpRequest(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response, always with an explicit ``Content-Length``."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
