"""Versioned model loading and hot reload with atomic swap.

The serving process must pick up a re-fit model without dropping a
request.  The mechanism:

* :func:`load_versioned_model` reads a :class:`~repro.serve.RockModel`
  artifact, verifies its sha256 content checksum (corrupt files never
  reach serving), and derives the **model version** from the digest --
  two artifacts serve under the same version exactly when their
  content is identical;
* :class:`ServedModel` is an immutable bundle (model, engine, version,
  load time).  The holder's ``current`` attribute is replaced in a
  single assignment, so any reader -- the batcher snapshotting an
  engine for a flush, ``GET /model`` -- sees either the old bundle or
  the new one, never a mix, and requests already holding the old
  bundle drain on the old model;
* :class:`ModelWatcher` polls the artifact path from a side thread
  (``stat`` only in steady state; the load itself also runs on that
  thread, off the event loop), swaps on a changed ``(mtime_ns, size)``
  signature, and records reload counters.  A failed reload keeps the
  old model serving and surfaces the error on ``/healthz``.

The stat signature alone is not sufficient under the frequent-republish
pattern stream mode creates: a same-size in-place rewrite landing
within the filesystem's mtime granularity leaves ``(mtime_ns, size)``
unchanged and would be silently missed.  The watcher therefore treats
an unchanged-but-*recent* signature (mtime within
``rewrite_window_seconds`` of now) as suspicious and confirms identity
by re-hashing the artifact's embedded-checksum content; once the mtime
ages past the window, polls go back to stat-only.

Two clocks are kept deliberately: :attr:`ServedModel.loaded_monotonic`
is the basis for all age/staleness math (immune to wall-clock steps),
while :attr:`ServedModel.loaded_unix` exists for display only.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.serve.engine import AssignmentEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.model import RockModel, verify_artifact_checksum

__all__ = ["ModelWatcher", "ServedModel", "load_versioned_model"]


def _read_artifact(path: str | Path) -> tuple[RockModel, str]:
    """Load and checksum-verify an artifact; returns ``(model, full digest)``."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    digest = verify_artifact_checksum(data)
    return RockModel.from_dict(data), digest


def _artifact_digest(path: Path) -> str:
    """The content digest alone (the cheap identity probe for rewrites)."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return verify_artifact_checksum(data)


def load_versioned_model(path: str | Path) -> tuple[RockModel, str]:
    """Load and checksum-verify an artifact; returns ``(model, version)``.

    The version is the first 16 hex chars of the content digest --
    stable across re-saves of identical content, different for any
    content change.
    """
    model, digest = _read_artifact(path)
    return model, digest[:16]


@dataclass(frozen=True)
class ServedModel:
    """One immutable (model, engine, version) generation.

    ``loaded_monotonic`` is the staleness basis (compare against
    :func:`time.monotonic`); ``loaded_unix`` is wall clock for display
    and never enters age arithmetic.  ``digest`` is the full content
    sha256 backing the rewrite-identity check.
    """

    model: RockModel
    engine: AssignmentEngine
    version: str
    loaded_unix: float
    source_signature: tuple[int, int] | None = None  # (mtime_ns, size)
    loaded_monotonic: float = 0.0
    digest: str = ""

    def age_seconds(self, now_monotonic: float | None = None) -> float:
        """Monotonic model age; never negative, immune to clock steps."""
        now = time.monotonic() if now_monotonic is None else now_monotonic
        return max(0.0, now - self.loaded_monotonic)


def _file_signature(path: Path) -> tuple[int, int]:
    stat = path.stat()
    return (stat.st_mtime_ns, stat.st_size)


class ModelWatcher:
    """Owns the live :class:`ServedModel` and swaps it on file change.

    ``current`` is read lock-free (one attribute load); all mutation
    happens behind ``_swap_lock`` on the watcher thread (or via
    :meth:`check_once`, which tests and the server's startup call
    directly).
    """

    def __init__(
        self,
        path: str | Path,
        registry: MetricsRegistry | None = None,
        cache_size: int = 4096,
        poll_seconds: float = 1.0,
        rewrite_window_seconds: float = 2.0,
        assign_backend: str = "auto",
    ) -> None:
        if poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        if rewrite_window_seconds < 0:
            raise ValueError("rewrite_window_seconds must be non-negative")
        self.path = Path(path)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache_size = cache_size
        self.assign_backend = assign_backend
        self.poll_seconds = poll_seconds
        self.rewrite_window_seconds = rewrite_window_seconds
        self._reloads = self.registry.counter("http.reload.count")
        self._reload_errors = self.registry.counter("http.reload.errors")
        self._content_checks = self.registry.counter("http.reload.content_checks")
        self._swap_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_error: str | None = None
        self.current: ServedModel = self._load()

    def _load(self) -> ServedModel:
        signature = _file_signature(self.path)
        model, digest = _read_artifact(self.path)
        # every generation shares the one registry, so serve.* counters
        # keep accumulating across swaps instead of resetting; the
        # engine builds its AssignmentIndex here, once per generation --
        # batches snapshot a whole ServedModel, so a flush never mixes
        # an old index with a new model
        engine = AssignmentEngine(
            model,
            cache_size=self.cache_size,
            metrics=ServeMetrics(registry=self.registry),
            assign_backend=self.assign_backend,
        )
        return ServedModel(
            model=model,
            engine=engine,
            version=digest[:16],
            loaded_unix=time.time(),
            source_signature=signature,
            loaded_monotonic=time.monotonic(),
            digest=digest,
        )

    # -- polling ------------------------------------------------------------

    def _signature_suspicious(self, signature: tuple[int, int]) -> bool:
        """Whether an unchanged stat signature could still hide a rewrite.

        A same-size in-place rewrite within the filesystem's mtime
        granularity leaves ``(mtime_ns, size)`` equal.  That is only
        possible while the mtime is *recent*; once it ages past the
        rewrite window no new write can share it, and polling is
        stat-only again.
        """
        mtime_ns, _size = signature
        return time.time() - mtime_ns / 1e9 <= self.rewrite_window_seconds

    def check_once(self) -> bool:
        """Poll the artifact now; returns True when a swap happened.

        An unchanged stat signature is trusted only once the mtime has
        aged past ``rewrite_window_seconds``; a recent one is confirmed
        against the current generation's content digest, catching
        same-size rewrites inside the mtime granularity.  A vanished
        file or failed load keeps the previous model and records the
        error; serving is never interrupted by a bad write.
        """
        with self._swap_lock:
            try:
                signature = _file_signature(self.path)
                if signature == self.current.source_signature:
                    if not self._signature_suspicious(signature):
                        return False
                    self._content_checks.inc()
                    if _artifact_digest(self.path) == self.current.digest:
                        return False
                served = self._load()
            except (OSError, ValueError, KeyError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._reload_errors.inc()
                return False
            swapped = served.version != self.current.version
            # single attribute assignment = the atomic swap; in-flight
            # requests keep the bundle they already read
            self.current = served
            self.last_error = None
            if swapped:
                self._reloads.inc()
            return swapped

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._poll_loop, name="rock-model-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            self.check_once()
