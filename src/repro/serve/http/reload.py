"""Versioned model loading and hot reload with atomic swap.

The serving process must pick up a re-fit model without dropping a
request.  The mechanism:

* :func:`load_versioned_model` reads a :class:`~repro.serve.RockModel`
  artifact, verifies its sha256 content checksum (corrupt files never
  reach serving), and derives the **model version** from the digest --
  two artifacts serve under the same version exactly when their
  content is identical;
* :class:`ServedModel` is an immutable bundle (model, engine, version,
  load time).  The holder's ``current`` attribute is replaced in a
  single assignment, so any reader -- the batcher snapshotting an
  engine for a flush, ``GET /model`` -- sees either the old bundle or
  the new one, never a mix, and requests already holding the old
  bundle drain on the old model;
* :class:`ModelWatcher` polls the artifact path from a side thread
  (``stat`` only; the load itself also runs on that thread, off the
  event loop), swaps on a changed ``(mtime_ns, size)`` signature, and
  records reload counters.  A failed reload keeps the old model
  serving and surfaces the error on ``/healthz``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.serve.engine import AssignmentEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.model import RockModel, verify_artifact_checksum

__all__ = ["ModelWatcher", "ServedModel", "load_versioned_model"]


def load_versioned_model(path: str | Path) -> tuple[RockModel, str]:
    """Load and checksum-verify an artifact; returns ``(model, version)``.

    The version is the first 16 hex chars of the content digest --
    stable across re-saves of identical content, different for any
    content change.
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    digest = verify_artifact_checksum(data)
    return RockModel.from_dict(data), digest[:16]


@dataclass(frozen=True)
class ServedModel:
    """One immutable (model, engine, version) generation."""

    model: RockModel
    engine: AssignmentEngine
    version: str
    loaded_unix: float
    source_signature: tuple[int, int] | None = None  # (mtime_ns, size)


def _file_signature(path: Path) -> tuple[int, int]:
    stat = path.stat()
    return (stat.st_mtime_ns, stat.st_size)


class ModelWatcher:
    """Owns the live :class:`ServedModel` and swaps it on file change.

    ``current`` is read lock-free (one attribute load); all mutation
    happens behind ``_swap_lock`` on the watcher thread (or via
    :meth:`check_once`, which tests and the server's startup call
    directly).
    """

    def __init__(
        self,
        path: str | Path,
        registry: MetricsRegistry | None = None,
        cache_size: int = 4096,
        poll_seconds: float = 1.0,
    ) -> None:
        if poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        self.path = Path(path)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache_size = cache_size
        self.poll_seconds = poll_seconds
        self._reloads = self.registry.counter("http.reload.count")
        self._reload_errors = self.registry.counter("http.reload.errors")
        self._swap_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_error: str | None = None
        self.current: ServedModel = self._load()

    def _load(self) -> ServedModel:
        signature = _file_signature(self.path)
        model, version = load_versioned_model(self.path)
        # every generation shares the one registry, so serve.* counters
        # keep accumulating across swaps instead of resetting
        engine = AssignmentEngine(
            model,
            cache_size=self.cache_size,
            metrics=ServeMetrics(registry=self.registry),
        )
        return ServedModel(
            model=model,
            engine=engine,
            version=version,
            loaded_unix=time.time(),
            source_signature=signature,
        )

    # -- polling ------------------------------------------------------------

    def check_once(self) -> bool:
        """Poll the artifact now; returns True when a swap happened.

        A vanished file or failed load keeps the previous model and
        records the error; serving is never interrupted by a bad write.
        """
        with self._swap_lock:
            try:
                if _file_signature(self.path) == self.current.source_signature:
                    return False
                served = self._load()
            except (OSError, ValueError, KeyError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._reload_errors.inc()
                return False
            swapped = served.version != self.current.version
            # single attribute assignment = the atomic swap; in-flight
            # requests keep the bundle they already read
            self.current = served
            self.last_error = None
            if swapped:
                self._reloads.inc()
            return swapped

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._poll_loop, name="rock-model-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            self.check_once()
