"""The async assignment server: routes, batching, reload, observability.

:class:`RockHttpServer` is the long-running network front-end over a
versioned :class:`~repro.serve.RockModel` artifact -- the §4.5/§4.6
labeling phase as a service.  One asyncio event loop accepts
keep-alive HTTP/1.1 connections; CPU-bound engine calls run on the
default executor so the loop keeps accepting while numpy works.

Endpoints
---------
* ``POST /assign`` ``{"point": ...}`` -- single-point assignment,
  coalesced through the :class:`~repro.serve.http.batcher.RequestBatcher`
  into shared ``assign_batch`` calls; answers ``{"label",
  "model_version"}``.
* ``POST /assign_batch`` ``{"points": [...]}`` -- an explicit batch,
  sent to the engine directly (it already amortises); answers
  ``{"labels", "model_version"}``.
* ``GET /model`` -- the served model's version and facts, read
  atomically from the current generation.
* ``GET /healthz`` -- liveness plus reload status.
* ``GET /metrics`` -- the combined registry (engine ``serve.*`` +
  server ``http.*``) as Prometheus text exposition 0.0.4.

Observability: every request increments ``http.requests.<route>``,
observes ``http.latency.<route>``, and (bounded by
``trace_max_requests``) records a span nested under the server's root
``serve.http`` span.  Server-side counters live strictly under the
``http.*`` namespace -- engine-level ``serve.*`` families are recorded
once, by the engine, so the combined ``/metrics`` snapshot never
double-reports a family.

Backpressure: the batcher's queue and the in-flight point budget are
bounded; beyond them the server answers ``503`` with ``Retry-After``
instead of queueing without limit.  Shutdown is graceful: stop
accepting, drain admitted work, then stop the watcher and close the
root span.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Any

from repro.data.records import MISSING, CategoricalRecord
from repro.data.transactions import Transaction
from repro.obs.export import metrics_to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.serve.http.batcher import BatcherClosed, QueueFull, RequestBatcher
from repro.serve.http.protocol import (
    HttpRequest,
    ProtocolError,
    read_request,
    render_response,
)
from repro.serve.http.reload import ModelWatcher, ServedModel
from repro.serve.model import RockModel

__all__ = ["RockHttpServer", "ServerHandle", "serve_in_thread"]

# histogram edges for per-endpoint request latency, in seconds
LATENCY_EDGES = (0.0005, 0.002, 0.01, 0.05, 0.25, 1.0)

ROUTES = {
    ("POST", "/assign"): "assign",
    ("POST", "/assign_batch"): "assign_batch",
    ("GET", "/model"): "model",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
}


class _RequestError(Exception):
    """An error with a definite HTTP answer (4xx/5xx + JSON body)."""

    def __init__(
        self,
        status: int,
        message: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.extra_headers = extra_headers or {}


def point_decoder(model: RockModel):
    """A JSON-value -> point decoder matching the model's point type.

    Mirrors the artifact's representative encodings: item-set models
    decode JSON arrays into :class:`Transaction`, record models decode
    value rows (``null`` = missing) against the representatives'
    schema, and raw models pass values through untouched.
    """
    rep = next(rep for li in model.labeling_sets for rep in li)
    if isinstance(rep, (Transaction, frozenset, set)):
        def decode(value: Any) -> Transaction:
            if not isinstance(value, (list, tuple)):
                raise _RequestError(
                    400, "point must be a JSON array of items"
                )
            return Transaction(value)
        return decode
    if isinstance(rep, CategoricalRecord):
        schema = rep.schema
        width = len(schema.attributes)
        def decode(value: Any) -> CategoricalRecord:
            if not isinstance(value, (list, tuple)) or len(value) != width:
                raise _RequestError(
                    400,
                    f"point must be a JSON array of {width} attribute "
                    "values (null = missing)",
                )
            return CategoricalRecord(
                schema, [MISSING if v is None else v for v in value]
            )
        return decode
    return lambda value: value


class RockHttpServer:
    """Serve a versioned model artifact over HTTP with request batching.

    Parameters
    ----------
    model_path:
        The artifact to serve and watch for new versions.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    batch_max / batch_wait_us / queue_depth:
        Batcher tuning -- flush size, max queueing delay in
        microseconds, and the bounded-queue depth that triggers 503s.
    cache_size:
        LRU size for each model generation's engine.
    assign_backend:
        Scoring tier for each generation's engine (``"auto"``,
        ``"dense"``, ``"pruned"`` or ``"native"``); the reload watcher
        rebuilds the fast index once per model generation.
    poll_seconds:
        Artifact poll interval for hot reload.
    registry / tracer:
        Optional shared observability; private ones are created when
        omitted (``tracer.registry`` wins over ``registry`` when both
        are given).
    trace_max_requests:
        Per-request spans recorded under the root span before further
        requests only count (bounds a long-running server's memory).
    """

    def __init__(
        self,
        model_path: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 64,
        batch_wait_us: int = 2000,
        queue_depth: int = 1024,
        cache_size: int = 4096,
        assign_backend: str = "auto",
        poll_seconds: float = 1.0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_max_requests: int = 256,
    ) -> None:
        self.model_path = Path(model_path)
        self.host = host
        self.port = port
        self.tracer = tracer if tracer is not None else Tracer(registry=registry)
        self.registry = self.tracer.registry
        self.queue_depth = queue_depth
        self.trace_max_requests = trace_max_requests
        self.watcher = ModelWatcher(
            self.model_path,
            registry=self.registry,
            cache_size=cache_size,
            poll_seconds=poll_seconds,
            assign_backend=assign_backend,
        )
        self.batcher = RequestBatcher(
            self._flush_assign,
            batch_max=batch_max,
            batch_wait_us=batch_wait_us,
            queue_depth=queue_depth,
            registry=self.registry,
        )
        self._decoders: dict[str, Any] = {}
        self._root_span: Span | None = None
        self._span_t0 = (0.0, 0.0)
        self._span_lock = threading.Lock()
        self._started_monotonic = 0.0
        self._inflight_batch_points = 0
        self._server: asyncio.Server | None = None
        self._closing = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        """Bind, start the batcher and the reload watcher."""
        self._root_span = Span(
            name="serve.http",
            attrs={"model": str(self.model_path)},
        )
        self._span_t0 = (time.perf_counter(), time.process_time())
        self.tracer.attach_root(self._root_span)
        self._started_monotonic = time.monotonic()
        self.batcher.start()
        self.watcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    async def shutdown(self) -> None:
        """Graceful stop: close the listener, drain, stop the watcher."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.aclose()
        self.watcher.stop()
        if self._root_span is not None:
            wall0, cpu0 = self._span_t0
            self._root_span.wall_seconds = time.perf_counter() - wall0
            self._root_span.cpu_seconds = time.process_time() - cpu0

    async def serve_forever(self) -> None:
        """Block until the listener closes (i.e. until :meth:`shutdown`)."""
        if self._server is None:
            raise RuntimeError("call start() first")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- connection / request plumbing --------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(self._error_bytes(exc.status, str(exc), False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._closing
                payload = await self._dispatch(request)
                payload = render_response(
                    payload[0], payload[1], payload[2], payload[3], keep_alive
                )
                writer.write(payload)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _error_bytes(self, status: int, message: str, keep_alive: bool) -> bytes:
        body = json.dumps({"error": message}).encode("utf-8")
        return render_response(status, body, keep_alive=keep_alive)

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """Route one request; returns (status, body, content_type, headers)."""
        route = ROUTES.get((request.method, request.path))
        if route is None:
            known_path = request.path in {p for _, p in ROUTES}
            status = 405 if known_path else 404
            self.registry.inc("http.requests.unrouted")
            return (
                status,
                json.dumps(
                    {"error": f"no route for {request.method} {request.path}"}
                ).encode("utf-8"),
                "application/json",
                {},
            )
        self.registry.inc(f"http.requests.{route}")
        span = Span(name=f"http.{route}")
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            status, body, content_type, headers = await getattr(
                self, f"_route_{route}"
            )(request)
        except _RequestError as exc:
            status, headers = exc.status, exc.extra_headers
            body, content_type = (
                json.dumps({"error": str(exc)}).encode("utf-8"),
                "application/json",
            )
            if exc.status == 503:
                self.registry.inc("http.rejected")
            span.error = f"{exc.status}: {exc}"
        except Exception as exc:  # never kill the connection loop
            status, headers = 500, {}
            body, content_type = (
                json.dumps(
                    {"error": f"internal error: {type(exc).__name__}"}
                ).encode("utf-8"),
                "application/json",
            )
            self.registry.inc(f"http.errors.{route}")
            span.error = f"{type(exc).__name__}: {exc}"
        seconds = time.perf_counter() - wall0
        self.registry.histogram(
            f"http.latency.{route}", edges=LATENCY_EDGES
        ).observe(seconds)
        span.wall_seconds = seconds
        span.cpu_seconds = time.process_time() - cpu0
        span.attrs["status"] = status
        self._record_span(span)
        return status, body, content_type, headers

    def _record_span(self, span: Span) -> None:
        root = self._root_span
        if root is None:
            return
        with self._span_lock:
            if len(root.children) < self.trace_max_requests:
                root.children.append(span)
            else:
                self.registry.inc("http.trace.dropped")

    # -- routes -------------------------------------------------------------

    def _decode(self, served: ServedModel, value: Any) -> Any:
        decoder = self._decoders.get(served.version)
        if decoder is None:
            decoder = self._decoders[served.version] = point_decoder(
                served.model
            )
            # generations are few; keep only the live one plus the one
            # draining requests still reference
            for version in list(self._decoders)[:-2]:
                del self._decoders[version]
        return decoder(value)

    def _json_body(self, request: HttpRequest) -> dict[str, Any]:
        try:
            data = json.loads(request.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _RequestError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(data, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return data

    async def _flush_assign(self, points: list[Any]) -> list[tuple[int, str]]:
        """Batcher flush: one engine call, one model generation per batch."""
        served = self.watcher.current
        labels = await asyncio.get_running_loop().run_in_executor(
            None, served.engine.assign_batch, points
        )
        return [(int(label), served.version) for label in labels]

    async def _route_assign(self, request: HttpRequest):
        data = self._json_body(request)
        if "point" not in data:
            raise _RequestError(400, 'missing "point" in request body')
        point = self._decode(self.watcher.current, data["point"])
        try:
            future = self.batcher.submit(point)
        except QueueFull as exc:
            raise _RequestError(
                503, str(exc), extra_headers={"Retry-After": "1"}
            ) from None
        except BatcherClosed as exc:
            raise _RequestError(
                503, str(exc), extra_headers={"Retry-After": "2"}
            ) from None
        label, version = await future
        body = json.dumps({"label": label, "model_version": version})
        return 200, body.encode("utf-8"), "application/json", {}

    async def _route_assign_batch(self, request: HttpRequest):
        data = self._json_body(request)
        points = data.get("points")
        if not isinstance(points, list):
            raise _RequestError(400, '"points" must be a JSON array')
        if not points:
            body = json.dumps(
                {"labels": [], "model_version": self.watcher.current.version}
            )
            return 200, body.encode("utf-8"), "application/json", {}
        if self._closing:
            raise _RequestError(
                503, "server is draining", extra_headers={"Retry-After": "2"}
            )
        if self._inflight_batch_points + len(points) > self.queue_depth:
            raise _RequestError(
                503,
                f"batch queue at capacity ({self.queue_depth} points)",
                extra_headers={"Retry-After": "1"},
            )
        served = self.watcher.current
        decoded = [self._decode(served, value) for value in points]
        self._inflight_batch_points += len(decoded)
        try:
            labels = await asyncio.get_running_loop().run_in_executor(
                None, served.engine.assign_batch, decoded
            )
        finally:
            self._inflight_batch_points -= len(decoded)
        body = json.dumps(
            {
                "labels": [int(label) for label in labels],
                "model_version": served.version,
            }
        )
        return 200, body.encode("utf-8"), "application/json", {}

    async def _route_model(self, request: HttpRequest):
        served = self.watcher.current  # one read = one consistent generation
        body = json.dumps(
            {
                "model_version": served.version,
                # age math is monotonic (clock-step immune); the wall
                # timestamp is display-only provenance
                "model_age_seconds": served.age_seconds(),
                "loaded_unix": served.loaded_unix,
                "n_clusters": served.model.n_clusters,
                "theta": served.model.theta,
                "f_theta": served.model.f_theta,
                "labeling_set_sizes": [
                    len(li) for li in served.model.labeling_sets
                ],
                "cluster_sizes": served.model.cluster_sizes,
                "vectorized": served.engine.vectorized,
                "assign_backend": served.engine.assign_backend,
                "metadata": served.model.metadata,
            }
        )
        return 200, body.encode("utf-8"), "application/json", {}

    async def _route_healthz(self, request: HttpRequest):
        snap = self.registry.snapshot()["counters"]
        body = json.dumps(
            {
                "status": "draining" if self._closing else "ok",
                "model_version": self.watcher.current.version,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "model_age_seconds": self.watcher.current.age_seconds(),
                "reloads": int(snap.get("http.reload.count", 0)),
                "reload_errors": int(snap.get("http.reload.errors", 0)),
                "last_reload_error": self.watcher.last_error,
                "pending": self.batcher.pending,
            }
        )
        return 200, body.encode("utf-8"), "application/json", {}

    async def _route_metrics(self, request: HttpRequest):
        text = metrics_to_prometheus(self.registry.snapshot())
        return (
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
            {},
        )


# ---------------------------------------------------------------------------
# thread-hosted server (tests, benchmarks, examples, notebooks)
# ---------------------------------------------------------------------------

class ServerHandle:
    """A running server on a background event-loop thread."""

    def __init__(
        self,
        server: RockHttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully shut the server down and join the loop thread."""
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        ).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve_in_thread(model_path: str | Path, **kwargs: Any) -> ServerHandle:
    """Start a :class:`RockHttpServer` on a daemon thread and wait for bind.

    Keyword arguments pass through to :class:`RockHttpServer`.  The
    returned handle is a context manager; leaving the ``with`` block
    performs a graceful shutdown.
    """
    server = RockHttpServer(model_path, **kwargs)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="rock-http-server", daemon=True
    )
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(30.0)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5.0)
        loop.close()
        raise
    return ServerHandle(server, loop, thread)
