"""An in-process clustering service facade.

:class:`ClusteringService` ties the serve subsystem together: load a
persisted :class:`~repro.serve.model.RockModel`, assign single points,
batches, streams or whole files, and expose one metrics snapshot for
everything that flowed through.  It is the object an application embeds
(or a future RPC layer wraps) -- the CLI's ``repro assign`` is a thin
shell around it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.io import iter_transactions, read_uci_data
from repro.serve.engine import AssignmentEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.model import RockModel
from repro.serve.parallel import assign_stream


class ClusteringService:
    """Fit-once / serve-many: everything after the model is frozen.

    Parameters
    ----------
    model:
        The servable artifact (load one with
        :meth:`ClusteringService.from_file`).
    cache_size:
        LRU size for the embedded engine (and per worker for parallel
        streams).
    metrics:
        Optional shared sink; a private one is created when omitted.
    assign_backend:
        Scoring tier for the embedded engine (and for parallel stream
        workers): ``"auto"``, ``"dense"``, ``"pruned"`` or
        ``"native"``.
    """

    def __init__(
        self,
        model: RockModel,
        cache_size: int = 4096,
        metrics: ServeMetrics | None = None,
        assign_backend: str = "auto",
    ) -> None:
        self.model = model
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._cache_size = cache_size
        self._assign_backend = assign_backend
        self.engine = AssignmentEngine(
            model,
            cache_size=cache_size,
            metrics=self.metrics,
            assign_backend=assign_backend,
        )

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        cache_size: int = 4096,
        metrics: ServeMetrics | None = None,
        assign_backend: str = "auto",
    ) -> "ClusteringService":
        """Load a saved model and stand up a service around it."""
        return cls(
            RockModel.load(path),
            cache_size=cache_size,
            metrics=metrics,
            assign_backend=assign_backend,
        )

    @property
    def n_clusters(self) -> int:
        return self.model.n_clusters

    def assign(self, point: Any) -> int:
        """Cluster index for one point, -1 for an outlier."""
        return self.engine.assign(point)

    def assign_batch(self, points: Sequence[Any]) -> np.ndarray:
        """Labels for an in-memory batch, in input order."""
        return self.engine.assign_batch(points)

    def assign_stream(
        self,
        points: Iterable[Any],
        workers: int = 1,
        chunk_size: int = 2048,
    ) -> np.ndarray:
        """Labels for an arbitrarily large stream; ``workers > 1`` fans out."""
        if workers <= 1:
            return self.engine.assign_all(points, batch_size=chunk_size)
        return assign_stream(
            self.model,
            points,
            workers=workers,
            chunk_size=chunk_size,
            cache_size=self._cache_size,
            metrics=self.metrics,
            assign_backend=self._assign_backend,
            prebuilt_index=self.engine.fast_index,
        )

    def assign_file(
        self,
        source: str | Path,
        output: str | Path | None = None,
        input_format: str = "transactions",
        workers: int = 1,
        chunk_size: int = 2048,
    ) -> np.ndarray:
        """Label a data file (the §4.6 "data on disk"), optionally writing labels.

        ``transactions`` input streams without materialising the file;
        ``uci`` input infers column names from the first line the same
        way the CLI's clustering commands do.
        """
        if input_format == "transactions":
            points: Iterable[Any] = iter_transactions(source)
        elif input_format == "uci":
            with open(source, encoding="utf-8") as handle:
                first = handle.readline()
            n_columns = len(first.strip().split(","))
            attributes = [f"col{i}" for i in range(n_columns - 1)]
            points = read_uci_data(source, attributes)
        else:
            raise ValueError(f"unknown input format {input_format!r}")
        labels = self.assign_stream(points, workers=workers, chunk_size=chunk_size)
        if output is not None:
            Path(output).write_text(
                "\n".join(str(int(l)) for l in labels) + "\n", encoding="utf-8"
            )
        return labels

    def metrics_snapshot(self) -> dict[str, Any]:
        """The service-wide metrics snapshot (engine + streams)."""
        return self.metrics.snapshot()

    def describe(self) -> dict[str, Any]:
        """Model facts an operator wants at a glance."""
        return {
            "n_clusters": self.model.n_clusters,
            "theta": self.model.theta,
            "f_theta": self.model.f_theta,
            "labeling_set_sizes": [len(li) for li in self.model.labeling_sets],
            "cluster_sizes": self.model.cluster_sizes,
            "vectorized": self.engine.vectorized,
            "assign_backend": self.engine.assign_backend,
            "metadata": dict(self.model.metadata),
        }
