"""Chunked multiprocessing assignment for disk-scale labeling runs.

The §4.6 labeling scan is embarrassingly parallel: every point is
scored independently against the same frozen model.  This module
shards an input stream into chunks, ships the *model* (as its JSON
dict -- cheap, a few KB) plus the caller's prebuilt
:class:`~repro.serve.index.AssignmentIndex` (pure numpy arrays, so it
pickles; each worker skips the index build) to each worker once via
the pool initializer, and assigns chunks with a per-worker
:class:`AssignmentEngine`.
``imap`` keeps results in submission order, so output labels line up
with input points exactly.  Each chunk travels back as a label array
plus a :class:`ServeMetrics` snapshot delta, which the caller merges
into its sink -- worker-side cache and latency activity is observable,
not discarded.

Models whose configuration cannot be serialised (a custom similarity
callable) fall back to single-process assignment transparently.

The pool/chunking mechanics live in :mod:`repro.parallel.pool` (shared
with the fit-path kernels); this module only supplies the serving
payload and task functions.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.parallel.pool import default_workers, imap_chunked, iter_chunks
from repro.serve.engine import AssignmentEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.model import RockModel

# back-compat alias: chunking moved to repro.parallel.pool
_chunks = iter_chunks

__all__ = ["assign_stream", "default_workers"]

# per-worker engine, built once by _init_worker
_WORKER_ENGINE: AssignmentEngine | None = None


def _init_worker(
    model_dict: dict[str, Any],
    cache_size: int,
    assign_backend: str = "auto",
    prebuilt_index: Any | None = None,
) -> None:
    global _WORKER_ENGINE
    # the index arrives prebuilt through the payload; native kernel
    # handles are never shipped -- each worker re-resolves its own
    _WORKER_ENGINE = AssignmentEngine(
        RockModel.from_dict(model_dict),
        cache_size=cache_size,
        assign_backend=assign_backend,
        prebuilt_index=prebuilt_index,
    )


def _assign_chunk(chunk: list[Any]) -> tuple[np.ndarray, dict[str, Any]]:
    """Assign one chunk; return its labels plus a metrics *delta*.

    A fresh :class:`ServeMetrics` is swapped in per chunk so the
    returned snapshot covers exactly this chunk's activity (the
    worker's LRU cache still persists across chunks) -- the caller
    merges the deltas into its sink without double counting.
    """
    assert _WORKER_ENGINE is not None, "worker pool not initialised"
    _WORKER_ENGINE.metrics = ServeMetrics()
    labels = _WORKER_ENGINE.assign_batch(chunk)
    return labels, _WORKER_ENGINE.metrics.snapshot()


def assign_stream(
    model: RockModel,
    points: Iterable[Any],
    workers: int | None = None,
    chunk_size: int = 2048,
    cache_size: int = 4096,
    metrics: ServeMetrics | None = None,
    assign_backend: str = "auto",
    prebuilt_index: Any | None = None,
) -> np.ndarray:
    """Assign an arbitrarily large stream of points, in input order.

    Parameters
    ----------
    model:
        The servable artifact.
    points:
        Any iterable of points (e.g.
        :func:`repro.data.io.iter_transactions` streaming from disk).
    workers:
        Process count; ``None`` picks :func:`default_workers`, ``<= 1``
        runs single-process.
    chunk_size:
        Points per work unit; larger chunks amortise IPC, smaller
        chunks balance better.
    cache_size:
        Per-worker LRU size (each worker caches independently).
    metrics:
        Optional sink; receives every per-worker batch observation
        (cache hits/misses/uncacheable, per-batch latencies, outlier
        counts) merged from worker snapshots, plus one
        ``assign_stream`` latency observation for the whole run.
    assign_backend:
        Scoring tier for the per-worker engines (see
        :class:`AssignmentEngine`).
    prebuilt_index:
        An :class:`~repro.serve.index.AssignmentIndex` already built
        for this model; shipped to every worker through the pool
        payload so none of them rebuilds it.  Built here once when
        omitted (and the tier needs one).

    Returns
    -------
    ``(n,)`` int64 labels, -1 for outliers, aligned with the input.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if workers is None:
        workers = default_workers()
    start = time.perf_counter()
    model_dict: dict[str, Any] | None = None
    if workers > 1:
        try:
            model_dict = model.to_dict()
        except ValueError:
            # custom similarity: the model cannot cross a process
            # boundary without pickle, so stay in-process
            workers = 1
    if workers <= 1 or model_dict is None:
        engine = AssignmentEngine(
            model,
            cache_size=cache_size,
            metrics=metrics,
            assign_backend=assign_backend,
            prebuilt_index=prebuilt_index,
        )
        labels = engine.assign_all(points, batch_size=chunk_size)
        if metrics is not None:
            metrics.observe_latency("assign_stream", time.perf_counter() - start)
        return labels

    if prebuilt_index is None:
        # build the index once here rather than once per worker; a
        # throwaway engine resolves the tier exactly as workers will
        prebuilt_index = AssignmentEngine(
            model, cache_size=0, assign_backend=assign_backend
        ).fast_index

    # per-chunk label arrays, concatenated once at the end -- a stream
    # of millions of points must not be re-boxed into Python ints
    collected: list[np.ndarray] = []
    for part, snapshot in imap_chunked(
        _assign_chunk,
        iter_chunks(points, chunk_size),
        workers=workers,
        initializer=_init_worker,
        initargs=(model_dict, cache_size, assign_backend, prebuilt_index),
    ):
        collected.append(part)
        if metrics is not None:
            metrics.merge(snapshot)
    labels = (
        np.concatenate(collected) if collected else np.empty(0, dtype=np.int64)
    )
    if metrics is not None:
        metrics.observe_latency("assign_stream", time.perf_counter() - start)
    return labels
