"""repro.serve -- deploy a finished clustering as an assignment service.

The paper's own deployment story (Section 4.6) is fit-once /
serve-many: cluster a (sampled) data set once, persist the labeling
sets, then stream any amount of data through cheap per-point
assignment.  This package is that second phase, productionised:

* :class:`~repro.serve.model.RockModel` -- the versioned JSON artifact
  (labeling sets, theta, ``f(theta)``, similarity config, cluster
  metadata);
* :class:`~repro.serve.engine.AssignmentEngine` -- vectorised batch
  assignment with an LRU cache, exactly equivalent to
  :class:`~repro.core.labeling.ClusterLabeler`;
* :class:`~repro.serve.index.AssignmentIndex` -- the item ->
  representative inverted index behind the ``pruned`` and ``native``
  fast-assignment tiers (candidate-only scoring, bit-identical to the
  dense matmul);
* :func:`~repro.serve.parallel.assign_stream` -- chunked
  multiprocessing for disk-scale labeling runs, order-preserving;
* :class:`~repro.serve.metrics.ServeMetrics` -- counters / histograms
  behind one ``snapshot()`` dict;
* :class:`~repro.serve.service.ClusteringService` -- the facade tying
  it all together (what ``repro assign`` uses);
* :mod:`repro.serve.http` -- the async network front-end
  (``repro serve``): request batching, hot model reload,
  backpressure, Prometheus ``/metrics``.

Quickstart::

    from repro import RockPipeline
    from repro.serve import ClusteringService, RockModel

    result, model = RockPipeline(k=4, theta=0.5, sample_size=500,
                                 seed=0).fit_model(points)
    model.save("model.json")

    service = ClusteringService.from_file("model.json")
    labels = service.assign_batch(new_points)
"""

from repro.serve.engine import AssignmentEngine
from repro.serve.index import AssignmentIndex, resolve_assign_backend
from repro.serve.metrics import ServeMetrics
from repro.serve.model import MODEL_FORMAT, MODEL_VERSION, RockModel, model_from_result
from repro.serve.parallel import assign_stream, default_workers
from repro.serve.service import ClusteringService

__all__ = [
    "AssignmentEngine",
    "AssignmentIndex",
    "ClusteringService",
    "MODEL_FORMAT",
    "MODEL_VERSION",
    "RockModel",
    "ServeMetrics",
    "assign_stream",
    "default_workers",
    "model_from_result",
    "resolve_assign_backend",
]
