"""The inverted-index fast path for §4.6 batch assignment.

:class:`~repro.core.labeling.LabelingIndex` scores a batch against
*every* representative with one dense ``(B, vocab) @ (vocab, total)``
matmul.  That is wasteful in exactly the way serving traffic is shaped:
at ``theta > 0`` a point can only be a neighbor of representatives it
shares at least one item with, and real categorical points touch a
handful of the vocabulary.  :class:`AssignmentIndex` therefore builds,
once per model load:

* an **item -> representatives inverted index** (the CSC view of the
  representative indicator matrix, stored as ``inv_indptr`` /
  ``inv_reps`` flat arrays);
* exact per-representative set sizes and cluster ids, plus the
  per-cluster ``(|L_i| + 1)^f`` normalisers.

``assign`` then encodes each query block as a sparse CSR (column
indices only -- the dense ``(B, vocab)`` 0/1 matrix never exists),
gathers the candidate representatives per point from the posting
lists, and scores **only candidates**: the same integer intersections
and the same float64 division as the dense path, so labels are
bit-for-bit identical to ``ClusterLabeler.assign`` (property-tested).
Points with no candidate representative short-circuit straight to the
outlier label ``-1`` without touching any arithmetic.

Three scoring tiers share this index:

``pruned``
    Candidate gather via a scipy sparse product (the
    :class:`~repro.core.neighbors.SparseTransactionScorer` machinery:
    CSR x CSR intersection counts, ``searchsorted`` row recovery), or
    a pure-numpy posting-list gather when scipy is unavailable.
``native``
    The ``assign_block`` kernel of :mod:`repro.native` (numba or C
    tier) fusing candidate gather, threshold test and best-cluster
    argmax in one pass over the CSR arrays; pass the probed kernel
    namespace into :meth:`assign`.
``dense``
    Not in this module -- callers keep using ``LabelingIndex.assign``
    (the engine's ``assign_backend="dense"``).

Why the tiers agree bit for bit: intersections are small integers
(exact in float64), a candidate pair has ``inter >= 1`` and hence
``union >= 1``, so the dense path's guarded ``inter / max(union,
1e-300)`` reduces to the plain ``inter / union`` every tier computes;
non-candidates have ``sim == 0.0 < theta``.  ``theta == 0`` makes
*every* representative a neighbor of every point (``sim >= 0`` always
holds, matching the dense ``np.where``), so that degenerate case is
answered with constant per-cluster counts instead of candidate
pruning.  Ties in the final argmax break toward the lowest cluster
index in every tier (``np.argmax`` semantics); a cluster without
neighbors scores exactly ``0.0`` while any neighbor count >= 1 scores
``> 0``, which is what lets the native kernel scan only the touched
clusters.

The index is a pure-data object (numpy arrays + the vocabulary dict):
it pickles cleanly, so :func:`repro.serve.parallel.assign_stream`
ships one prebuilt copy to every worker through the pool initializer
instead of rebuilding it per process.  Kernel namespaces hold ctypes
handles and are deliberately *not* stored on the index -- they are
resolved per process and passed into ``assign``.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.labeling import LabelingIndex
from repro.core.neighbors import _scipy_sparse_available

# engine-facing backend names: "auto" resolves to the best available
# tier, the rest force one (forced "native" degrades to "pruned" with
# a warning when no probed kernel offers assign_block)
ASSIGN_BACKENDS = ("auto", "dense", "pruned", "native")


def resolve_assign_backend(requested: str = "auto") -> tuple[str, Any | None]:
    """Resolve a requested assignment backend to ``(tier, kernels)``.

    ``auto`` promotes to ``native`` only when
    :func:`repro.native.auto_native` opts in (numba importable or
    ``REPRO_NATIVE=1``) *and* the probed kernel namespace provides
    ``assign_block``; otherwise it picks ``pruned``.  ``dense`` and
    ``pruned`` never touch the native probe.  The returned ``kernels``
    is ``None`` except for the ``native`` tier.
    """
    if requested not in ASSIGN_BACKENDS:
        raise ValueError(
            f"unknown assign backend {requested!r}; expected one of "
            f"{ASSIGN_BACKENDS}"
        )
    if requested in ("dense", "pruned"):
        return requested, None
    from repro.native import auto_native, get_kernels

    if requested == "native":
        kernels = get_kernels()
        if kernels is not None and hasattr(kernels, "assign_block"):
            return "native", kernels
        warnings.warn(
            "assign_backend='native' requested but no native backend "
            "provides the assign kernel; falling back to 'pruned'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "pruned", None
    # auto: silent best-available choice
    if auto_native():
        kernels = get_kernels()
        if kernels is not None and hasattr(kernels, "assign_block"):
            return "native", kernels
    return "pruned", None


class AssignmentIndex:
    """Item->representative inverted index over a :class:`LabelingIndex`.

    Parameters
    ----------
    index:
        The dense labeling index to mirror.  All derived arrays are
        built once here; the source index is not retained.
    """

    def __init__(self, index: LabelingIndex) -> None:
        self.theta = float(index.theta)
        self.f_theta = float(index.f_theta)
        self.normalisers = np.ascontiguousarray(index.normalisers, dtype=np.float64)
        self.vocabulary = index.vocabulary
        n_reps, vocab = index.rep_matrix.shape
        self.n_reps = n_reps
        self.vocab_size = vocab
        # CSC of the (total_reps, vocab) indicator matrix: transposing
        # first makes np.nonzero emit (item, rep) pairs item-major with
        # ascending rep ids inside each posting list
        items_of, reps_of = np.nonzero(index.rep_matrix.T)
        self.inv_indptr = np.zeros(vocab + 1, dtype=np.int64)
        np.cumsum(np.bincount(items_of, minlength=vocab), out=self.inv_indptr[1:])
        self.inv_reps = np.ascontiguousarray(reps_of, dtype=np.int32)
        # exact integer set sizes (the dense index stores them as
        # float64; the values are small integers either way)
        self.rep_sizes = np.ascontiguousarray(index.rep_sizes, dtype=np.int32)
        rep_cluster = np.empty(n_reps, dtype=np.int32)
        for c, (a, b) in enumerate(index.slices):
            rep_cluster[a:b] = c
        self.rep_cluster = rep_cluster
        self.n_clusters = index.n_clusters
        # |L_c| per cluster: the constant neighbor counts of theta == 0
        self.cluster_rep_counts = np.array(
            [b - a for a, b in index.slices], dtype=np.int64
        )
        self._rep_t = None  # lazily built scipy CSR of the transpose

    # -- pickling (pool payloads) -------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_rep_t"] = None  # rebuilt lazily in the worker
        return state

    # -- sparse query encoding ----------------------------------------------

    def encode_sparse(
        self, points: Sequence[Any]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-encode a batch: ``(q_indptr, q_items, q_sizes)``.

        ``q_items[q_indptr[b]:q_indptr[b+1]]`` are the in-vocabulary
        column ids of point ``b``; ``q_sizes[b]`` is the point's *true*
        item count -- out-of-vocabulary items intersect nothing but
        still enlarge every union, exactly as in
        :meth:`LabelingIndex.encode`.
        """
        from repro.core.similarity import _as_item_set

        n = len(points)
        q_indptr = np.zeros(n + 1, dtype=np.int64)
        q_sizes = np.zeros(n, dtype=np.int64)
        columns: list[int] = []
        lookup = self.vocabulary.get
        for b, point in enumerate(points):
            items = _as_item_set(point)
            q_sizes[b] = len(items)
            for item in items:
                column = lookup(item)
                if column is not None:
                    columns.append(column)
            q_indptr[b + 1] = len(columns)
        q_items = np.asarray(columns, dtype=np.int32)
        return q_indptr, q_items, q_sizes

    # -- candidate scoring ---------------------------------------------------

    def _candidates(
        self, q_indptr: np.ndarray, q_items: np.ndarray, n_points: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, reps, inter)`` for every point/representative pair
        sharing at least one item.  Intersection counts are exact
        integers; pairs not returned have ``inter == 0``.
        """
        if q_items.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        if _scipy_sparse_available():
            from scipy import sparse

            if self._rep_t is None:
                # CSR of the (vocab, n_reps) transpose: the inverted
                # index arrays *are* its indptr/indices
                self._rep_t = sparse.csr_matrix(
                    (
                        np.ones(self.inv_reps.size, dtype=np.int64),
                        self.inv_reps,
                        self.inv_indptr,
                    ),
                    shape=(self.vocab_size, self.n_reps),
                )
            q = sparse.csr_matrix(
                (np.ones(q_items.size, dtype=np.int64), q_items, q_indptr),
                shape=(n_points, self.vocab_size),
            )
            inter_mat = (q @ self._rep_t).tocsr()
            # searchsorted row recovery, as in SparseTransactionScorer:
            # side="right" walks correctly across empty rows
            pos = np.arange(inter_mat.data.size)
            rows = np.searchsorted(inter_mat.indptr, pos, side="right") - 1
            cols = inter_mat.indices.astype(np.int64, copy=False)
            inter = inter_mat.data.astype(np.int64, copy=False)
            return rows.astype(np.int64, copy=False), cols, inter
        # numpy fallback: gather each query item's posting list with the
        # concatenated-aranges trick, then multiplicity-count the
        # (point, rep) codes -- the multiplicity IS the intersection
        starts = self.inv_indptr[q_items]
        lens = self.inv_indptr[q_items + np.int32(1)] - starts
        total = int(lens.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        point_of_item = np.repeat(
            np.arange(n_points, dtype=np.int64), np.diff(q_indptr)
        )
        offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
        gather = np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
        gather += np.repeat(starts, lens)
        reps = self.inv_reps[gather].astype(np.int64, copy=False)
        rows = np.repeat(point_of_item, lens)
        codes, inter = np.unique(rows * self.n_reps + reps, return_counts=True)
        return codes // self.n_reps, codes % self.n_reps, inter.astype(np.int64)

    def neighbor_counts(self, points: Sequence[Any]) -> np.ndarray:
        """``(B, n_clusters)`` neighbor counts, equal to the dense path's."""
        points = list(points)
        q_indptr, q_items, q_sizes = self.encode_sparse(points)
        return self._block_counts(q_indptr, q_items, q_sizes)

    def _block_counts(
        self, q_indptr: np.ndarray, q_items: np.ndarray, q_sizes: np.ndarray
    ) -> np.ndarray:
        n_points = q_sizes.size
        if self.theta <= 0.0:
            # sim >= 0 always holds, so every representative is a
            # neighbor of every point -- constant per-cluster counts
            return np.broadcast_to(
                self.cluster_rep_counts, (n_points, self.n_clusters)
            )
        rows, reps, inter = self._candidates(q_indptr, q_items, n_points)
        counts = np.zeros((n_points, self.n_clusters), dtype=np.int64)
        if rows.size == 0:
            return counts
        # candidates have inter >= 1 hence union >= 1: the dense path's
        # guarded division reduces to this exact float64 quotient
        union = self.rep_sizes[reps] + q_sizes[rows] - inter
        sim = inter.astype(np.float64) / union.astype(np.float64)
        neighbor = sim >= self.theta
        flat = rows[neighbor] * self.n_clusters + self.rep_cluster[reps[neighbor]]
        counts.ravel()[:] = np.bincount(
            flat, minlength=n_points * self.n_clusters
        )
        return counts

    # -- assignment ----------------------------------------------------------

    def assign(
        self,
        points: Sequence[Any],
        block_size: int = 8192,
        kernels: Any | None = None,
    ) -> np.ndarray:
        """Batch-assign; ``-1`` for points with no neighbors anywhere.

        ``kernels`` is a probed :mod:`repro.native` namespace; when it
        provides ``assign_block`` (and ``theta > 0``) the fused native
        kernel runs, otherwise the numpy/scipy pruned path.
        """
        return self.assign_with_scores(points, block_size=block_size, kernels=kernels)[0]

    def assign_with_scores(
        self,
        points: Sequence[Any],
        block_size: int = 8192,
        kernels: Any | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels plus each point's winning normalised score.

        Outliers score ``0.0``.  The score array equals
        ``(counts / normalisers)[arange, labels]`` of the dense path --
        the :class:`~repro.stream.runner.StreamClusterer` confidence
        values -- bit for bit.
        """
        points = list(points)
        n = len(points)
        labels = np.empty(n, dtype=np.int64)
        best = np.empty(n, dtype=np.float64)
        use_kernel = (
            kernels is not None
            and getattr(kernels, "assign_block", None) is not None
            and self.theta > 0.0
        )
        for start in range(0, n, max(block_size, 1)):
            block = points[start : start + block_size]
            q_indptr, q_items, q_sizes = self.encode_sparse(block)
            stop = start + len(block)
            if use_kernel:
                labels[start:stop], best[start:stop] = kernels.assign_block(
                    q_indptr,
                    q_items,
                    q_sizes,
                    self.inv_indptr,
                    self.inv_reps,
                    self.rep_sizes,
                    self.rep_cluster,
                    self.normalisers,
                    self.n_clusters,
                    self.theta,
                )
                continue
            counts = self._block_counts(q_indptr, q_items, q_sizes)
            scores = counts / self.normalisers
            block_labels = np.argmax(scores, axis=1)
            block_best = scores[np.arange(len(block)), block_labels]
            outliers = ~counts.any(axis=1)
            block_labels[outliers] = -1
            block_best[outliers] = 0.0
            labels[start:stop] = block_labels
            best[start:stop] = block_best
        return labels, best
