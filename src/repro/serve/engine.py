"""High-throughput batch assignment against a :class:`RockModel`.

The per-point :class:`~repro.core.labeling.ClusterLabeler` pays Python
overhead for every point: one encode, one matrix-vector product, one
argmax.  :class:`AssignmentEngine` amortises that over whole batches --
a ``(B, vocab)`` indicator matrix is scored against all representatives
with a single matmul per block (the same vectorised-Jaccard trick the
neighbor computation of :mod:`repro.core.neighbors` uses) -- and adds:

* an LRU cache keyed on the point's item set, so duplicate and repeated
  points (ubiquitous in categorical data, where the value space is
  small) skip scoring entirely;
* a tiered fast path: the default ``pruned`` backend scores each point
  only against candidate representatives gathered from the
  :class:`~repro.serve.index.AssignmentIndex` inverted index (built
  once at engine construction), and ``native`` fuses that gather with
  the argmax in a :mod:`repro.native` kernel -- both bit-identical to
  the dense matmul (``assign_backend="dense"``);
* a pure-Python fallback for custom similarities, delegating per point
  to the scalar :class:`ClusterLabeler` path;
* metrics (requests, outlier rate, cache hit rate, latency) recorded on
  a shared :class:`~repro.serve.metrics.ServeMetrics`, plus one
  ``serve.assign.backend.<tier>`` gauge marking the active tier.

Assignments are bit-for-bit identical to ``ClusterLabeler.assign`` --
the equivalence is property-tested for every backend tier.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence, Sized
from typing import Any

import numpy as np

from repro.core.similarity import _as_item_set
from repro.serve.index import AssignmentIndex, resolve_assign_backend
from repro.serve.metrics import ServeMetrics
from repro.serve.model import RockModel

# every value engine.assign_backend can take; "fallback" marks the
# scalar custom-similarity path where no index exists at all
BACKEND_TIERS = ("dense", "pruned", "native", "fallback")


class AssignmentEngine:
    """Vectorised batch assignment with caching and metrics.

    Parameters
    ----------
    model:
        The servable artifact to assign against.
    cache_size:
        Maximum number of distinct points remembered by the LRU cache;
        0 disables caching.
    metrics:
        Shared metrics sink; a private one is created when omitted.
    block_size:
        Rows per scoring block, bounding peak memory for huge batches.
    assign_backend:
        ``"auto"`` (default: native when the probe opts in, else
        pruned), ``"dense"``, ``"pruned"`` or ``"native"``.  Ignored
        (scalar fallback) when the model's similarity admits no index.
    prebuilt_index:
        An :class:`AssignmentIndex` built elsewhere for this model --
        the stream-worker path ships one through the pool payload so
        every worker skips the build.
    """

    def __init__(
        self,
        model: RockModel,
        cache_size: int = 4096,
        metrics: ServeMetrics | None = None,
        block_size: int = 8192,
        assign_backend: str = "auto",
        prebuilt_index: AssignmentIndex | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.model = model
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.block_size = block_size
        self._labeler = model.labeler()
        # the vectorised index exists exactly when the labeler's own
        # fast path does (plain Jaccard over item-set-like points)
        self._index = self._labeler.index
        backend, kernels = resolve_assign_backend(assign_backend)
        self._fast_index: AssignmentIndex | None = None
        self._kernels: Any | None = None
        if self._index is None:
            backend = "fallback"
        elif backend == "dense":
            pass
        else:
            self._fast_index = (
                prebuilt_index
                if prebuilt_index is not None
                else AssignmentIndex(self._index)
            )
            self._kernels = kernels  # None on the pruned tier
        self._backend = backend
        registry = self.metrics.registry
        for tier in BACKEND_TIERS:
            registry.set_gauge(
                f"serve.assign.backend.{tier}", int(tier == backend)
            )
        self._cache: OrderedDict[Any, int] = OrderedDict()
        self._cache_size = cache_size
        # the async HTTP server shares one engine between the event
        # loop's executor threads and direct assign_batch callers, so
        # the LRU's read-reorder and eviction must be atomic
        self._cache_lock = threading.Lock()

    @property
    def vectorized(self) -> bool:
        """Whether the batch matmul path is active (vs the scalar fallback)."""
        return self._index is not None

    @property
    def assign_backend(self) -> str:
        """The resolved scoring tier: dense / pruned / native / fallback."""
        return self._backend

    @property
    def fast_index(self) -> AssignmentIndex | None:
        """The inverted index (``None`` on the dense and fallback tiers)."""
        return self._fast_index

    @property
    def n_clusters(self) -> int:
        return self.model.n_clusters

    def assign(self, point: Any) -> int:
        """Cluster index for one point, -1 for an outlier."""
        return int(self.assign_batch([point])[0])

    def assign_batch(self, points: Sequence[Any]) -> np.ndarray:
        """Labels for a whole batch, in input order.

        Cache lookups run first; each distinct *keyable* point is
        scored at most once per batch, regardless of how often it
        repeats -- including when ``cache_size=0``, where hashable
        points still dedupe within the batch but bypass the LRU.
        Points that never reach the cache (unhashable, or caching
        disabled) are reported to the metrics as ``uncacheable`` per
        occurrence, not as cache misses, so the hit rate reflects real
        LRU lookups only.
        """
        start = time.perf_counter()
        points = list(points)
        labels = np.empty(len(points), dtype=np.int64)
        hits = 0
        pending: dict[Any, list[int]] = {}  # cache key -> positions (LRU on)
        nocache: dict[Any, list[int]] = {}  # key -> positions (LRU off)
        unkeyed: list[tuple[int, Any]] = []  # position, unhashable point
        for i, point in enumerate(points):
            key = self._cache_key(point)
            if key is None:
                unkeyed.append((i, point))
                continue
            if self._cache_size == 0:
                nocache.setdefault(key, []).append(i)
                continue
            cached = self._cache_get(key)
            if cached is not None:
                labels[i] = cached
                hits += 1
            else:
                pending.setdefault(key, []).append(i)
        misses = len(pending)
        uncacheable = len(unkeyed) + sum(len(v) for v in nocache.values())
        to_score = [points[positions[0]] for positions in pending.values()]
        to_score.extend(points[positions[0]] for positions in nocache.values())
        to_score.extend(point for _, point in unkeyed)
        if to_score:
            scored = self._assign_uncached(to_score)
            for j, (key, positions) in enumerate(pending.items()):
                labels[positions] = scored[j]
                self._cache_put(key, int(scored[j]))
            offset = len(pending)
            for j, positions in enumerate(nocache.values()):
                labels[positions] = scored[offset + j]
            offset += len(nocache)
            for j, (i, _) in enumerate(unkeyed):
                labels[i] = scored[offset + j]
        self.metrics.record_batch(
            n_points=len(points),
            n_outliers=int((labels == -1).sum()),
            seconds=time.perf_counter() - start,
            stage="assign_batch" if self.vectorized else "assign_fallback",
            cache_hits=hits,
            cache_misses=misses,
            uncacheable=uncacheable,
        )
        return labels

    def assign_iter(
        self, points: Iterable[Any], batch_size: int = 1024
    ) -> Iterator[int]:
        """Stream labels for an iterable, batching internally.

        Yields one ``int`` label per input point, in order -- the §4.6
        disk scan without materialising the data set.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        batch: list[Any] = []
        for point in points:
            batch.append(point)
            if len(batch) >= batch_size:
                yield from map(int, self.assign_batch(batch))
                batch = []
        if batch:
            yield from map(int, self.assign_batch(batch))

    def assign_all(self, points: Iterable[Any], batch_size: int = 1024) -> np.ndarray:
        """Labels for an iterable as one array (batched internally).

        A sized input pre-sizes the output array (``np.fromiter`` with
        ``count=``), so a disk-scale labeled scan never pays the
        doubling-reallocation churn of growing the result.
        """
        labels = self.assign_iter(points, batch_size=batch_size)
        if isinstance(points, Sized):
            return np.fromiter(labels, dtype=np.int64, count=len(points))
        return np.fromiter(labels, dtype=np.int64)

    # -- internals ----------------------------------------------------------

    def _assign_uncached(self, points: list[Any]) -> np.ndarray:
        if self._fast_index is not None:
            return self._fast_index.assign(
                points, block_size=self.block_size, kernels=self._kernels
            )
        if self._index is not None:
            return self._index.assign(points, block_size=self.block_size)
        return np.array(
            [self._labeler.assign(p) for p in points], dtype=np.int64
        )

    def _cache_key(self, point: Any) -> Any | None:
        try:
            return _as_item_set(point)
        except TypeError:
            pass
        try:
            hash(point)
        except TypeError:
            return None
        return point

    def _cache_get(self, key: Any) -> int | None:
        with self._cache_lock:
            label = self._cache.get(key)
            if label is not None:
                self._cache.move_to_end(key)
            return label

    def _cache_put(self, key: Any, label: int) -> None:
        with self._cache_lock:
            self._cache[key] = label
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
