"""The versioned, servable ``RockModel`` artifact.

The paper's deployment story (Section 4.6) is fit-once / serve-many:
cluster a sample, then stream any amount of data through cheap
per-point assignment against the labeling sets ``L_i``.  The labeling
sets -- plus theta, ``f(theta)`` and the similarity configuration --
are therefore the *servable* artifact, and that is exactly what
:class:`RockModel` persists.

Persistence follows the no-pickle conventions of
:mod:`repro.core.serialization`: plain JSON, explicit format name and
version, hard rejection of mismatched versions.  Three representative
encodings cover the library's point types:

* ``"sets"`` -- transactions / raw item sets (items must be JSON
  scalars);
* ``"records"`` -- :class:`~repro.data.records.CategoricalRecord`
  representatives, stored as a shared schema plus per-record value
  rows (``null`` marks a missing value) so the missing-aware
  similarity still sees real records after a round-trip;
* ``"raw"`` -- anything already JSON-shaped (e.g. numeric vectors for
  :class:`~repro.core.similarity.LpSimilarity`).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, TextIO

from repro.core.goodness import default_f
from repro.core.labeling import ClusterLabeler, draw_labeling_sets
from repro.core.similarity import (
    SimilarityFunction,
    similarity_from_dict,
    similarity_to_dict,
)
from repro.data.records import MISSING, CategoricalRecord, CategoricalSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import PipelineResult, RockPipeline

MODEL_FORMAT = "rock-model"
MODEL_VERSION = 1
CHECKSUM_KEY = "checksum"

_SCALAR_TYPES = (str, int, float, bool)


def artifact_checksum(payload: dict[str, Any]) -> str:
    """The sha256 hex digest of a model payload's canonical JSON.

    The digest covers every key except :data:`CHECKSUM_KEY` itself,
    over a canonical rendering (sorted keys, no whitespace) -- so the
    on-disk indentation never matters and save/verify agree by
    construction.
    """
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def verify_artifact_checksum(payload: dict[str, Any]) -> str:
    """Check a loaded payload against its recorded checksum.

    Returns the *actual* digest of the payload either way.  Artifacts
    written before checksums existed (no :data:`CHECKSUM_KEY`) pass
    untouched; a recorded checksum that does not match raises with a
    clear corrupt-artifact message instead of letting a bit-flipped
    model silently mis-assign.
    """
    actual = artifact_checksum(payload)
    stored = payload.get(CHECKSUM_KEY)
    if stored is None:
        return actual
    expected = stored.split(":", 1)[-1] if isinstance(stored, str) else stored
    if expected != actual:
        raise ValueError(
            f"model artifact checksum mismatch: recorded sha256:{expected} "
            f"but content hashes to sha256:{actual} -- the artifact is "
            "corrupt or truncated; refusing to serve it"
        )
    return actual


@dataclass
class RockModel:
    """Everything needed to assign new points to a finished clustering.

    Attributes
    ----------
    labeling_sets:
        Per-cluster representative sets ``L_i``, in final cluster order
        (cluster ``i`` of the model is label ``i`` of the run that
        produced it).
    theta:
        The neighbor threshold the clustering used.
    f_theta:
        The evaluated ``f(theta)`` -- stored as a number, not a
        function, so the artifact is self-contained.
    similarity:
        The similarity function (``None`` = default Jaccard).
    cluster_sizes:
        Final cluster sizes from the producing run (metadata only).
    metadata:
        Free-form provenance: pipeline parameters, outlier stats,
        dataset size.  Never consulted during assignment.
    """

    labeling_sets: list[list[Any]]
    theta: float
    f_theta: float
    similarity: SimilarityFunction | None = None
    cluster_sizes: list[int] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.labeling_sets:
            raise ValueError("model needs at least one labeling set")
        if all(len(li) == 0 for li in self.labeling_sets):
            raise ValueError("at least one labeling set must be non-empty")
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")
        if self.f_theta < 0.0:
            raise ValueError(f"f_theta must be non-negative, got {self.f_theta}")
        self.labeling_sets = [list(li) for li in self.labeling_sets]

    @property
    def n_clusters(self) -> int:
        return len(self.labeling_sets)

    def labeler(self) -> ClusterLabeler:
        """A :class:`ClusterLabeler` reproducing this model's assignments."""
        return ClusterLabeler(
            self.labeling_sets,
            theta=self.theta,
            similarity=self.similarity,
            f=lambda _theta: self.f_theta,
        )

    # -- JSON round-trip ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; raises for non-serialisable configurations."""
        similarity = similarity_to_dict(self.similarity)
        if similarity is not None and similarity.get("custom"):
            raise ValueError(
                f"cannot serialise a model with custom similarity "
                f"{type(self.similarity).__name__}; only the built-in "
                "similarity classes round-trip through JSON"
            )
        kind, sets, extra = _encode_labeling_sets(self.labeling_sets)
        payload: dict[str, Any] = {
            "format": MODEL_FORMAT,
            "version": MODEL_VERSION,
            "theta": self.theta,
            "f_theta": self.f_theta,
            "similarity": similarity,
            "points": kind,
            "labeling_sets": sets,
            "cluster_sizes": (
                None
                if self.cluster_sizes is None
                else [int(s) for s in self.cluster_sizes]
            ),
            "metadata": dict(self.metadata),
        }
        payload.update(extra)
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RockModel":
        if data.get("format") != MODEL_FORMAT:
            raise ValueError(
                f"expected format {MODEL_FORMAT!r}, got {data.get('format')!r}"
            )
        version = data.get("version")
        if version != MODEL_VERSION:
            raise ValueError(
                f"unsupported {MODEL_FORMAT} version {version!r} "
                f"(this library reads version {MODEL_VERSION})"
            )
        labeling_sets = _decode_labeling_sets(
            data.get("points", "sets"), data["labeling_sets"], data
        )
        sizes = data.get("cluster_sizes")
        return cls(
            labeling_sets=labeling_sets,
            theta=float(data["theta"]),
            f_theta=float(data["f_theta"]),
            similarity=similarity_from_dict(data.get("similarity")),
            cluster_sizes=None if sizes is None else [int(s) for s in sizes],
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, target: str | Path | TextIO) -> None:
        """Write the model as JSON (with a sha256 content checksum).

        The checksum covers the canonical payload, so :meth:`load` can
        fail fast on corrupt or truncated artifacts; files written by
        older versions (without a checksum) still load.
        """
        payload = self.to_dict()
        payload[CHECKSUM_KEY] = "sha256:" + artifact_checksum(payload)
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        else:
            json.dump(payload, target, indent=2)

    @classmethod
    def load(cls, source: str | Path | TextIO) -> "RockModel":
        """Read a model saved by :meth:`save`, verifying its checksum."""
        if isinstance(source, (str, Path)):
            with open(source, encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.load(source)
        verify_artifact_checksum(data)
        return cls.from_dict(data)


def model_from_result(
    pipeline: "RockPipeline",
    result: "PipelineResult",
    points: Any | None = None,
) -> RockModel:
    """Build a :class:`RockModel` from a finished pipeline run.

    Prefers the labeling sets the run actually used (stored on the
    result, in final cluster order) so that model assignments agree
    with the run's own labels.  When the run never labeled, fresh sets
    are drawn from the final clusters over ``points``.
    """
    labeling_sets = result.labeling_sets
    if labeling_sets is None:
        if points is None:
            raise ValueError(
                "this run drew no labeling sets (it clustered every point); "
                "pass the original points so representatives can be drawn"
            )
        point_list = list(points)
        labeling_sets = draw_labeling_sets(
            result.clusters,
            point_list,
            fraction=pipeline.labeling_fraction,
            rng=random.Random(pipeline.seed),
        )
    n_points = int(len(result.labels))
    metadata = {
        "k": pipeline.k,
        "theta": pipeline.theta,
        "seed": pipeline.seed,
        "labeling_fraction": pipeline.labeling_fraction,
        "sample_size": len(result.sample_indices),
        "n_points": n_points,
        "n_sample_outliers": len(result.outlier_indices),
        "n_unassigned": int((result.labels == -1).sum()),
        "uses_default_f": pipeline.f is default_f,
        "fit_mode": getattr(pipeline, "fit_mode", "auto"),
        "merge_method": getattr(pipeline, "merge_method", "auto"),
        "workers": getattr(pipeline, "workers", None),
        **(
            {
                "shard_block_rows": getattr(pipeline, "shard_block_rows", None),
                "spill_dir": (
                    None
                    if getattr(pipeline, "spill_dir", None) is None
                    else str(pipeline.spill_dir)
                ),
                "max_retries": getattr(pipeline, "max_retries", 2),
            }
            if getattr(pipeline, "fit_mode", "auto") == "sharded"
            else {}
        ),
        # the backends that actually ran (fallbacks resolved), e.g.
        # {"fit": "native:cext", "merge": "fast"}
        "backends": dict(getattr(result, "backends", {}) or {}),
        # per-phase wall-clock of the producing run; previously this
        # died with the PipelineResult and tools downstream could only
        # show a summed total
        "fit_timings": {
            phase: float(seconds)
            for phase, seconds in result.timings.items()
        },
    }
    return RockModel(
        labeling_sets=labeling_sets,
        theta=pipeline.theta,
        f_theta=pipeline.f(pipeline.theta),
        similarity=pipeline.similarity,
        cluster_sizes=result.cluster_sizes(),
        metadata=metadata,
    )


# ---------------------------------------------------------------------------
# representative encoding/decoding
# ---------------------------------------------------------------------------

def _encode_labeling_sets(
    labeling_sets: list[list[Any]],
) -> tuple[str, list[list[Any]], dict[str, Any]]:
    reps = [rep for li in labeling_sets for rep in li]
    if reps and all(isinstance(r, CategoricalRecord) for r in reps):
        schema = reps[0].schema
        if any(r.schema != schema for r in reps):
            raise ValueError("record representatives must share one schema")
        encoded = [
            [[None if v is MISSING else v for v in rep.values] for rep in li]
            for li in labeling_sets
        ]
        return "records", encoded, {"schema": list(schema.attributes)}
    try:
        from repro.core.similarity import _as_item_set

        encoded = []
        for li in labeling_sets:
            rows = []
            for rep in li:
                items = sorted(_as_item_set(rep), key=repr)
                for item in items:
                    if not isinstance(item, _SCALAR_TYPES):
                        raise TypeError(
                            f"item {item!r} is not a JSON scalar"
                        )
                rows.append(items)
            encoded.append(rows)
        return "sets", encoded, {}
    except TypeError:
        pass
    try:
        json.dumps(labeling_sets)
    except TypeError as exc:
        raise ValueError(
            "labeling-set representatives are neither item sets, "
            "categorical records, nor JSON-serialisable values"
        ) from exc
    return "raw", [list(li) for li in labeling_sets], {}


def _decode_labeling_sets(
    kind: str, sets: list[list[Any]], data: dict[str, Any]
) -> list[list[Any]]:
    if kind == "sets":
        return [[frozenset(items) for items in li] for li in sets]
    if kind == "records":
        schema = CategoricalSchema(data["schema"])
        return [
            [
                CategoricalRecord(
                    schema, [MISSING if v is None else v for v in values]
                )
                for values in li
            ]
            for li in sets
        ]
    if kind == "raw":
        return [list(li) for li in sets]
    raise ValueError(f"unknown representative encoding {kind!r}")
