"""Serving metrics as a thin adapter over the shared metrics registry.

A deployable assignment service needs observability, but this library
must not grow a dependency on a metrics stack.  :class:`ServeMetrics`
used to hand-roll its own counters, batch-size bucket array and
``_LatencyStat``; that machinery now lives in
:class:`repro.obs.registry.MetricsRegistry`, and this module keeps only
the serving-specific *view*: the legacy ``snapshot()`` /  ``merge()``
dict shape (``requests`` / ``points`` / ``cache`` / ``batch_sizes`` /
``latency``) that the engine, the multiprocessing stream path, the CLI
and the benchmarks already speak.  Callers that want the raw registry
(e.g. to export Prometheus text or fold serving metrics into a
:class:`~repro.obs.manifest.RunManifest`) can pass one in or read
``metrics.registry``.

Registry metric names: ``serve.requests`` / ``serve.points`` /
``serve.outliers``, ``serve.cache.{hits,misses,uncacheable}``, the
``serve.batch_size`` histogram over :data:`BATCH_SIZE_BUCKETS`, and one
``serve.latency.<stage>`` summary histogram per stage.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import MetricsRegistry, bucket_labels

# upper edges of the batch-size histogram buckets; the last bucket is
# open-ended
BATCH_SIZE_BUCKETS = (1, 8, 64, 512, 4096)

_LATENCY_PREFIX = "serve.latency."


class ServeMetrics:
    """Thread-safe counters and histograms for the assignment path.

    All state lives in a :class:`~repro.obs.registry.MetricsRegistry`
    (a fresh private one by default, or a shared one passed in via
    ``registry`` -- e.g. a :class:`~repro.obs.trace.Tracer`'s, so fit
    and serve metrics land in one manifest).  The public ``snapshot()``
    / ``merge()`` dict format is unchanged from the pre-registry
    implementation; serve tests and the worker-delta protocol of
    :func:`repro.serve.parallel.assign_stream` run unmodified.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._requests = r.counter("serve.requests")
        self._points = r.counter("serve.points")
        self._outliers = r.counter("serve.outliers")
        self._cache_hits = r.counter("serve.cache.hits")
        self._cache_misses = r.counter("serve.cache.misses")
        self._uncacheable = r.counter("serve.cache.uncacheable")
        self._batch_sizes = r.histogram(
            "serve.batch_size", edges=BATCH_SIZE_BUCKETS
        )

    def record_batch(
        self,
        n_points: int,
        n_outliers: int,
        seconds: float,
        stage: str = "assign",
        cache_hits: int = 0,
        cache_misses: int = 0,
        uncacheable: int = 0,
    ) -> None:
        """Record one assignment request over ``n_points`` points.

        ``cache_hits`` / ``cache_misses`` count real LRU lookups only;
        points that never reach the cache (unhashable, or caching
        disabled) are reported as ``uncacheable`` so the hit rate stays
        an honest lookup ratio.
        """
        self._requests.inc()
        self._points.inc(n_points)
        self._outliers.inc(n_outliers)
        self._cache_hits.inc(cache_hits)
        self._cache_misses.inc(cache_misses)
        self._uncacheable.inc(uncacheable)
        self._batch_sizes.observe(n_points)
        self.registry.observe(_LATENCY_PREFIX + stage, seconds)

    def observe_latency(self, stage: str, seconds: float) -> None:
        """Record wall-clock seconds for an arbitrary named stage."""
        self.registry.observe(_LATENCY_PREFIX + stage, seconds)

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold a ``snapshot()`` dict into this sink.

        The multiprocessing :func:`repro.serve.parallel.assign_stream`
        path uses this to surface per-worker activity: each worker
        records into its own :class:`ServeMetrics`, ships the snapshot
        back with its labels, and the caller's sink merges it.  Every
        counter is additive; latency stats combine count/total/min/max.
        The legacy dict is translated into generic histogram snapshots
        (batch-size extrema were never tracked, so they are merged as
        unknown and the bucket counts carry the information).
        """
        cache = snap.get("cache", {})
        sizes = snap.get("batch_sizes", {})
        labels = bucket_labels(BATCH_SIZE_BUCKETS)
        bucket_counts = [int(sizes.get(label, 0)) for label in labels]
        histograms: dict[str, Any] = {
            "serve.batch_size": {
                "count": sum(bucket_counts),
                # each request observes its point count, so the
                # histogram's sum is exactly the points counter
                "sum": float(snap.get("points", 0)),
                "edges": [float(edge) for edge in BATCH_SIZE_BUCKETS],
                "bucket_counts": bucket_counts,
            },
        }
        for stage, stat in snap.get("latency", {}).items():
            histograms[_LATENCY_PREFIX + stage] = {
                "count": int(stat["count"]),
                "sum": float(stat["total_seconds"]),
                "min": float(stat["min_seconds"]),
                "max": float(stat["max_seconds"]),
            }
        self.registry.merge(
            {
                "counters": {
                    "serve.requests": int(snap.get("requests", 0)),
                    "serve.points": int(snap.get("points", 0)),
                    "serve.outliers": int(snap.get("outliers", 0)),
                    "serve.cache.hits": int(cache.get("hits", 0)),
                    "serve.cache.misses": int(cache.get("misses", 0)),
                    "serve.cache.uncacheable": int(cache.get("uncacheable", 0)),
                },
                "histograms": histograms,
            }
        )

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every counter, safe to JSON-serialise.

        Shape is the legacy serving format, reconstructed from the
        registry's atomic snapshot -- byte-for-byte what the
        pre-registry implementation produced.
        """
        registry_snap = self.registry.snapshot()
        counters = registry_snap["counters"]
        hists = registry_snap["histograms"]
        points = int(counters.get("serve.points", 0))
        outliers = int(counters.get("serve.outliers", 0))
        hits = int(counters.get("serve.cache.hits", 0))
        misses = int(counters.get("serve.cache.misses", 0))
        total_lookups = hits + misses
        batch = hists.get("serve.batch_size", {})
        bucket_counts = batch.get(
            "bucket_counts", [0] * (len(BATCH_SIZE_BUCKETS) + 1)
        )
        latency: dict[str, dict[str, float]] = {}
        for name in sorted(hists):
            if not name.startswith(_LATENCY_PREFIX):
                continue
            h = hists[name]
            count = int(h["count"])
            latency[name[len(_LATENCY_PREFIX):]] = {
                "count": count,
                "total_seconds": h["sum"],
                "mean_seconds": h["sum"] / count if count else 0.0,
                "min_seconds": h.get("min", 0.0),
                "max_seconds": h.get("max", 0.0),
            }
        return {
            "requests": int(counters.get("serve.requests", 0)),
            "points": points,
            "outliers": outliers,
            "outlier_rate": outliers / points if points else 0.0,
            "cache": {
                "hits": hits,
                "misses": misses,
                "uncacheable": int(counters.get("serve.cache.uncacheable", 0)),
                "lookups": total_lookups,
                "hit_rate": hits / total_lookups if total_lookups else 0.0,
            },
            "batch_sizes": dict(
                zip(bucket_labels(BATCH_SIZE_BUCKETS), bucket_counts)
            ),
            "latency": latency,
        }

    def render(self) -> str:
        """A small human-readable summary for CLI / benchmark output."""
        snap = self.snapshot()
        lines = [
            f"requests          {snap['requests']}",
            f"points            {snap['points']}",
            f"outliers          {snap['outliers']} "
            f"({snap['outlier_rate']:.1%})",
            f"cache hit rate    {snap['cache']['hit_rate']:.1%} "
            f"({snap['cache']['hits']} hits / {snap['cache']['misses']} misses"
            f" / {snap['cache']['uncacheable']} uncacheable)",
            "batch sizes       "
            + "  ".join(f"{k}:{v}" for k, v in snap["batch_sizes"].items() if v),
        ]
        for stage, stat in snap["latency"].items():
            lines.append(
                f"latency[{stage}]   mean {stat['mean_seconds'] * 1000:.2f} ms  "
                f"max {stat['max_seconds'] * 1000:.2f} ms  "
                f"over {stat['count']} calls"
            )
        return "\n".join(lines)
