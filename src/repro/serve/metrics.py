"""Lightweight serving metrics: counters, batch-size histogram, latency.

A deployable assignment service needs observability, but this library
must not grow a dependency on a metrics stack.  :class:`ServeMetrics`
keeps everything as plain numbers behind one lock and exposes a
``snapshot()`` dict that benchmarks, tests and the CLI can print or
assert on.  All recording methods are cheap enough for the hot path
(one lock acquisition, a handful of integer adds).
"""

from __future__ import annotations

import threading
from typing import Any

# upper edges of the batch-size histogram buckets; the last bucket is
# open-ended
BATCH_SIZE_BUCKETS = (1, 8, 64, 512, 4096)


class _LatencyStat:
    """Running count/total/min/max of one stage's wall-clock seconds."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
        }

    def merge_snapshot(self, snap: dict[str, float]) -> None:
        """Fold another stat's ``snapshot()`` into this one."""
        count = int(snap["count"])
        if count == 0:
            return
        self.count += count
        self.total += snap["total_seconds"]
        self.min = min(self.min, snap["min_seconds"])
        self.max = max(self.max, snap["max_seconds"])


class ServeMetrics:
    """Thread-safe counters and histograms for the assignment path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._points = 0
        self._outliers = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._uncacheable = 0
        self._batch_sizes = [0] * (len(BATCH_SIZE_BUCKETS) + 1)
        self._latency: dict[str, _LatencyStat] = {}

    def record_batch(
        self,
        n_points: int,
        n_outliers: int,
        seconds: float,
        stage: str = "assign",
        cache_hits: int = 0,
        cache_misses: int = 0,
        uncacheable: int = 0,
    ) -> None:
        """Record one assignment request over ``n_points`` points.

        ``cache_hits`` / ``cache_misses`` count real LRU lookups only;
        points that never reach the cache (unhashable, or caching
        disabled) are reported as ``uncacheable`` so the hit rate stays
        an honest lookup ratio.
        """
        with self._lock:
            self._requests += 1
            self._points += n_points
            self._outliers += n_outliers
            self._cache_hits += cache_hits
            self._cache_misses += cache_misses
            self._uncacheable += uncacheable
            self._batch_sizes[self._bucket(n_points)] += 1
            self._latency.setdefault(stage, _LatencyStat()).observe(seconds)

    def observe_latency(self, stage: str, seconds: float) -> None:
        """Record wall-clock seconds for an arbitrary named stage."""
        with self._lock:
            self._latency.setdefault(stage, _LatencyStat()).observe(seconds)

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold a ``snapshot()`` dict into this sink.

        The multiprocessing :func:`repro.serve.parallel.assign_stream`
        path uses this to surface per-worker activity: each worker
        records into its own :class:`ServeMetrics`, ships the snapshot
        back with its labels, and the caller's sink merges it.  Every
        counter is additive; latency stats combine count/total/min/max.
        """
        cache = snap.get("cache", {})
        with self._lock:
            self._requests += int(snap.get("requests", 0))
            self._points += int(snap.get("points", 0))
            self._outliers += int(snap.get("outliers", 0))
            self._cache_hits += int(cache.get("hits", 0))
            self._cache_misses += int(cache.get("misses", 0))
            self._uncacheable += int(cache.get("uncacheable", 0))
            sizes = snap.get("batch_sizes", {})
            labels = [f"<={edge}" for edge in BATCH_SIZE_BUCKETS] + [
                f">{BATCH_SIZE_BUCKETS[-1]}"
            ]
            for i, label in enumerate(labels):
                self._batch_sizes[i] += int(sizes.get(label, 0))
            for stage, stat_snap in snap.get("latency", {}).items():
                self._latency.setdefault(stage, _LatencyStat()).merge_snapshot(
                    stat_snap
                )

    @staticmethod
    def _bucket(n_points: int) -> int:
        for i, edge in enumerate(BATCH_SIZE_BUCKETS):
            if n_points <= edge:
                return i
        return len(BATCH_SIZE_BUCKETS)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every counter, safe to JSON-serialise."""
        with self._lock:
            labels = [f"<={edge}" for edge in BATCH_SIZE_BUCKETS] + [
                f">{BATCH_SIZE_BUCKETS[-1]}"
            ]
            total_lookups = self._cache_hits + self._cache_misses
            return {
                "requests": self._requests,
                "points": self._points,
                "outliers": self._outliers,
                "outlier_rate": (
                    self._outliers / self._points if self._points else 0.0
                ),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "uncacheable": self._uncacheable,
                    "lookups": total_lookups,
                    "hit_rate": (
                        self._cache_hits / total_lookups if total_lookups else 0.0
                    ),
                },
                "batch_sizes": dict(zip(labels, self._batch_sizes)),
                "latency": {
                    stage: stat.snapshot()
                    for stage, stat in sorted(self._latency.items())
                },
            }

    def render(self) -> str:
        """A small human-readable summary for CLI / benchmark output."""
        snap = self.snapshot()
        lines = [
            f"requests          {snap['requests']}",
            f"points            {snap['points']}",
            f"outliers          {snap['outliers']} "
            f"({snap['outlier_rate']:.1%})",
            f"cache hit rate    {snap['cache']['hit_rate']:.1%} "
            f"({snap['cache']['hits']} hits / {snap['cache']['misses']} misses"
            f" / {snap['cache']['uncacheable']} uncacheable)",
            "batch sizes       "
            + "  ".join(f"{k}:{v}" for k, v in snap["batch_sizes"].items() if v),
        ]
        for stage, stat in snap["latency"].items():
            lines.append(
                f"latency[{stage}]   mean {stat['mean_seconds'] * 1000:.2f} ms  "
                f"max {stat['max_seconds'] * 1000:.2f} ms  "
                f"over {stat['count']} calls"
            )
        return "\n".join(lines)
