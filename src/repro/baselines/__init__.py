"""Baseline clustering algorithms the paper compares ROCK against.

* :func:`~repro.baselines.centroid.centroid_cluster` -- the traditional
  centroid-based hierarchical algorithm of Section 5 (boolean 0/1
  expansion, euclidean centroid distance, singleton elimination);
* :func:`~repro.baselines.mst.mst_cluster` -- MST / single link with
  Jaccard;
* :func:`~repro.baselines.group_average.group_average_cluster` --
  group-average (UPGMA) with Jaccard;
* :func:`~repro.baselines.kmodes.kmodes_cluster` -- k-modes partitional
  clustering (extension).
"""

from repro.baselines.apriori import frequent_itemsets, rule_confidences
from repro.baselines.clarans import ClaransResult, clarans_cluster
from repro.baselines.centroid import CentroidResult, centroid_cluster, squared_euclidean_matrix
from repro.baselines.cure import CureResult, cure_cluster
from repro.baselines.dbscan import DbscanResult, dbscan_cluster, dbscan_graph
from repro.baselines.itemclustering import (
    Hyperedge,
    ItemClusteringResult,
    build_hyperedges,
    item_cluster_transactions,
    partition_items,
    score_transaction,
)
from repro.baselines.group_average import group_average_cluster
from repro.baselines.hierarchical import (
    HierarchicalMerge,
    HierarchicalResult,
    agglomerate,
    centroid_update,
    complete_link_update,
    group_average_update,
    single_link_update,
)
from repro.baselines.kmodes import KModesResult, kmodes_cluster, matching_dissimilarity
from repro.baselines.mst import mst_cluster, similarity_matrix

__all__ = [
    "CentroidResult",
    "ClaransResult",
    "CureResult",
    "DbscanResult",
    "clarans_cluster",
    "cure_cluster",
    "Hyperedge",
    "ItemClusteringResult",
    "build_hyperedges",
    "dbscan_cluster",
    "dbscan_graph",
    "frequent_itemsets",
    "item_cluster_transactions",
    "partition_items",
    "rule_confidences",
    "score_transaction",
    "HierarchicalMerge",
    "HierarchicalResult",
    "KModesResult",
    "agglomerate",
    "centroid_cluster",
    "centroid_update",
    "complete_link_update",
    "group_average_cluster",
    "group_average_update",
    "kmodes_cluster",
    "matching_dissimilarity",
    "mst_cluster",
    "similarity_matrix",
    "single_link_update",
    "squared_euclidean_matrix",
]
