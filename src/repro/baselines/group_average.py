"""Group-average (UPGMA) hierarchical clustering with Jaccard (Section 1.1).

"The group average algorithm merges the ones for which the average
similarity between pairs of points in the clusters is the highest."
The size-weighted Lance-Williams recurrence is exact for average
pairwise dissimilarity, so agglomerating ``1 - sim`` with the
group-average update merges precisely the pair with the highest average
pairwise similarity.

The paper notes two weaknesses reproduced by the E2 bench: a tendency
to split large clusters (average intra-similarity shrinks as clusters
grow), and -- like MST -- cross-cluster merges of individually similar
transactions when clusters overlap.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.hierarchical import (
    HierarchicalResult,
    agglomerate,
    group_average_update,
)
from repro.baselines.mst import similarity_matrix
from repro.core.similarity import SimilarityFunction


def group_average_cluster(
    points: Any,
    k: int,
    similarity: SimilarityFunction | None = None,
    min_similarity: float | None = None,
) -> HierarchicalResult:
    """Group-average clustering down to ``k`` clusters.

    ``min_similarity``, when given, refuses merges whose average
    pairwise similarity falls below it.
    """
    sim = similarity_matrix(points, similarity)
    stop = None if min_similarity is None else 1.0 - min_similarity
    return agglomerate(1.0 - sim, k, group_average_update, stop_distance=stop)
