"""k-modes partitional clustering (extension baseline).

Section 1.1 argues that partitional algorithms minimising distance from
the cluster mean are inappropriate for categorical data.  k-modes
(Huang, 1997/98) is the standard categorical analogue -- centroids are
replaced by *modes* (the per-attribute majority value) and euclidean
distance by simple matching dissimilarity (count of differing
attributes).  It is included as a partitional reference point for the
quality benches; the paper itself compares only against hierarchical
algorithms, so k-modes results are reported as an extension.

Missing values never match anything (a record missing attribute ``A``
counts as differing from every mode on ``A``), and missing values never
vote when modes are recomputed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.labeling import labels_from_clusters
from repro.data.records import MISSING, CategoricalDataset


@dataclass
class KModesResult:
    """Flat partition produced by k-modes."""

    clusters: list[list[int]]
    modes: list[tuple[Any, ...]]
    cost: float
    n_iterations: int
    n_points: int = 0
    history: list[float] = field(default_factory=list)

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)


def matching_dissimilarity(a: tuple, b: tuple) -> int:
    """Count of attributes on which two value tuples differ.

    A missing value differs from everything, including another missing
    value -- absence is not evidence of agreement.
    """
    return sum(
        1
        for va, vb in zip(a, b)
        if va is MISSING or vb is MISSING or va != vb
    )


def _mode_of(rows: list[tuple], d: int, rng: random.Random) -> tuple:
    mode = []
    for j in range(d):
        counts: dict[Any, int] = {}
        for row in rows:
            v = row[j]
            if v is MISSING:
                continue
            counts[v] = counts.get(v, 0) + 1
        if not counts:
            mode.append(MISSING)
            continue
        best = max(counts.values())
        candidates = sorted((k for k, c in counts.items() if c == best), key=repr)
        mode.append(candidates[0])
    return tuple(mode)


def kmodes_cluster(
    dataset: CategoricalDataset,
    k: int,
    max_iterations: int = 50,
    n_init: int = 1,
    seed: int | None = None,
) -> KModesResult:
    """Lloyd-style k-modes: assign to nearest mode, recompute modes, repeat.

    ``n_init`` restarts with different random initial modes keep the
    best (lowest-cost) run.  Deterministic for a fixed seed.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = len(dataset)
    if n < k:
        raise ValueError(f"cannot form {k} clusters from {n} records")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    if n_init < 1:
        raise ValueError("n_init must be at least 1")
    rng = random.Random(seed)
    rows = [r.values for r in dataset]
    d = len(dataset.schema)

    best: KModesResult | None = None
    for _ in range(n_init):
        result = _single_run(rows, d, k, max_iterations, rng)
        if best is None or result.cost < best.cost:
            best = result
    assert best is not None
    best.n_points = n
    return best


def _single_run(
    rows: list[tuple], d: int, k: int, max_iterations: int, rng: random.Random
) -> KModesResult:
    n = len(rows)
    modes = [rows[i] for i in rng.sample(range(n), k)]
    assignment = np.full(n, -1, dtype=np.int64)
    history: list[float] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        changed = False
        cost = 0.0
        for i, row in enumerate(rows):
            distances = [matching_dissimilarity(row, mode) for mode in modes]
            best_cluster = int(np.argmin(distances))
            cost += distances[best_cluster]
            if assignment[i] != best_cluster:
                assignment[i] = best_cluster
                changed = True
        history.append(cost)
        if not changed:
            break
        for c in range(k):
            member_rows = [rows[i] for i in np.flatnonzero(assignment == c)]
            if member_rows:
                modes[c] = _mode_of(member_rows, d, rng)
            else:
                # re-seed an empty cluster with the worst-fitting point
                worst = max(
                    range(n),
                    key=lambda i: matching_dissimilarity(rows[i], modes[assignment[i]]),
                )
                modes[c] = rows[worst]
    clusters = [
        sorted(int(i) for i in np.flatnonzero(assignment == c)) for c in range(k)
    ]
    clusters = [c for c in clusters if c]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    final_cost = float(history[-1]) if history else 0.0
    return KModesResult(
        clusters=clusters,
        modes=[tuple(m) for m in modes],
        cost=final_cost,
        n_iterations=iterations,
        n_points=n,
        history=history,
    )
