"""MST / single-link hierarchical clustering with Jaccard (Section 1.1).

"The MST algorithm merges, at each step, the pair of clusters
containing the most similar pair of points."  Over a similarity matrix
this is single-link agglomeration on the dissimilarity ``1 - sim``; the
name comes from the equivalence with cutting the ``k - 1`` heaviest
edges of a minimum spanning tree.  The paper uses it (Example 1.2) to
show how a fragile local merge rule bleeds across not-well-separated
clusters -- the failure mode the E2 bench reproduces.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.hierarchical import (
    HierarchicalResult,
    agglomerate,
    single_link_update,
)
from repro.core.neighbors import similarity_matrix
from repro.core.similarity import SimilarityFunction


def mst_cluster(
    points: Any,
    k: int,
    similarity: SimilarityFunction | None = None,
    min_similarity: float | None = None,
) -> HierarchicalResult:
    """Single-link clustering down to ``k`` clusters.

    ``min_similarity``, when given, refuses merges between clusters
    whose closest pair is below it (the run may then stop above ``k``).
    """
    sim = similarity_matrix(points, similarity)
    stop = None if min_similarity is None else 1.0 - min_similarity
    return agglomerate(1.0 - sim, k, single_link_update, stop_distance=stop)
