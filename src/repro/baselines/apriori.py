"""Apriori frequent-itemset mining (substrate for the [HKKM97] baseline).

The association-rule hypergraph clustering the paper critiques in
Section 2 starts from frequent itemsets; this module provides them with
the classic Apriori algorithm [Agrawal & Srikant 1994], implemented
from scratch:

1. count single items, keep those meeting minimum support;
2. generate size-(k+1) candidates by joining size-k frequent itemsets
   that share a (k-1)-prefix, pruning candidates with any infrequent
   subset;
3. count candidates against the transactions; repeat until empty.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable

from repro.data.transactions import Transaction

ItemSet = frozenset


def frequent_itemsets(
    transactions: Iterable[Transaction | frozenset | set],
    min_support_count: int,
    max_size: int | None = None,
) -> dict[frozenset, int]:
    """All itemsets appearing in at least ``min_support_count`` transactions.

    Returns a mapping from itemset (including singletons) to its
    absolute support count.  ``max_size`` caps the itemset size (useful
    when only pairs/triples are needed for hyperedges).
    """
    if min_support_count < 1:
        raise ValueError("min_support_count must be at least 1")
    if max_size is not None and max_size < 1:
        raise ValueError("max_size must be at least 1 when given")
    rows: list[frozenset] = [
        t.items if isinstance(t, Transaction) else frozenset(t)
        for t in transactions
    ]

    # L1
    counts: dict[Hashable, int] = defaultdict(int)
    for row in rows:
        for item in row:
            counts[item] += 1
    current: dict[frozenset, int] = {
        frozenset({item}): count
        for item, count in counts.items()
        if count >= min_support_count
    }
    result = dict(current)
    size = 1
    while current and (max_size is None or size < max_size):
        candidates = _generate_candidates(set(current), size + 1)
        if not candidates:
            break
        tallies: dict[frozenset, int] = defaultdict(int)
        for row in rows:
            if len(row) < size + 1:
                continue
            for candidate in candidates:
                if candidate <= row:
                    tallies[candidate] += 1
        current = {
            itemset: count
            for itemset, count in tallies.items()
            if count >= min_support_count
        }
        result.update(current)
        size += 1
    return result


def _generate_candidates(
    frequent: set[frozenset], target_size: int
) -> set[frozenset]:
    """Join step + prune step of Apriori."""
    ordered = sorted(
        (tuple(sorted(itemset, key=repr)) for itemset in frequent),
        key=repr,
    )
    candidates: set[frozenset] = set()
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            a, b = ordered[i], ordered[j]
            if a[:-1] != b[:-1]:
                continue
            candidate = frozenset(a) | frozenset(b)
            if len(candidate) != target_size:
                continue
            # prune: every (size-1)-subset must be frequent
            if all(
                candidate - {item} in frequent for item in candidate
            ):
                candidates.add(candidate)
    return candidates


def rule_confidences(
    itemset: frozenset, supports: dict[frozenset, int]
) -> list[float]:
    """Confidences of every association rule derivable from an itemset.

    For each non-empty proper subset ``A`` of the itemset, the rule
    ``A -> itemset \\ A`` has confidence ``supp(itemset) / supp(A)``.
    [HKKM97] weights a hyperedge by the average of these confidences.
    """
    if len(itemset) < 2:
        raise ValueError("rules need itemsets of at least 2 items")
    support = supports[itemset]
    confidences = []
    items = sorted(itemset, key=repr)
    # enumerate non-empty proper subsets via bitmasks
    for mask in range(1, (1 << len(items)) - 1):
        antecedent = frozenset(
            items[bit] for bit in range(len(items)) if mask & (1 << bit)
        )
        confidences.append(support / supports[antecedent])
    return confidences
