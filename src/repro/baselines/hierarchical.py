"""Generic agglomerative hierarchical clustering engine (Section 1.1).

All three traditional baselines the paper discusses -- centroid-based,
MST/single-link, and group-average -- are instances of the same loop:
repeatedly merge the closest pair of clusters under some inter-cluster
dissimilarity, updating dissimilarities with a Lance-Williams-style
recurrence.  This module implements that loop once, with the classic
nearest-neighbor bookkeeping (per-row nearest neighbor caches, repaired
only when invalidated) giving O(n^2) typical behaviour.

The engine works on a *dissimilarity* matrix; similarity-based methods
convert via ``1 - sim`` before calling in.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.labeling import labels_from_clusters

# update(d_ux, d_vx, d_uv, n_u, n_v, n_x) -> d_wx  (vectorised over x)
UpdateRule = Callable[
    [np.ndarray, np.ndarray, float, int, int, np.ndarray], np.ndarray
]


@dataclass(frozen=True)
class HierarchicalMerge:
    """One agglomeration step: clusters ``left`` and ``right`` at ``distance``."""

    left: int
    right: int
    distance: float
    size: int


@dataclass
class HierarchicalResult:
    """Final flat clustering plus the merge history."""

    clusters: list[list[int]]
    merges: list[HierarchicalMerge] = field(default_factory=list)
    n_points: int = 0

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)

    def sizes(self) -> list[int]:
        return [len(c) for c in self.clusters]


def single_link_update(
    d_ux: np.ndarray, d_vx: np.ndarray, d_uv: float, n_u: int, n_v: int, n_x: np.ndarray
) -> np.ndarray:
    """MST / single link: the closest pair of points decides."""
    return np.minimum(d_ux, d_vx)


def complete_link_update(
    d_ux: np.ndarray, d_vx: np.ndarray, d_uv: float, n_u: int, n_v: int, n_x: np.ndarray
) -> np.ndarray:
    """Complete link: the farthest pair of points decides."""
    return np.maximum(d_ux, d_vx)


def group_average_update(
    d_ux: np.ndarray, d_vx: np.ndarray, d_uv: float, n_u: int, n_v: int, n_x: np.ndarray
) -> np.ndarray:
    """UPGMA: size-weighted average of the parents' dissimilarities.

    This recurrence is *exact* for average pairwise dissimilarity, so
    group-average over ``1 - Jaccard`` merges the pair with the highest
    average pairwise Jaccard -- the paper's group-average algorithm.
    """
    return (n_u * d_ux + n_v * d_vx) / (n_u + n_v)


def centroid_update(
    d_ux: np.ndarray, d_vx: np.ndarray, d_uv: float, n_u: int, n_v: int, n_x: np.ndarray
) -> np.ndarray:
    """UPGMC over *squared* euclidean distances between centroids.

    Lance-Williams: ``d2(w,x) = (n_u d2(u,x) + n_v d2(v,x)) / (n_u+n_v)
    - n_u n_v d2(u,v) / (n_u+n_v)^2``.  Exact for centroid distance when
    the input matrix holds squared euclidean distances.
    """
    total = n_u + n_v
    return (n_u * d_ux + n_v * d_vx) / total - (n_u * n_v * d_uv) / (total * total)


def agglomerate(
    dissimilarity: np.ndarray,
    k: int,
    update: UpdateRule,
    stop_distance: float | None = None,
) -> HierarchicalResult:
    """Run agglomerative clustering down to ``k`` clusters.

    Parameters
    ----------
    dissimilarity:
        Symmetric ``(n, n)`` dissimilarity matrix (the diagonal is
        ignored).  The matrix is copied; the caller's array is not
        mutated.
    k:
        Target number of clusters.
    update:
        The Lance-Williams-style recurrence producing the merged
        cluster's dissimilarities to every other cluster.
    stop_distance:
        When set, stop (possibly above ``k`` clusters) once the best
        available merge distance exceeds this threshold -- used to model
        "no merge is sensible any more".
    """
    d = np.array(dissimilarity, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("dissimilarity must be a square matrix")
    if not np.allclose(d, d.T, equal_nan=True):
        raise ValueError("dissimilarity must be symmetric")
    n = d.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    if n == 0:
        raise ValueError("cannot cluster zero points")

    np.fill_diagonal(d, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    members: dict[int, list[int]] = {i: [i] for i in range(n)}

    # nearest-neighbor caches
    nn = np.empty(n, dtype=np.int64)
    nn_dist = np.empty(n, dtype=np.float64)
    for i in range(n):
        nn[i] = int(np.argmin(d[i]))
        nn_dist[i] = d[i, nn[i]]

    merges: list[HierarchicalMerge] = []
    remaining = n
    while remaining > k:
        candidates = np.where(active, nn_dist, np.inf)
        u = int(np.argmin(candidates))
        best = candidates[u]
        if not np.isfinite(best):
            break  # fully disconnected (all-inf rows)
        if stop_distance is not None and best > stop_distance:
            break
        v = int(nn[u])
        assert active[v] and v != u

        d_uv = d[u, v]
        row = update(d[u], d[v], d_uv, int(sizes[u]), int(sizes[v]), sizes)
        row[u] = np.inf
        row[v] = np.inf
        row[~active] = np.inf
        d[u, :] = row
        d[:, u] = row
        d[v, :] = np.inf
        d[:, v] = np.inf
        active[v] = False
        sizes[u] += sizes[v]
        members[u] = members[u] + members.pop(v)
        remaining -= 1
        merges.append(
            HierarchicalMerge(left=u, right=v, distance=float(d_uv), size=int(sizes[u]))
        )

        # repair nearest-neighbor caches
        if remaining > 1:
            nn[u] = int(np.argmin(d[u]))
            nn_dist[u] = d[u, nn[u]]
        else:
            nn_dist[u] = np.inf
        stale = np.flatnonzero(active & ((nn == u) | (nn == v)))
        for i in stale:
            if i == u:
                continue
            nn[i] = int(np.argmin(d[i]))
            nn_dist[i] = d[i, nn[i]]
        # rows whose new distance to u improved their cached nn
        improved = np.flatnonzero(active & (d[:, u] < nn_dist))
        for i in improved:
            if i != u:
                nn[i] = u
                nn_dist[i] = d[i, u]

    clusters = [sorted(members[i]) for i in np.flatnonzero(active)]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return HierarchicalResult(clusters=clusters, merges=merges, n_points=n)
