"""Association-rule hypergraph clustering [HKKM97] (Section 2).

The related-work baseline the paper critiques: build a weighted
hypergraph whose hyperedges are the frequent itemsets (weight = average
confidence of all association rules derivable from the itemset),
partition the *items* to minimise cut weight, then assign each
transaction ``T`` to the item cluster ``C_i`` maximising the score
``|T ∩ C_i| / |C_i|``.

Substitution note: [HKKM97] partitions with HMETIS [KAKS97], which is
closed-source C code.  We substitute a connectivity-agglomeration
heuristic -- items start as singletons and the pair of item groups with
the highest total shared hyperedge weight merges until k groups remain.
Like HMETIS with a loose balance constraint, it isolates weakly
connected items (the paper's Section 2 walk-through expects item 7 to
be split off "since 7 has the least hyperedges to other items"), which
is exactly the behaviour the paper's critique depends on; the critique
itself (transactions {1,2,6} and {3,4,5} land in the same cluster) is
pinned in tests and the related-work bench.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import mean
from typing import Hashable

import numpy as np

from repro.baselines.apriori import frequent_itemsets, rule_confidences
from repro.core.labeling import labels_from_clusters
from repro.data.transactions import Transaction, TransactionDataset


@dataclass(frozen=True)
class Hyperedge:
    """One weighted hyperedge: a frequent itemset and its rule-confidence weight."""

    items: frozenset
    weight: float


@dataclass
class ItemClusteringResult:
    """Outcome of the [HKKM97] pipeline."""

    item_clusters: list[list[Hashable]]
    clusters: list[list[int]]          # transaction indices per item cluster
    hyperedges: list[Hyperedge] = field(default_factory=list)
    n_points: int = 0

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)


def build_hyperedges(
    transactions: TransactionDataset | list[Transaction],
    min_support_count: int,
    max_itemset_size: int | None = 4,
) -> list[Hyperedge]:
    """Frequent itemsets (size >= 2) weighted by average rule confidence."""
    supports = frequent_itemsets(
        transactions, min_support_count, max_size=max_itemset_size
    )
    edges = []
    for itemset, _count in sorted(supports.items(), key=lambda kv: repr(kv[0])):
        if len(itemset) < 2:
            continue
        edges.append(
            Hyperedge(items=itemset, weight=mean(rule_confidences(itemset, supports)))
        )
    return edges


def _clique_affinity(hyperedges: list[Hyperedge]) -> dict[frozenset, float]:
    """Pairwise item affinity: summed weight of hyperedges containing both
    items (the clique-expansion view of the hypergraph)."""
    affinity: dict[frozenset, float] = defaultdict(float)
    for edge in hyperedges:
        members = sorted(edge.items, key=repr)
        for a_pos in range(len(members)):
            for b_pos in range(a_pos + 1, len(members)):
                affinity[frozenset((members[a_pos], members[b_pos]))] += edge.weight
    return affinity


def partition_items(
    hyperedges: list[Hyperedge], k: int, strategy: str = "mincut"
) -> list[list[Hashable]]:
    """Partition the items of a weighted hypergraph into ``k`` groups.

    ``mincut`` (default, and what [HKKM97]'s HMETIS approximates):
    recursively split off the globally cheapest cut (Stoer-Wagner on the
    clique expansion), always re-cutting the largest remaining group.
    Minimising cut weight with no balance constraint is exactly what
    isolates weakly connected items -- the paper's Section 2
    walk-through expects item 7 split off "since 7 has the least
    hyperedges to other items".

    ``agglomerate``: greedy merging of the groups with the highest
    total shared weight -- a balance-leaning heuristic closer to how
    HMETIS behaves under a tight imbalance bound.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if strategy not in ("mincut", "agglomerate"):
        raise ValueError(f"unknown strategy {strategy!r}")
    items = sorted({i for e in hyperedges for i in e.items}, key=repr)
    if not items:
        raise ValueError("no items: no hyperedge met the support threshold")
    affinity = _clique_affinity(hyperedges)
    if strategy == "mincut":
        out = _partition_mincut(items, affinity, k)
    else:
        out = _partition_agglomerate(items, affinity, k)
    out = [sorted(g, key=repr) for g in out]
    out.sort(key=lambda g: (-len(g), repr(g[0])))
    return out


def _partition_mincut(
    items: list[Hashable], affinity: dict[frozenset, float], k: int
) -> list[list[Hashable]]:
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(items)
    for pair, weight in affinity.items():
        a, b = tuple(pair)
        graph.add_edge(a, b, weight=weight)

    # connected components are free cuts; take them first
    groups: list[list[Hashable]] = [
        sorted(c, key=repr) for c in nx.connected_components(graph)
    ]
    while len(groups) < k:
        groups.sort(key=lambda g: (-len(g), repr(g[0])))
        target = next((g for g in groups if len(g) >= 2), None)
        if target is None:
            break
        groups.remove(target)
        subgraph = graph.subgraph(target)
        _, (side_a, side_b) = nx.stoer_wagner(subgraph)
        groups.append(sorted(side_a, key=repr))
        groups.append(sorted(side_b, key=repr))
    return groups


def _partition_agglomerate(
    items: list[Hashable], affinity: dict[frozenset, float], k: int
) -> list[list[Hashable]]:
    groups: dict[int, list[Hashable]] = {g: [item] for g, item in enumerate(items)}
    item_group = {item: g for g, item in enumerate(items)}
    group_affinity: dict[frozenset, float] = defaultdict(float)
    for pair, weight in affinity.items():
        a, b = tuple(pair)
        key = frozenset((item_group[a], item_group[b]))
        group_affinity[key] += weight

    while len(groups) > k:
        best_pair = None
        best_weight = 0.0
        for pair, weight in group_affinity.items():
            if len(pair) != 2 or weight <= 0.0:
                continue
            marker = tuple(sorted(pair))
            if (
                best_pair is None
                or weight > best_weight
                or (weight == best_weight and marker < tuple(sorted(best_pair)))
            ):
                best_pair = pair
                best_weight = weight
        if best_pair is None:
            break  # remaining groups share no hyperedges
        ga, gb = sorted(best_pair)
        groups[ga] = groups[ga] + groups.pop(gb)
        # fold gb's affinities into ga
        for pair in list(group_affinity):
            if gb in pair:
                weight = group_affinity.pop(pair)
                other = next(iter(pair - {gb}), None)
                if other is None or other == ga:
                    continue
                group_affinity[frozenset((ga, other))] += weight
    return list(groups.values())


def score_transaction(
    transaction: Transaction | frozenset, item_clusters: list[list[Hashable]]
) -> np.ndarray:
    """The [HKKM97] scores ``|T ∩ C_i| / |C_i|`` for one transaction."""
    items = transaction.items if isinstance(transaction, Transaction) else frozenset(transaction)
    return np.array(
        [len(items & set(c)) / len(c) for c in item_clusters], dtype=np.float64
    )


def item_cluster_transactions(
    transactions: TransactionDataset | list[Transaction],
    k: int,
    min_support_count: int,
    max_itemset_size: int | None = 4,
    strategy: str = "mincut",
) -> ItemClusteringResult:
    """The full [HKKM97] pipeline: hyperedges -> item clusters -> assignment.

    A transaction with zero overlap with every item cluster is left
    unassigned (label -1).
    """
    rows = list(transactions)
    hyperedges = build_hyperedges(
        rows, min_support_count, max_itemset_size=max_itemset_size
    )
    if not hyperedges:
        raise ValueError(
            "no hyperedges: lower min_support_count or check the data"
        )
    item_clusters = partition_items(hyperedges, k, strategy=strategy)
    clusters: list[list[int]] = [[] for _ in item_clusters]
    for index, transaction in enumerate(rows):
        scores = score_transaction(transaction, item_clusters)
        if scores.max() <= 0.0:
            continue
        clusters[int(np.argmax(scores))].append(index)
    return ItemClusteringResult(
        item_clusters=item_clusters,
        clusters=clusters,
        hyperedges=hyperedges,
        n_points=len(rows),
    )
