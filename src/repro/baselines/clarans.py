"""CLARANS-style randomized k-medoids (Section 2, [NH94]).

"CLARANS employs a randomized search to find the k best cluster
medoids": starting from a random medoid set, repeatedly try swapping a
random medoid for a random non-medoid and keep the swap when total
point-to-nearest-medoid cost drops; a local optimum is declared after
``max_neighbors`` consecutive failed swaps, and the best of
``num_local`` such optima wins.

Because medoids are actual data points, any dissimilarity works --
including ``1 - Jaccard`` over transactions -- so unlike the centroid
methods this baseline runs natively on categorical data.  The paper's
§1.1 criticism still applies: minimising summed distance to a center
favours splitting large, internally diverse clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.mst import similarity_matrix
from repro.core.labeling import labels_from_clusters
from repro.core.similarity import SimilarityFunction


@dataclass
class ClaransResult:
    """Outcome of a CLARANS run."""

    clusters: list[list[int]]
    medoids: list[int]
    cost: float
    n_points: int = 0

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)


def clarans_cluster(
    points: Any,
    k: int,
    similarity: SimilarityFunction | None = None,
    num_local: int = 3,
    max_neighbors: int | None = None,
    seed: int | None = None,
) -> ClaransResult:
    """CLARANS over ``1 - sim`` dissimilarities.

    Parameters
    ----------
    points:
        Anything :func:`repro.baselines.mst.similarity_matrix` accepts.
    k:
        Number of medoids/clusters.
    num_local:
        Number of independent local searches; the cheapest local
        optimum wins.
    max_neighbors:
        Failed random swaps tolerated before declaring a local optimum
        (default: the [NH94] heuristic ``max(250, 1.25% of k(n-k))``).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if num_local < 1:
        raise ValueError("num_local must be at least 1")
    dissimilarity = 1.0 - similarity_matrix(points, similarity)
    n = dissimilarity.shape[0]
    if n < k:
        raise ValueError(f"cannot pick {k} medoids from {n} points")
    if max_neighbors is None:
        max_neighbors = max(250, int(0.0125 * k * (n - k)))
    rng = random.Random(seed)

    def cost_of(medoids: list[int]) -> float:
        return float(dissimilarity[:, medoids].min(axis=1).sum())

    best_medoids: list[int] | None = None
    best_cost = float("inf")
    for _ in range(num_local):
        medoids = sorted(rng.sample(range(n), k))
        current_cost = cost_of(medoids)
        failures = 0
        while failures < max_neighbors:
            swap_out = rng.randrange(k)
            swap_in = rng.randrange(n)
            if swap_in in medoids:
                failures += 1
                continue
            candidate = sorted(medoids[:swap_out] + [swap_in] + medoids[swap_out + 1 :])
            candidate_cost = cost_of(candidate)
            if candidate_cost < current_cost:
                medoids, current_cost = candidate, candidate_cost
                failures = 0
            else:
                failures += 1
        if current_cost < best_cost:
            best_medoids, best_cost = medoids, current_cost

    assert best_medoids is not None
    assignment = np.asarray(dissimilarity[:, best_medoids].argmin(axis=1))
    clusters = [
        sorted(int(p) for p in np.flatnonzero(assignment == c)) for c in range(k)
    ]
    clusters = [c for c in clusters if c]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return ClaransResult(
        clusters=clusters, medoids=best_medoids, cost=best_cost, n_points=n
    )
