"""DBSCAN over a similarity neighborhood (related work, Section 2).

The paper cites DBSCAN [EKSX96] among clustering algorithms for large
databases and notes its weakness: growing clusters through dense
neighborhoods "may be prone to errors if clusters are not
well-separated" -- one dense bridge point chains two clusters together.

This implementation is adapted to the categorical setting the paper
studies: the epsilon-ball of a point is its *neighbor set* at
similarity threshold theta (exactly the neighbor graph ROCK uses), and
``min_points`` is DBSCAN's core-point density requirement.  That makes
the comparison head-to-head: both algorithms see the identical
neighborhood structure; ROCK aggregates it through links, DBSCAN
through density-reachability.

Returned labels: cluster ids 0.., or -1 for noise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.labeling import labels_from_clusters
from repro.core.neighbors import NeighborGraph, compute_neighbor_graph
from repro.core.similarity import SimilarityFunction


@dataclass
class DbscanResult:
    """Outcome of a DBSCAN run."""

    clusters: list[list[int]]
    noise: list[int]
    core_points: list[int] = field(default_factory=list)
    n_points: int = 0

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)


def dbscan_graph(graph: NeighborGraph, min_points: int = 3) -> DbscanResult:
    """DBSCAN over a precomputed neighbor graph.

    A point is *core* when it has at least ``min_points`` neighbors
    (the point itself is not counted, matching the graph's no-self-loop
    convention; pass ``min_points - 1`` to replicate conventions that
    count the point).  Clusters are the density-connected components of
    core points, plus border points attached to the first core cluster
    that reaches them.  Deterministic: points are seeded in index order.
    """
    if min_points < 1:
        raise ValueError("min_points must be at least 1")
    n = graph.n
    degrees = graph.degrees()
    neighbor_lists = graph.neighbor_lists()
    is_core = degrees >= min_points

    labels = np.full(n, -2, dtype=np.int64)  # -2 unvisited, -1 noise
    clusters: list[list[int]] = []
    for seed in range(n):
        if labels[seed] != -2 or not is_core[seed]:
            continue
        cluster_id = len(clusters)
        members: list[int] = []
        queue = deque([seed])
        labels[seed] = cluster_id
        while queue:
            point = queue.popleft()
            members.append(point)
            if not is_core[point]:
                continue  # border points do not expand
            for neighbor in neighbor_lists[point]:
                neighbor = int(neighbor)
                if labels[neighbor] in (-2, -1):
                    labels[neighbor] = cluster_id
                    queue.append(neighbor)
        clusters.append(sorted(members))
    noise = [int(p) for p in np.flatnonzero(labels < 0)]
    for p in noise:
        labels[p] = -1
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return DbscanResult(
        clusters=clusters,
        noise=noise,
        core_points=[int(p) for p in np.flatnonzero(is_core)],
        n_points=n,
    )


def dbscan_cluster(
    points: Any,
    theta: float,
    min_points: int = 3,
    similarity: SimilarityFunction | None = None,
    neighbor_method: str = "auto",
) -> DbscanResult:
    """DBSCAN with the similarity-threshold neighborhood of Section 3.1."""
    graph = compute_neighbor_graph(
        points, theta, similarity=similarity, method=neighbor_method
    )
    return dbscan_graph(graph, min_points=min_points)
