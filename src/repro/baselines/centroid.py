"""The traditional centroid-based hierarchical algorithm (Sections 1.1, 5).

This is the comparison algorithm of the paper's experiments:

* categorical attributes are converted to boolean 0/1 attributes, one
  per (attribute, value) pair (Section 5);
* clusters are merged bottom-up by euclidean distance between
  centroids (UPGMC);
* outlier handling: "eliminating clusters with only one point when the
  number of clusters reduces to 1/3 of the original number".

The two-phase outlier rule is implemented literally: agglomerate down
to ``n/3`` clusters, drop singletons, then resume from the surviving
clusters' centroids down to ``k``.  Resuming from centroids is exact
for the centroid method (a cluster is fully summarised by its centroid
and size under the Lance-Williams recurrence used here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.hierarchical import (
    HierarchicalMerge,
    HierarchicalResult,
    agglomerate,
    centroid_update,
)
from repro.core.encoding import dataset_to_boolean_matrix
from repro.core.labeling import labels_from_clusters
from repro.data.records import CategoricalDataset
from repro.data.transactions import TransactionDataset


@dataclass
class CentroidResult:
    """Outcome of the traditional algorithm.

    ``clusters`` hold original point indices; ``outlier_indices`` are
    the points dropped by the singleton-elimination rule.
    """

    clusters: list[list[int]]
    outlier_indices: list[int] = field(default_factory=list)
    merges: list[HierarchicalMerge] = field(default_factory=list)
    n_points: int = 0

    def labels(self) -> np.ndarray:
        return labels_from_clusters(self.clusters, self.n_points)

    def sizes(self) -> list[int]:
        return [len(c) for c in self.clusters]


def squared_euclidean_matrix(points: np.ndarray) -> np.ndarray:
    """All-pairs squared euclidean distances, computed via the Gram trick."""
    points = np.asarray(points, dtype=np.float64)
    gram = points @ points.T
    norms = np.diag(gram)
    d2 = norms[:, None] + norms[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)  # clamp negative rounding residue
    return d2


def to_boolean_vectors(
    data: TransactionDataset | CategoricalDataset | np.ndarray,
) -> np.ndarray:
    """The Section-5 boolean expansion for any supported input type."""
    if isinstance(data, TransactionDataset):
        return data.indicator_matrix().astype(np.float64)
    if isinstance(data, CategoricalDataset):
        matrix, _ = dataset_to_boolean_matrix(data)
        return matrix
    return np.asarray(data, dtype=np.float64)


def centroid_cluster(
    data: TransactionDataset | CategoricalDataset | np.ndarray,
    k: int,
    eliminate_singletons: bool = True,
    singleton_threshold_fraction: float = 1.0 / 3.0,
) -> CentroidResult:
    """Run the full traditional algorithm of Section 5.

    Parameters
    ----------
    data:
        Transactions, categorical records, or a ready numeric matrix.
    k:
        Desired number of clusters.
    eliminate_singletons:
        Apply the paper's outlier rule (on by default, as in the paper's
        experiments).
    singleton_threshold_fraction:
        The "1/3 of the original number" checkpoint, as a fraction of n.
    """
    vectors = to_boolean_vectors(data)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if k < 1:
        raise ValueError("k must be at least 1")

    outliers: list[int] = []
    merges: list[HierarchicalMerge] = []

    if eliminate_singletons and n > k:
        checkpoint = max(k, int(np.ceil(n * singleton_threshold_fraction)))
        first = agglomerate(squared_euclidean_matrix(vectors), checkpoint, centroid_update)
        merges.extend(first.merges)
        survivors = [c for c in first.clusters if len(c) > 1]
        outliers = sorted(p for c in first.clusters if len(c) == 1 for p in c)
        if not survivors:
            # degenerate: everything was a singleton at the checkpoint
            survivors = first.clusters
            outliers = []
        index_groups = survivors
    else:
        index_groups = [[i] for i in range(n)]

    if len(index_groups) > k:
        centroids = np.array(
            [vectors[group].mean(axis=0) for group in index_groups]
        )
        group_sizes = np.array([len(g) for g in index_groups], dtype=np.int64)
        second = _agglomerate_weighted(centroids, group_sizes, k)
        merges.extend(second.merges)
        clusters = [
            sorted(p for gi in meta for p in index_groups[gi])
            for meta in second.clusters
        ]
    else:
        clusters = [sorted(g) for g in index_groups]

    clusters.sort(key=lambda c: (-len(c), c[0]))
    return CentroidResult(
        clusters=clusters, outlier_indices=outliers, merges=merges, n_points=n
    )


def _agglomerate_weighted(
    centroids: np.ndarray, weights: np.ndarray, k: int
) -> HierarchicalResult:
    """Centroid agglomeration over pre-formed clusters.

    The Lance-Williams centroid recurrence needs true cluster sizes, so
    the generic engine cannot be reused directly (it assumes unit
    leaves).  This variant carries the initial weights through the same
    nearest-neighbor loop.
    """
    n = centroids.shape[0]
    d = squared_euclidean_matrix(centroids)
    np.fill_diagonal(d, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = weights.astype(np.int64).copy()
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    merges: list[HierarchicalMerge] = []
    remaining = n
    while remaining > k:
        masked = np.where(active[:, None] & active[None, :], d, np.inf)
        u, v = np.unravel_index(int(np.argmin(masked)), masked.shape)
        u, v = int(u), int(v)
        if not np.isfinite(masked[u, v]):
            break
        d_uv = d[u, v]
        total = sizes[u] + sizes[v]
        row = (sizes[u] * d[u] + sizes[v] * d[v]) / total - (
            sizes[u] * sizes[v] * d_uv
        ) / (total * total)
        row[u] = np.inf
        row[v] = np.inf
        d[u, :] = row
        d[:, u] = row
        d[v, :] = np.inf
        d[:, v] = np.inf
        active[v] = False
        sizes[u] = total
        members[u] = members[u] + members.pop(v)
        remaining -= 1
        merges.append(
            HierarchicalMerge(left=u, right=v, distance=float(d_uv), size=int(total))
        )
    clusters = [sorted(members[i]) for i in np.flatnonzero(active)]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return HierarchicalResult(clusters=clusters, merges=merges, n_points=n)
