"""Numba tier for :mod:`repro.native`.

``@njit`` ports of the kernels in ``kernels.c``, compiled lazily
on first call (``cache=True`` persists the machine code across
processes).  Importing this module without numba installed raises
``ImportError``, which the probe in :mod:`repro.native` treats as
"tier unavailable"; a numba that imports but miscompiles is caught by
the probe's smoke test the same way.

Bit-identicality notes mirror ``kernels.c``: IEEE double arithmetic
throughout (``fastmath`` stays off), the goodness denominator keeps the
reference association ``(P[lo+hi] - P[lo]) - P[hi]``, merged link
counts add u's contribution first, and heap ties break on the partner
id exactly like Python's ``(float, int)`` tuple comparison.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numba import njit  # noqa: F401  (ImportError here == tier unavailable)
from numba.typed import List

import numba as _numba

_JIT = {"cache": True, "fastmath": False}


# ------------------------------------------------------------------
# 1. fused block scoring
# ------------------------------------------------------------------

@njit(**_JIT)
def _upper_bound(arr, lo, hi, key):
    while lo < hi:
        mid = (lo + hi) >> 1
        if arr[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(**_JIT)
def _score_block(
    indptr, indices, t_indptr, t_indices, sizes,
    n, start, stop, theta, overlap,
    acc, touched, out_indptr, out_indices, cap,
):
    # upper-triangle scoring (j > row): the transpose lists are
    # ascending, so a binary search jumps to each item's suffix;
    # mirror_neighbors rebuilds the full lists afterwards
    total = np.int64(0)
    overflow = False
    out_indptr[0] = 0
    for row in range(start, stop):
        n_touched = 0
        for p in range(indptr[row], indptr[row + 1]):
            item = indices[p]
            q = _upper_bound(
                t_indices, t_indptr[item], t_indptr[item + 1], row
            )
            for q2 in range(q, t_indptr[item + 1]):
                j = t_indices[q2]
                if acc[j] == 0:
                    touched[n_touched] = j
                    n_touched += 1
                acc[j] += 1
        sa = sizes[row]
        row_deg = 0
        base = total
        for t in range(n_touched):
            j = touched[t]
            inter = acc[j]
            acc[j] = 0
            sb = sizes[j]
            if overlap:
                denom = float(min(sa, sb))
                if float(inter) < theta * denom - 1e-6:
                    continue
            else:
                denom = float(sa + sb - inter)
                if (1.0 + theta) * float(inter) < theta * float(sa + sb) - 1e-6:
                    continue
            if float(inter) / denom >= theta:
                if not overflow and base + row_deg < cap:
                    out_indices[base + row_deg] = j
                row_deg += 1
        if not overflow and base + row_deg > cap:
            overflow = True
        if not overflow and row_deg > 1:
            out_indices[base:base + row_deg] = np.sort(
                out_indices[base:base + row_deg]
            )
        total += row_deg
        out_indptr[row - start + 1] = total
    if overflow:
        return -total
    return total


@njit(**_JIT)
def _mirror_neighbors(up_indptr, up_indices, n, full_indptr, full_indices):
    # full[i] = mirrored {j < i} ++ upper[i]; outer loop ascending in i
    # and ascending upper lists keep every full list ascending
    cur = np.empty(n, np.int64)
    for i in range(n):
        cur[i] = up_indptr[i + 1] - up_indptr[i]
    total = up_indptr[n]
    for p in range(total):
        cur[up_indices[p]] += 1
    full_indptr[0] = 0
    for i in range(n):
        full_indptr[i + 1] = full_indptr[i] + cur[i]
        cur[i] = full_indptr[i]
    for i in range(n):
        for p in range(up_indptr[i], up_indptr[i + 1]):
            j = up_indices[p]
            full_indices[cur[i]] = j
            cur[i] += 1
            full_indices[cur[j]] = i
            cur[j] += 1
    return full_indptr[n]


# ------------------------------------------------------------------
# 2. pair-code counting
# ------------------------------------------------------------------

@njit(**_JIT)
def _pair_count_reduce(list_indptr, list_indices, n, codes, counts):
    pos = 0
    for l in range(len(list_indptr) - 1):
        lo = list_indptr[l]
        hi = list_indptr[l + 1]
        for a in range(lo, hi):
            base = np.int64(list_indices[a]) * n
            for b in range(a + 1, hi):
                codes[pos] = base + np.int64(list_indices[b])
                pos += 1
    if pos == 0:
        return 0
    codes[:pos] = np.sort(codes[:pos])
    u = 0
    i = 0
    while i < pos:
        c = codes[i]
        j = i + 1
        while j < pos and codes[j] == c:
            j += 1
        codes[u] = c
        counts[u] = j - i
        u += 1
        i = j
    return u


# ------------------------------------------------------------------
# 2b. fused serving assignment over the inverted index
# ------------------------------------------------------------------

@njit(**_JIT)
def _assign_block(
    q_indptr, q_items, q_sizes,
    inv_indptr, inv_reps, rep_sizes, rep_cluster, normalisers,
    theta, acc, touched, ccounts, ctouched, out_labels, out_best,
):
    # candidate gather + threshold + first-max argmax fused per point;
    # theta > 0 precondition, untouched clusters score exactly 0.0
    b = q_indptr.size - 1
    n_outliers = 0
    for i in range(b):
        n_touched = 0
        for p in range(q_indptr[i], q_indptr[i + 1]):
            item = q_items[p]
            for q in range(inv_indptr[item], inv_indptr[item + 1]):
                r = inv_reps[q]
                if acc[r] == 0:
                    touched[n_touched] = r
                    n_touched += 1
                acc[r] += 1
        qsize = q_sizes[i]
        n_clu = 0
        for t in range(n_touched):
            r = touched[t]
            inter = np.int64(acc[r])
            acc[r] = 0
            uni = np.int64(rep_sizes[r]) + qsize - inter
            if float(inter) / float(uni) >= theta:
                c = rep_cluster[r]
                if ccounts[c] == 0:
                    ctouched[n_clu] = c
                    n_clu += 1
                ccounts[c] += 1
        best = 0.0
        lab = np.int64(-1)
        for t in range(n_clu):
            c = np.int64(ctouched[t])
            s = float(ccounts[c]) / normalisers[c]
            ccounts[c] = 0
            if s > best or (s == best and (lab < 0 or c < lab)):
                best = s
                lab = c
        if lab >= 0 and best == 0.0:
            lab = np.int64(0)  # all scores 0.0: np.argmax picks index 0
        if lab < 0:
            n_outliers += 1
        out_labels[i] = lab
        out_best[i] = best
    return n_outliers


# ------------------------------------------------------------------
# 3. component merge inner loop
# ------------------------------------------------------------------

@njit(**_JIT)
def _goodness(count, ni, nj, ptable, naive):
    if naive:
        return count
    if ni > nj:
        lo, hi = nj, ni
    else:
        lo, hi = ni, nj
    denom = (ptable[lo + hi] - ptable[lo]) - ptable[hi]
    if denom <= 0.0:
        if count > 0.0:
            return np.inf
        return 0.0
    return count / denom


@njit(**_JIT)
def _ent_lt(neg_a, part_a, neg_b, part_b):
    if neg_a < neg_b:
        return True
    if neg_a > neg_b:
        return False
    return part_a < part_b


@njit(**_JIT)
def _siftdown(neg, part, startpos, pos):
    item_n = neg[pos]
    item_p = part[pos]
    while pos > startpos:
        parent = (pos - 1) >> 1
        if _ent_lt(item_n, item_p, neg[parent], part[parent]):
            neg[pos] = neg[parent]
            part[pos] = part[parent]
            pos = parent
        else:
            break
    neg[pos] = item_n
    part[pos] = item_p


@njit(**_JIT)
def _siftup(neg, part, length, pos):
    startpos = pos
    item_n = neg[pos]
    item_p = part[pos]
    child = 2 * pos + 1
    while child < length:
        right = child + 1
        if right < length and not _ent_lt(
            neg[child], part[child], neg[right], part[right]
        ):
            child = right
        neg[pos] = neg[child]
        part[pos] = part[child]
        pos = child
        child = 2 * pos + 1
    neg[pos] = item_n
    part[pos] = item_p
    _siftdown(neg, part, startpos, pos)


@njit(**_JIT)
def _heapify(neg, part, length):
    for i in range(length // 2 - 1, -1, -1):
        _siftup(neg, part, length, i)


@njit(**_JIT)
def _lheap_push(heap_neg, heap_part, heap_len, x, neg_v, part_v):
    n = heap_len[x]
    arr_n = heap_neg[x]
    if n == arr_n.size:
        cap = max(8, arr_n.size * 2)
        new_n = np.empty(cap, np.float64)
        new_n[:n] = arr_n[:n]
        heap_neg[x] = new_n
        arr_p = heap_part[x]
        new_p = np.empty(cap, np.int64)
        new_p[:n] = arr_p[:n]
        heap_part[x] = new_p
    heap_neg[x][n] = neg_v
    heap_part[x][n] = part_v
    heap_len[x] = n + 1
    _siftdown(heap_neg[x], heap_part[x], 0, n)


@njit(**_JIT)
def _lheap_pop(heap_neg, heap_part, heap_len, x):
    neg = heap_neg[x]
    part = heap_part[x]
    n = heap_len[x] - 1
    heap_len[x] = n
    last_n = neg[n]
    last_p = part[n]
    if n == 0:
        return
    neg[0] = last_n
    part[0] = last_p
    _siftup(neg, part, n, 0)


@njit(**_JIT)
def _row_append(row_part, row_count, row_len, x, partner, c):
    n = row_len[x]
    arr_p = row_part[x]
    if n == arr_p.size:
        cap = max(4, arr_p.size * 2)
        new_p = np.empty(cap, np.int64)
        new_p[:n] = arr_p[:n]
        row_part[x] = new_p
        arr_c = row_count[x]
        new_c = np.empty(cap, np.float64)
        new_c[:n] = arr_c[:n]
        row_count[x] = new_c
    row_part[x][n] = partner
    row_count[x][n] = c
    row_len[x] = n + 1


@njit(**_JIT)
def _merge_component(
    sizes_in, pair_lo, pair_hi, pair_count, ptable, naive,
    out_left, out_right, out_goodness, out_sizes,
):
    s = sizes_in.size
    n_slots = 2 * s - 1
    size = np.zeros(n_slots, np.int64)
    alive = np.zeros(n_slots, np.uint8)
    best_token = np.full(n_slots, -np.inf)
    size[:s] = sizes_in
    alive[:s] = 1

    deg = np.zeros(n_slots, np.int64)
    for p in range(pair_lo.size):
        deg[pair_lo[p]] += 1
        deg[pair_hi[p]] += 1

    row_part = List()
    row_count = List()
    heap_neg = List()
    heap_part = List()
    for x in range(n_slots):
        cap = deg[x] if x < s and deg[x] > 0 else 0
        row_part.append(np.empty(max(cap, 1), np.int64))
        row_count.append(np.empty(max(cap, 1), np.float64))
        heap_neg.append(np.empty(max(cap, 1), np.float64))
        heap_part.append(np.empty(max(cap, 1), np.int64))
    row_len = np.zeros(n_slots, np.int64)
    heap_len = np.zeros(n_slots, np.int64)

    for p in range(pair_lo.size):
        a = pair_lo[p]
        b = pair_hi[p]
        c = pair_count[p]
        neg = -_goodness(c, size[a], size[b], ptable, naive)
        row_part[a][row_len[a]] = b
        row_count[a][row_len[a]] = c
        row_len[a] += 1
        row_part[b][row_len[b]] = a
        row_count[b][row_len[b]] = c
        row_len[b] += 1
        heap_neg[a][heap_len[a]] = neg
        heap_part[a][heap_len[a]] = b
        heap_len[a] += 1
        heap_neg[b][heap_len[b]] = neg
        heap_part[b][heap_len[b]] = a
        heap_len[b] += 1
    for x in range(s):
        n = row_len[x]
        if n > 1:
            # partners are unique within a row, so stability is moot
            order = np.argsort(row_part[x][:n])
            row_part[x][:n] = row_part[x][:n][order]
            row_count[x][:n] = row_count[x][:n][order]

    # token seeding
    g_cap = max(s, 1)
    g_neg = np.empty(g_cap, np.float64)
    g_part = np.empty(g_cap, np.int64)
    g_len = 0
    for x in range(s):
        if heap_len[x] == 0:
            continue
        _heapify(heap_neg[x], heap_part[x], heap_len[x])
        head_neg = heap_neg[x][0]
        if head_neg < 0.0:
            g_neg[g_len] = head_neg
            g_part[g_len] = x
            g_len += 1
            best_token[x] = -head_neg
    _heapify(g_neg, g_part, g_len)
    heap_ops = g_len

    alive_count = s
    next_slot = s
    n_merges = 0
    while alive_count > 1 and g_len > 0:
        tok_neg = g_neg[0]
        tok_u = g_part[0]
        g_len -= 1
        last_n = g_neg[g_len]
        last_p = g_part[g_len]
        if g_len > 0:
            g_neg[0] = last_n
            g_part[0] = last_p
            _siftup(g_neg, g_part, g_len, 0)
        heap_ops += 1
        u = tok_u
        neg_g = tok_neg
        if alive[u] == 0:
            continue
        while heap_len[u] > 0 and alive[heap_part[u][0]] == 0:
            _lheap_pop(heap_neg, heap_part, heap_len, u)
            heap_ops += 1
        if heap_len[u] == 0:
            best_token[u] = -np.inf
            continue
        head_neg = heap_neg[u][0]
        if head_neg != neg_g:
            if head_neg < 0.0:
                if g_len == g_cap:
                    g_cap *= 2
                    new_n = np.empty(g_cap, np.float64)
                    new_n[:g_len] = g_neg[:g_len]
                    g_neg = new_n
                    new_p = np.empty(g_cap, np.int64)
                    new_p[:g_len] = g_part[:g_len]
                    g_part = new_p
                g_neg[g_len] = head_neg
                g_part[g_len] = u
                g_len += 1
                _siftdown(g_neg, g_part, 0, g_len - 1)
                heap_ops += 1
                best_token[u] = -head_neg
            else:
                best_token[u] = -np.inf
            continue
        v = heap_part[u][0]
        w = next_slot
        next_slot += 1

        # row_w = merge(row_u \ {v}, row_v \ {u}) over live partners,
        # u's count first in the float sum
        nu = row_len[u]
        nv = row_len[v]
        rw_part = np.empty(nu + nv, np.int64)
        rw_count = np.empty(nu + nv, np.float64)
        rw_len = 0
        iu = 0
        iv = 0
        while True:
            while iu < nu and (
                alive[row_part[u][iu]] == 0 or row_part[u][iu] == v
            ):
                iu += 1
            while iv < nv and (
                alive[row_part[v][iv]] == 0 or row_part[v][iv] == u
            ):
                iv += 1
            if iu >= nu and iv >= nv:
                break
            if iv >= nv or (iu < nu and row_part[u][iu] < row_part[v][iv]):
                rw_part[rw_len] = row_part[u][iu]
                rw_count[rw_len] = row_count[u][iu]
                rw_len += 1
                iu += 1
            elif iu >= nu or row_part[v][iv] < row_part[u][iu]:
                rw_part[rw_len] = row_part[v][iv]
                rw_count[rw_len] = row_count[v][iv]
                rw_len += 1
                iv += 1
            else:
                rw_part[rw_len] = row_part[u][iu]
                rw_count[rw_len] = row_count[u][iu] + row_count[v][iv]
                rw_len += 1
                iu += 1
                iv += 1
        row_part[w] = rw_part
        row_count[w] = rw_count
        row_len[w] = rw_len
        row_len[u] = 0
        row_len[v] = 0
        heap_len[u] = 0
        heap_len[v] = 0
        alive[u] = 0
        alive[v] = 0
        alive[w] = 1
        size_w = size[u] + size[v]
        size[w] = size_w
        alive_count -= 1

        out_left[n_merges] = u
        out_right[n_merges] = v
        out_goodness[n_merges] = -neg_g
        out_sizes[n_merges] = size_w
        n_merges += 1

        # partner updates
        if rw_len > 0:
            hw_neg = np.empty(rw_len, np.float64)
            hw_part = np.empty(rw_len, np.int64)
            heap_neg[w] = hw_neg
            heap_part[w] = hw_part
        hw_len = 0
        for t in range(rw_len):
            x = rw_part[t]
            c = rw_count[t]
            _row_append(row_part, row_count, row_len, x, w, c)
            g = _goodness(c, size[x], size_w, ptable, naive)
            neg = -g
            _lheap_push(heap_neg, heap_part, heap_len, x, neg, w)
            heap_neg[w][hw_len] = neg
            heap_part[w][hw_len] = x
            hw_len += 1
            if g > best_token[x] and g > 0.0:
                if g_len == g_cap:
                    g_cap *= 2
                    new_n = np.empty(g_cap, np.float64)
                    new_n[:g_len] = g_neg[:g_len]
                    g_neg = new_n
                    new_p = np.empty(g_cap, np.int64)
                    new_p[:g_len] = g_part[:g_len]
                    g_part = new_p
                g_neg[g_len] = neg
                g_part[g_len] = x
                g_len += 1
                _siftdown(g_neg, g_part, 0, g_len - 1)
                best_token[x] = g
                heap_ops += 1
        heap_ops += 1 + rw_len
        heap_len[w] = hw_len
        if hw_len > 0:
            _heapify(heap_neg[w], heap_part[w], hw_len)
            hn = heap_neg[w][0]
            if hn < 0.0:
                if g_len == g_cap:
                    g_cap *= 2
                    new_n = np.empty(g_cap, np.float64)
                    new_n[:g_len] = g_neg[:g_len]
                    g_neg = new_n
                    new_p = np.empty(g_cap, np.int64)
                    new_p[:g_len] = g_part[:g_len]
                    g_part = new_p
                g_neg[g_len] = hn
                g_part[g_len] = w
                g_len += 1
                _siftdown(g_neg, g_part, 0, g_len - 1)
                best_token[w] = -hn
                heap_ops += 1
    return n_merges, heap_ops


class _NumbaKernels:
    """The uniform kernel interface on top of the njit functions."""

    name = "numba"

    def __init__(self) -> None:
        self.info = {"numba_version": _numba.__version__}

    def score_block(
        self, indptr, indices, t_indptr, t_indices, sizes,
        n, start, stop, theta, overlap,
    ):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        t_indptr = np.ascontiguousarray(t_indptr, dtype=np.int64)
        t_indices = np.ascontiguousarray(t_indices, dtype=np.int32)
        sizes = np.ascontiguousarray(sizes, dtype=np.int32)
        rows = stop - start
        acc = np.zeros(n, dtype=np.int32)
        touched = np.empty(n, dtype=np.int32)
        out_indptr = np.empty(rows + 1, dtype=np.int64)
        cap = max(int(indices.size) * max(rows, 1) // max(n, 1) + 64, 256)
        while True:
            out_indices = np.empty(cap, dtype=np.int32)
            written = _score_block(
                indptr, indices, t_indptr, t_indices, sizes,
                np.int64(n), np.int64(start), np.int64(stop),
                float(theta), np.int64(overlap),
                acc, touched, out_indptr, out_indices, np.int64(cap),
            )
            if written >= 0:
                return out_indptr, out_indices[:written]
            cap = int(-written)

    def mirror_neighbors(self, upper_indptr, upper_indices, n):
        upper_indptr = np.ascontiguousarray(upper_indptr, dtype=np.int64)
        upper_indices = np.ascontiguousarray(upper_indices, dtype=np.int32)
        full_indptr = np.empty(n + 1, dtype=np.int64)
        full_indices = np.empty(2 * upper_indices.size, dtype=np.int32)
        _mirror_neighbors(
            upper_indptr, upper_indices, np.int64(n),
            full_indptr, full_indices,
        )
        return full_indptr, full_indices

    def pair_count_reduce(self, list_indptr, list_indices, n):
        list_indptr = np.ascontiguousarray(list_indptr, dtype=np.int64)
        list_indices = np.ascontiguousarray(list_indices, dtype=np.int32)
        lens = np.diff(list_indptr)
        total = int((lens * (lens - 1) // 2).sum())
        # n*n < 2**31: sort 4-byte codes (half the memory traffic),
        # widen on return -- same values, same order, same counts
        code_dtype = np.int32 if 0 < n <= 46340 else np.int64
        codes = np.empty(total, dtype=code_dtype)
        counts = np.empty(total, dtype=np.int64)
        unique = _pair_count_reduce(
            list_indptr, list_indices, np.int64(n), codes, counts
        )
        return (
            codes[:unique].astype(np.int64),
            counts[:unique].copy(),
        )

    def assign_block(
        self, q_indptr, q_items, q_sizes,
        inv_indptr, inv_reps, rep_sizes, rep_cluster, normalisers,
        n_clusters, theta,
    ):
        q_indptr = np.ascontiguousarray(q_indptr, dtype=np.int64)
        q_items = np.ascontiguousarray(q_items, dtype=np.int32)
        q_sizes = np.ascontiguousarray(q_sizes, dtype=np.int64)
        inv_indptr = np.ascontiguousarray(inv_indptr, dtype=np.int64)
        inv_reps = np.ascontiguousarray(inv_reps, dtype=np.int32)
        rep_sizes = np.ascontiguousarray(rep_sizes, dtype=np.int32)
        rep_cluster = np.ascontiguousarray(rep_cluster, dtype=np.int32)
        normalisers = np.ascontiguousarray(normalisers, dtype=np.float64)
        b = int(q_indptr.size) - 1
        n_reps = int(rep_sizes.size)
        acc = np.zeros(max(n_reps, 1), dtype=np.int32)
        touched = np.empty(max(n_reps, 1), dtype=np.int32)
        ccounts = np.zeros(max(int(n_clusters), 1), dtype=np.int64)
        ctouched = np.empty(max(int(n_clusters), 1), dtype=np.int32)
        out_labels = np.empty(max(b, 1), dtype=np.int64)
        out_best = np.empty(max(b, 1), dtype=np.float64)
        _assign_block(
            q_indptr, q_items, q_sizes,
            inv_indptr, inv_reps, rep_sizes, rep_cluster, normalisers,
            float(theta), acc, touched, ccounts, ctouched,
            out_labels, out_best,
        )
        return out_labels[:b], out_best[:b]

    def merge_component(self, sizes, pair_lo, pair_hi, pair_count, ptable, naive):
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        pair_lo = np.ascontiguousarray(pair_lo, dtype=np.int64)
        pair_hi = np.ascontiguousarray(pair_hi, dtype=np.int64)
        pair_count = np.ascontiguousarray(pair_count, dtype=np.float64)
        ptable = np.ascontiguousarray(ptable, dtype=np.float64)
        s = int(sizes.size)
        cap = max(s - 1, 1)
        out_left = np.empty(cap, dtype=np.int64)
        out_right = np.empty(cap, dtype=np.int64)
        out_goodness = np.empty(cap, dtype=np.float64)
        out_sizes = np.empty(cap, dtype=np.int64)
        n_merges, heap_ops = _merge_component(
            sizes, pair_lo, pair_hi, pair_count, ptable, np.int64(naive),
            out_left, out_right, out_goodness, out_sizes,
        )
        return (
            out_left[:n_merges].copy(),
            out_right[:n_merges].copy(),
            out_goodness[:n_merges].copy(),
            out_sizes[:n_merges].copy(),
            int(heap_ops),
        )


def load_kernels() -> Any:
    return _NumbaKernels()
