/* Native kernels for the fused neighbor+link pass and the component
 * merge inner loop.
 *
 * Compiled on demand by repro/native/cext.py with the system C
 * compiler and bound through ctypes.  Every routine mirrors a Python
 * reference path bit for bit:
 *
 *   score_block       <-> repro.core.neighbors.SparseTransactionScorer
 *                         .neighbor_rows (same integer intersections,
 *                         same float64 division, same >= theta test),
 *                         restricted to the upper triangle j > row --
 *                         similarity is symmetric, so each pair is
 *                         scored once and mirror_neighbors rebuilds
 *                         the full ascending lists afterwards
 *   mirror_neighbors  <-> the trivial "every list contains both
 *                         directions" property of the reference lists
 *   pair_count_reduce <-> repro.parallel.links.pair_link_counts
 *                         (integer pair-code counting; sort order is
 *                         value order either way)
 *   merge_component   <-> repro.core.merge.component_merge_stream
 *                         (same lazy-heap selection, same goodness
 *                         arithmetic and association, same heap_ops)
 *   assign_block      <-> repro.serve.index.AssignmentIndex
 *                         .assign_with_scores (same candidate gather
 *                         over the inverted index, same float64
 *                         inter/union >= theta test, same first-max
 *                         argmax over the normalised cluster counts)
 *
 * Transaction/item ids travel as int32 (halving the bandwidth of the
 * randomly-accessed hot arrays); callers guarantee n < 2^31.
 *
 * IEEE-754 double arithmetic with the default rounding mode is assumed
 * and required -- build WITHOUT -ffast-math.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

typedef int64_t i64;
typedef int32_t i32;

/* ------------------------------------------------------------------ */
/* sorting helpers                                                     */
/* ------------------------------------------------------------------ */

static int i32_cmp(const void *a, const void *b)
{
    i32 x = *(const i32 *)a, y = *(const i32 *)b;
    return (x > y) - (x < y);
}

/* first index in arr[lo, hi) with arr[idx] > key (arrays ascending) */
static i64 upper_bound_i32(const i32 *arr, i64 lo, i64 hi, i32 key)
{
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (arr[mid] <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* LSD radix sort (16-bit digits) for non-negative int64 keys.
 * Returns 0, or -1 on allocation failure (caller falls back). */
static int radix_sort_i64(i64 *keys, i64 len)
{
    if (len < 2)
        return 0;
    i64 maxv = 0;
    for (i64 i = 0; i < len; i++)
        if (keys[i] > maxv)
            maxv = keys[i];
    i64 *tmp = (i64 *)malloc((size_t)len * sizeof(i64));
    i64 *hist = (i64 *)malloc(65536 * sizeof(i64));
    if (!tmp || !hist) {
        free(tmp);
        free(hist);
        return -1;
    }
    i64 *src = keys, *dst = tmp;
    for (int shift = 0; shift < 64 && (maxv >> shift) != 0; shift += 16) {
        memset(hist, 0, 65536 * sizeof(i64));
        for (i64 i = 0; i < len; i++)
            hist[(src[i] >> shift) & 0xFFFF]++;
        i64 pos = 0;
        for (i64 d = 0; d < 65536; d++) {
            i64 c = hist[d];
            hist[d] = pos;
            pos += c;
        }
        for (i64 i = 0; i < len; i++)
            dst[hist[(src[i] >> shift) & 0xFFFF]++] = src[i];
        i64 *swap = src;
        src = dst;
        dst = swap;
    }
    if (src != keys)
        memcpy(keys, src, (size_t)len * sizeof(i64));
    free(tmp);
    free(hist);
    return 0;
}

/* i32 twin of radix_sort_i64: half the memory traffic per pass. */
static int radix_sort_i32(i32 *keys, i64 len)
{
    if (len < 2)
        return 0;
    i32 maxv = 0;
    for (i64 i = 0; i < len; i++)
        if (keys[i] > maxv)
            maxv = keys[i];
    i32 *tmp = (i32 *)malloc((size_t)len * sizeof(i32));
    i64 *hist = (i64 *)malloc(65536 * sizeof(i64));
    if (!tmp || !hist) {
        free(tmp);
        free(hist);
        return -1;
    }
    i32 *src = keys, *dst = tmp;
    for (int shift = 0; shift < 32 && (maxv >> shift) != 0; shift += 16) {
        memset(hist, 0, 65536 * sizeof(i64));
        for (i64 i = 0; i < len; i++)
            hist[(src[i] >> shift) & 0xFFFF]++;
        i64 pos = 0;
        for (i64 d = 0; d < 65536; d++) {
            i64 c = hist[d];
            hist[d] = pos;
            pos += c;
        }
        for (i64 i = 0; i < len; i++)
            dst[hist[(src[i] >> shift) & 0xFFFF]++] = src[i];
        i32 *swap = src;
        src = dst;
        dst = swap;
    }
    if (src != keys)
        memcpy(keys, src, (size_t)len * sizeof(i32));
    free(tmp);
    free(hist);
    return 0;
}

/* ------------------------------------------------------------------ */
/* 1. fused block scoring: CSR transactions -> sorted neighbor lists   */
/* ------------------------------------------------------------------ */

/* Score rows [start, stop) of the transaction similarity matrix and
 * emit each row's ascending UPPER-TRIANGLE neighbor indices (j > row)
 * at threshold theta; mirror_neighbors rebuilds the full lists.
 *
 * indptr/indices      CSR of transactions -> sorted item codes
 * t_indptr/t_indices  transpose CSR of items -> ascending txn ids
 * sizes               |T_i| per transaction
 * acc, touched        caller int32 workspaces of length n; acc must
 *                     arrive zeroed (it is returned zeroed)
 * out_indptr          length stop-start+1
 * out_indices, cap    neighbor-index buffer and its capacity
 *
 * Intersection counts are accumulated per row by walking the transpose
 * lists of the row's items -- only transactions sharing an item are
 * touched, the sparse-product work of the scipy scorer without ever
 * materialising the product.  The lists are ascending, so a binary
 * search per item skips straight to the j > row suffix: similarity is
 * symmetric and each unordered pair is therefore scored exactly once,
 * with the identical integer intersection count (every shared item
 * still contributes exactly +1).  A conservative prefilter skips the
 * division for pairs that cannot clear theta; survivors get the exact
 * float64 (double)inter / (double)denom >= theta test, matching the
 * reference bit for bit (theta > 0 is a precondition: theta == 0 makes
 * everyone a neighbor and is answered by the Python path directly).
 *
 * Returns the total neighbors written, or -(needed) when cap is too
 * small -- counting continues so the caller can retry with the exact
 * size in one round trip.
 */
long long score_block(
    const i64 *indptr, const i32 *indices,
    const i64 *t_indptr, const i32 *t_indices,
    const i32 *sizes,
    i64 n, i64 start, i64 stop,
    double theta, i64 overlap,
    i32 *acc, i32 *touched,
    i64 *out_indptr,
    i32 *out_indices, i64 cap)
{
    i64 total = 0;
    int overflow = 0;
    out_indptr[0] = 0;
    for (i64 row = start; row < stop; row++) {
        i64 n_touched = 0;
        i64 p = indptr[row], p_end = indptr[row + 1];
        if (p < p_end) {
            /* first item: every transaction in its suffix is fresh,
             * so skip the acc==0 test entirely */
            i64 item = indices[p++];
            i64 q = upper_bound_i32(
                t_indices, t_indptr[item], t_indptr[item + 1], (i32)row
            );
            for (; q < t_indptr[item + 1]; q++) {
                i32 j = t_indices[q];
                acc[j] = 1;
                touched[n_touched++] = j;
            }
        }
        for (; p < p_end; p++) {
            i64 item = indices[p];
            i64 q = upper_bound_i32(
                t_indices, t_indptr[item], t_indptr[item + 1], (i32)row
            );
            for (; q < t_indptr[item + 1]; q++) {
                i32 j = t_indices[q];
                i32 a = acc[j];
                /* branchless: the store is unconditional, the cursor
                 * only advances for first touches (compiles to cmov /
                 * setcc instead of a mispredict-prone branch) */
                touched[n_touched] = j;
                n_touched += (a == 0);
                acc[j] = a + 1;
            }
        }
        i64 sa = sizes[row];
        i64 row_deg = 0;
        i32 *dst = out_indices + total;
        for (i64 t = 0; t < n_touched; t++) {
            i32 j = touched[t];
            i64 inter = acc[j];
            acc[j] = 0;
            i64 sb = sizes[j];
            double denom;
            if (overlap) {
                denom = (double)(sa < sb ? sa : sb);
                if ((double)inter < theta * denom - 1e-6)
                    continue;
            } else {
                denom = (double)(sa + sb - inter);
                if ((1.0 + theta) * (double)inter
                        < theta * (double)(sa + sb) - 1e-6)
                    continue;
            }
            if ((double)inter / denom >= theta) {
                if (!overflow && total + row_deg < cap)
                    dst[row_deg] = j;
                row_deg++;
            }
        }
        if (!overflow && total + row_deg > cap)
            overflow = 1;
        if (!overflow && row_deg > 1)
            qsort(dst, (size_t)row_deg, sizeof(i32), i32_cmp);
        total += row_deg;
        out_indptr[row - start + 1] = total;
    }
    if (overflow)
        return -total;
    return total;
}

/* Rebuild the full ascending neighbor lists from the upper-triangle
 * ones: full[i] = {j < i : i in upper[j]} ++ upper[i].  The outer loop
 * runs i ascending and upper lists are ascending, so every full list
 * comes out ascending without any sort -- mirrored entries j < i land
 * before i's own suffix entries, both in increasing order.
 *
 * full_indptr has length n+1, full_indices capacity 2 * total.
 * Returns the full total, or -1 on allocation failure.
 */
long long mirror_neighbors(
    const i64 *up_indptr, const i32 *up_indices, i64 n,
    i64 *full_indptr, i32 *full_indices)
{
    i64 *cur = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
    if (!cur)
        return -1;
    for (i64 i = 0; i < n; i++)
        cur[i] = up_indptr[i + 1] - up_indptr[i];
    i64 total = up_indptr[n];
    for (i64 p = 0; p < total; p++)
        cur[up_indices[p]]++;
    full_indptr[0] = 0;
    for (i64 i = 0; i < n; i++) {
        full_indptr[i + 1] = full_indptr[i] + cur[i];
        cur[i] = full_indptr[i];
    }
    for (i64 i = 0; i < n; i++) {
        for (i64 p = up_indptr[i]; p < up_indptr[i + 1]; p++) {
            i32 j = up_indices[p];
            full_indices[cur[i]++] = j;
            full_indices[cur[j]++] = (i32)i;
        }
    }
    free(cur);
    return full_indptr[n];
}

/* ------------------------------------------------------------------ */
/* 2. Figure 4 pair-code counting over neighbor lists                  */
/* ------------------------------------------------------------------ */

/* Emit the pair code i*n+j (i < j) for every unordered pair drawn
 * from each ascending neighbor list, sort the codes, and run-length
 * reduce them in place.  codes/counts have capacity total_pairs
 * (= sum over lists of m*(m-1)/2, computed by the caller from the
 * list lengths); the reduced table occupies their prefix.
 *
 * Returns the number of unique codes, or -1 on allocation failure.
 */
long long pair_count_reduce(
    const i64 *list_indptr, const i32 *list_indices,
    i64 n_lists, i64 n,
    i64 *codes, i64 *counts, i64 total_pairs)
{
    if (n > 0 && n <= 46340) {
        /* n*n < 2^31: the codes fit int32, so emit and sort 4-byte
         * keys -- half the memory traffic of the i64 path through the
         * dominant (emit + radix) stages -- then widen on reduce.
         * Same integer values, same ascending order, same counts. */
        i32 *c32 = (i32 *)malloc(
            (size_t)(total_pairs > 0 ? total_pairs : 1) * sizeof(i32));
        if (c32 != NULL) {
            i64 pos = 0;
            for (i64 l = 0; l < n_lists; l++) {
                i64 lo = list_indptr[l], hi = list_indptr[l + 1];
                for (i64 a = lo; a < hi; a++) {
                    i32 base = (i32)(list_indices[a] * (i32)n);
                    for (i64 b = a + 1; b < hi; b++)
                        c32[pos++] = base + list_indices[b];
                }
            }
            if (pos == 0) {
                free(c32);
                return 0;
            }
            if (radix_sort_i32(c32, pos) != 0) {
                free(c32);
                return -1;
            }
            i64 u = 0, i = 0;
            while (i < pos) {
                i32 c = c32[i];
                i64 j = i + 1;
                while (j < pos && c32[j] == c)
                    j++;
                codes[u] = (i64)c;
                counts[u] = j - i;
                u++;
                i = j;
            }
            free(c32);
            return u;
        }
        /* allocation failed: fall through to the i64 path */
    }
    i64 pos = 0;
    for (i64 l = 0; l < n_lists; l++) {
        i64 lo = list_indptr[l], hi = list_indptr[l + 1];
        for (i64 a = lo; a < hi; a++) {
            i64 base = (i64)list_indices[a] * n;
            for (i64 b = a + 1; b < hi; b++)
                codes[pos++] = base + (i64)list_indices[b];
        }
    }
    /* pos == total_pairs by construction */
    (void)total_pairs;
    if (pos == 0)
        return 0;
    if (radix_sort_i64(codes, pos) != 0)
        return -1;
    i64 u = 0, i = 0;
    while (i < pos) {
        i64 c = codes[i];
        i64 j = i + 1;
        while (j < pos && codes[j] == c)
            j++;
        codes[u] = c;
        counts[u] = j - i;
        u++;
        i = j;
    }
    return u;
}

/* ------------------------------------------------------------------ */
/* 2b. fused serving assignment over the inverted index                */
/* ------------------------------------------------------------------ */

/* Assign a CSR-encoded query block against the item->representative
 * inverted index: candidate gather, Jaccard threshold test and
 * best-cluster argmax fused into one pass per point.
 *
 * q_indptr/q_items    CSR of query points -> in-vocabulary item codes
 * q_sizes             true item count per point (OOV items enlarge
 *                     the union without appearing in q_items)
 * inv_indptr/inv_reps CSC of the representative indicator matrix:
 *                     item -> ascending representative ids
 * rep_sizes           |rep| per representative (exact integers)
 * rep_cluster         representative -> cluster id
 * normalisers         (|L_c| + 1)^f per cluster
 * acc, touched        int32 workspaces; acc has length n_reps and
 *                     must arrive zeroed (it is returned zeroed);
 *                     touched has length n_reps + 1 -- the branchless
 *                     first-touch write lands in the spare slot when
 *                     every representative is already touched
 * ccounts, ctouched   i64/i32 workspaces of length n_clusters;
 *                     ccounts must arrive zeroed (returned zeroed)
 * out_labels/out_best winning cluster (-1 = outlier) and its
 *                     normalised score (0.0 for outliers) per point
 *
 * theta > 0 is a precondition (theta == 0 makes every representative
 * a neighbor and is answered by the Python path with constant
 * counts).  A candidate has inter >= 1, hence union >= 1, so the
 * float64 quotient matches the reference's guarded division bit for
 * bit.  The argmax scans only the touched clusters: an untouched
 * cluster scores exactly 0.0 while any neighbor count >= 1 divided by
 * a positive normaliser scores > 0, so the global first-max winner is
 * always among the touched clusters -- ties break toward the lowest
 * cluster id, np.argmax order.  (If every touched cluster still
 * scores 0.0 -- a degenerate normaliser overflowing to inf -- the
 * global argmax is cluster 0, restored below.)
 *
 * Returns the number of outliers in the block.
 */
long long assign_block(
    const i64 *q_indptr, const i32 *q_items, const i64 *q_sizes, i64 b,
    const i64 *inv_indptr, const i32 *inv_reps,
    const i32 *rep_sizes, const i32 *rep_cluster,
    const double *normalisers,
    i64 n_clusters, double theta,
    i32 *acc, i32 *touched,
    i64 *ccounts, i32 *ctouched,
    i64 *out_labels, double *out_best)
{
    i64 n_outliers = 0;
    for (i64 i = 0; i < b; i++) {
        i64 n_touched = 0;
        i64 p = q_indptr[i], p_end = q_indptr[i + 1];
        if (p < p_end) {
            /* first item: every posting entry is a fresh touch */
            i64 item = q_items[p++];
            for (i64 q = inv_indptr[item]; q < inv_indptr[item + 1]; q++) {
                i32 r = inv_reps[q];
                acc[r] = 1;
                touched[n_touched++] = r;
            }
        }
        for (; p < p_end; p++) {
            i64 item = q_items[p];
            for (i64 q = inv_indptr[item]; q < inv_indptr[item + 1]; q++) {
                i32 r = inv_reps[q];
                i32 a = acc[r];
                /* branchless first-touch tracking (see score_block) */
                touched[n_touched] = r;
                n_touched += (a == 0);
                acc[r] = a + 1;
            }
        }
        i64 qsize = q_sizes[i];
        i64 n_clu = 0;
        for (i64 t = 0; t < n_touched; t++) {
            i32 r = touched[t];
            i64 inter = acc[r];
            acc[r] = 0;
            i64 uni = (i64)rep_sizes[r] + qsize - inter;
            if ((double)inter / (double)uni >= theta) {
                i32 c = rep_cluster[r];
                if (ccounts[c] == 0)
                    ctouched[n_clu++] = c;
                ccounts[c]++;
            }
        }
        double best = 0.0;
        i64 lab = -1;
        for (i64 t = 0; t < n_clu; t++) {
            i32 c = ctouched[t];
            double s = (double)ccounts[c] / normalisers[c];
            ccounts[c] = 0;
            if (s > best || (s == best && (lab < 0 || (i64)c < lab))) {
                best = s;
                lab = c;
            }
        }
        if (lab >= 0 && best == 0.0)
            lab = 0; /* all scores 0.0: np.argmax picks index 0 */
        if (lab < 0)
            n_outliers++;
        out_labels[i] = lab;
        out_best[i] = best;
    }
    (void)n_clusters;
    return n_outliers;
}


/* ------------------------------------------------------------------ */
/* 3. component merge inner loop                                       */
/* ------------------------------------------------------------------ */

/* Cross-link rows: per-slot arrays of (partner, count), sorted by
 * partner id.  Deletion is lazy -- dead partners are skipped on read --
 * and appends only ever add the freshly created slot id, which exceeds
 * every id already present, so the sorted invariant is append-safe. */
typedef struct {
    i64 partner;
    double count;
} Link;

typedef struct {
    Link *e;
    i64 len, cap;
} Row;

static int link_cmp(const void *a, const void *b)
{
    i64 x = ((const Link *)a)->partner, y = ((const Link *)b)->partner;
    return (x > y) - (x < y);
}

static int row_push(Row *r, i64 partner, double count)
{
    if (r->len == r->cap) {
        i64 cap = r->cap ? r->cap * 2 : 4;
        Link *e = (Link *)realloc(r->e, (size_t)cap * sizeof(Link));
        if (!e)
            return -1;
        r->e = e;
        r->cap = cap;
    }
    r->e[r->len].partner = partner;
    r->e[r->len].count = count;
    r->len++;
    return 0;
}

/* Binary min-heap of (neg_goodness, partner) entries under the same
 * lexicographic order as Python's (float, int) tuple comparison.  Only
 * the pop sequence is observable, and the minimum of the live multiset
 * is representation-independent, so matching heapq's internal layout
 * is not required -- but the sift routines mirror it anyway. */
typedef struct {
    double neg;
    i64 partner;
} HeapEnt;

typedef struct {
    HeapEnt *e;
    i64 len, cap;
} Heap;

static int heap_ent_lt(HeapEnt a, HeapEnt b)
{
    if (a.neg < b.neg)
        return 1;
    if (a.neg > b.neg)
        return 0;
    return a.partner < b.partner;
}

static void heap_siftdown(Heap *h, i64 startpos, i64 pos)
{
    HeapEnt item = h->e[pos];
    while (pos > startpos) {
        i64 parent = (pos - 1) >> 1;
        if (heap_ent_lt(item, h->e[parent])) {
            h->e[pos] = h->e[parent];
            pos = parent;
        } else
            break;
    }
    h->e[pos] = item;
}

static void heap_siftup(Heap *h, i64 pos)
{
    i64 endpos = h->len;
    i64 startpos = pos;
    HeapEnt item = h->e[pos];
    i64 child = 2 * pos + 1;
    while (child < endpos) {
        i64 right = child + 1;
        if (right < endpos && !heap_ent_lt(h->e[child], h->e[right]))
            child = right;
        h->e[pos] = h->e[child];
        pos = child;
        child = 2 * pos + 1;
    }
    h->e[pos] = item;
    heap_siftdown(h, startpos, pos);
}

static void heap_heapify(Heap *h)
{
    for (i64 i = h->len / 2 - 1; i >= 0; i--)
        heap_siftup(h, i);
}

static int heap_push(Heap *h, double neg, i64 partner)
{
    if (h->len == h->cap) {
        i64 cap = h->cap ? h->cap * 2 : 8;
        HeapEnt *e = (HeapEnt *)realloc(h->e, (size_t)cap * sizeof(HeapEnt));
        if (!e)
            return -1;
        h->e = e;
        h->cap = cap;
    }
    h->e[h->len].neg = neg;
    h->e[h->len].partner = partner;
    h->len++;
    heap_siftdown(h, 0, h->len - 1);
    return 0;
}

static HeapEnt heap_pop(Heap *h)
{
    HeapEnt last = h->e[--h->len];
    if (h->len == 0)
        return last;
    HeapEnt ret = h->e[0];
    h->e[0] = last;
    heap_siftup(h, 0);
    return ret;
}

/* goodness of merging clusters of sizes ni, nj with `count` cross
 * links.  ptable[k] = k^(1+2f), computed Python-side by the exact
 * scalar pow of repro.core.goodness.PowerTable; the denominator keeps
 * the reference association (P[lo+hi] - P[lo]) - P[hi] with lo <= hi. */
static double goodness_eval(double count, i64 ni, i64 nj,
                            const double *ptable, i64 naive)
{
    if (naive)
        return count;
    i64 lo, hi;
    if (ni > nj) {
        lo = nj;
        hi = ni;
    } else {
        lo = ni;
        hi = nj;
    }
    double denom = (ptable[lo + hi] - ptable[lo]) - ptable[hi];
    if (denom <= 0.0)
        return count > 0.0 ? INFINITY : 0.0;
    return count / denom;
}

/* Agglomerate one connected component to exhaustion.
 *
 * Mirrors repro.core.merge.component_merge_stream statement for
 * statement: slots s..2s-2 are the merged clusters in creation order,
 * selection is the doubly-lazy token scheme (local heaps of immutable
 * (-g, partner) entries, a global token heap, best_token lower
 * bounds), and heap_ops counts exactly what the Python loop counts.
 *
 * Outputs (capacity s-1 each) receive the merge stream; returns the
 * number of merges, or -1 on allocation failure.
 */
long long merge_component(
    i64 s,
    const i64 *sizes_in,
    i64 n_pairs,
    const i64 *pair_lo, const i64 *pair_hi, const double *pair_count,
    const double *ptable, i64 ptable_len,
    i64 naive,
    i64 *out_left, i64 *out_right, double *out_goodness, i64 *out_sizes,
    i64 *heap_ops_out)
{
    (void)ptable_len;
    i64 n_slots = 2 * s - 1;
    long long result = -1;
    i64 n_merges = 0;
    long long heap_ops = 0;

    i64 *size = (i64 *)calloc((size_t)n_slots, sizeof(i64));
    unsigned char *alive = (unsigned char *)calloc((size_t)n_slots, 1);
    double *best_token = (double *)malloc((size_t)n_slots * sizeof(double));
    Row *rows = (Row *)calloc((size_t)n_slots, sizeof(Row));
    Heap *local = (Heap *)calloc((size_t)n_slots, sizeof(Heap));
    Heap heap = {NULL, 0, 0};
    if (!size || !alive || !best_token || !rows || !local)
        goto done;
    for (i64 x = 0; x < s; x++) {
        size[x] = sizes_in[x];
        alive[x] = 1;
    }
    for (i64 x = 0; x < n_slots; x++)
        best_token[x] = -INFINITY;

    /* initial rows and local heaps, exact-size allocations */
    for (i64 p = 0; p < n_pairs; p++) {
        rows[pair_lo[p]].cap++;
        rows[pair_hi[p]].cap++;
    }
    for (i64 x = 0; x < s; x++) {
        if (rows[x].cap) {
            rows[x].e = (Link *)malloc((size_t)rows[x].cap * sizeof(Link));
            local[x].e =
                (HeapEnt *)malloc((size_t)rows[x].cap * sizeof(HeapEnt));
            local[x].cap = rows[x].cap;
            if (!rows[x].e || !local[x].e)
                goto done;
        }
    }
    for (i64 p = 0; p < n_pairs; p++) {
        i64 a = pair_lo[p], b = pair_hi[p];
        double c = pair_count[p];
        double neg = -goodness_eval(c, size[a], size[b], ptable, naive);
        rows[a].e[rows[a].len].partner = b;
        rows[a].e[rows[a].len].count = c;
        rows[a].len++;
        rows[b].e[rows[b].len].partner = a;
        rows[b].e[rows[b].len].count = c;
        rows[b].len++;
        local[a].e[local[a].len].neg = neg;
        local[a].e[local[a].len].partner = b;
        local[a].len++;
        local[b].e[local[b].len].neg = neg;
        local[b].e[local[b].len].partner = a;
        local[b].len++;
    }
    for (i64 x = 0; x < s; x++)
        if (rows[x].len > 1)
            qsort(rows[x].e, (size_t)rows[x].len, sizeof(Link), link_cmp);

    /* token seeding: one token per slot whose best goodness > 0 */
    heap.cap = s > 0 ? s : 1;
    heap.e = (HeapEnt *)malloc((size_t)heap.cap * sizeof(HeapEnt));
    if (!heap.e)
        goto done;
    for (i64 x = 0; x < s; x++) {
        Heap *h = &local[x];
        if (h->len == 0)
            continue;
        heap_heapify(h);
        double head_neg = h->e[0].neg;
        if (head_neg < 0.0) {
            heap.e[heap.len].neg = head_neg;
            heap.e[heap.len].partner = x;
            heap.len++;
            best_token[x] = -head_neg;
        }
    }
    heap_heapify(&heap);
    heap_ops = heap.len;

    i64 alive_count = s;
    i64 next_slot = s;
    while (alive_count > 1 && heap.len > 0) {
        HeapEnt tok = heap_pop(&heap);
        heap_ops++;
        i64 u = tok.partner;
        double neg_g = tok.neg;
        if (!alive[u])
            continue;
        Heap *hu = &local[u];
        while (hu->len > 0 && !alive[hu->e[0].partner]) {
            heap_pop(hu);
            heap_ops++;
        }
        if (hu->len == 0) {
            best_token[u] = -INFINITY;
            continue;
        }
        double head_neg = hu->e[0].neg;
        if (head_neg != neg_g) {
            /* stale token: u's best changed since the push; re-arm */
            if (head_neg < 0.0) {
                if (heap_push(&heap, head_neg, u) != 0)
                    goto done;
                heap_ops++;
                best_token[u] = -head_neg;
            } else
                best_token[u] = -INFINITY;
            continue;
        }
        i64 v = hu->e[0].partner;
        i64 w = next_slot++;

        /* row_w = merge(row_u \ {v}, row_v \ {u}) over live partners,
         * u's contribution first in the float sum -- the reference's
         * dict(row_u)-then-add-row_v order */
        Row *ru = &rows[u], *rv = &rows[v];
        Row rw = {NULL, 0, 0};
        rw.cap = ru->len + rv->len;
        if (rw.cap) {
            rw.e = (Link *)malloc((size_t)rw.cap * sizeof(Link));
            if (!rw.e)
                goto done;
        }
        i64 iu = 0, iv = 0;
        for (;;) {
            while (iu < ru->len
                   && (!alive[ru->e[iu].partner] || ru->e[iu].partner == v))
                iu++;
            while (iv < rv->len
                   && (!alive[rv->e[iv].partner] || rv->e[iv].partner == u))
                iv++;
            if (iu >= ru->len && iv >= rv->len)
                break;
            if (iv >= rv->len
                || (iu < ru->len && ru->e[iu].partner < rv->e[iv].partner)) {
                rw.e[rw.len++] = ru->e[iu++];
            } else if (iu >= ru->len
                       || rv->e[iv].partner < ru->e[iu].partner) {
                rw.e[rw.len++] = rv->e[iv++];
            } else {
                rw.e[rw.len].partner = ru->e[iu].partner;
                rw.e[rw.len].count = ru->e[iu].count + rv->e[iv].count;
                rw.len++;
                iu++;
                iv++;
            }
        }
        free(ru->e);
        ru->e = NULL;
        ru->len = ru->cap = 0;
        free(rv->e);
        rv->e = NULL;
        rv->len = rv->cap = 0;
        rows[w] = rw;
        free(local[u].e);
        local[u].e = NULL;
        local[u].len = local[u].cap = 0;
        free(local[v].e);
        local[v].e = NULL;
        local[v].len = local[v].cap = 0;
        alive[u] = 0;
        alive[v] = 0;
        alive[w] = 1;
        i64 size_w = size[u] + size[v];
        size[w] = size_w;
        alive_count--;

        out_left[n_merges] = u;
        out_right[n_merges] = v;
        out_goodness[n_merges] = -neg_g;
        out_sizes[n_merges] = size_w;
        n_merges++;

        /* partner updates: x gains w (dead u/v entries stay, skipped
         * lazily); local_w collects (neg, x) then heapifies */
        Heap *hw = &local[w];
        if (rw.len) {
            hw->e = (HeapEnt *)malloc((size_t)rw.len * sizeof(HeapEnt));
            if (!hw->e)
                goto done;
            hw->cap = rw.len;
        }
        for (i64 t = 0; t < rows[w].len; t++) {
            i64 x = rows[w].e[t].partner;
            double c = rows[w].e[t].count;
            if (row_push(&rows[x], w, c) != 0)
                goto done;
            double g = goodness_eval(c, size[x], size_w, ptable, naive);
            double neg = -g;
            if (heap_push(&local[x], neg, w) != 0)
                goto done;
            hw->e[hw->len].neg = neg;
            hw->e[hw->len].partner = x;
            hw->len++;
            if (g > best_token[x] && g > 0.0) {
                if (heap_push(&heap, neg, x) != 0)
                    goto done;
                best_token[x] = g;
                heap_ops++;
            }
        }
        heap_ops += 1 + rows[w].len;
        if (hw->len > 0) {
            heap_heapify(hw);
            double hn = hw->e[0].neg;
            if (hn < 0.0) {
                if (heap_push(&heap, hn, w) != 0)
                    goto done;
                best_token[w] = -hn;
                heap_ops++;
            }
        }
    }
    *heap_ops_out = heap_ops;
    result = n_merges;

done:
    if (rows)
        for (i64 x = 0; x < n_slots; x++)
            free(rows[x].e);
    if (local)
        for (i64 x = 0; x < n_slots; x++)
            free(local[x].e);
    free(heap.e);
    free(size);
    free(alive);
    free(best_token);
    free(rows);
    free(local);
    return result;
}
