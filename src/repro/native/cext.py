"""Build-on-demand C tier for :mod:`repro.native`.

Compiles ``kernels.c`` (shipped next to this module) with the system C
compiler the first time it is needed and binds the kernels through
:mod:`ctypes`.  The shared object is cached under
``$REPRO_NATIVE_CACHE`` (default ``$XDG_CACHE_HOME/repro-native``)
keyed by a hash of the source, the compiler, and the flags, so every
later import is a single ``dlopen``.  The build is atomic (tmp file +
``os.replace``) and safe under concurrent processes.

Any failure -- no compiler, sandboxed cache dir, bad toolchain --
raises out of :func:`load_kernels` and is absorbed by the probe in
:mod:`repro.native`, which simply marks the tier unavailable.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from types import SimpleNamespace
from typing import Any

import numpy as np

_SOURCE = Path(__file__).with_name("kernels.c")

# -O2 keeps IEEE semantics; -ffast-math would break bit-identicality
# with the numpy reference paths and must never appear here.
_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99")

_i64_p = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_i32_p = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_f64_p = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _compiler() -> str:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    raise RuntimeError("no C compiler found")


def _build(source: Path, cc: str) -> Path:
    text = source.read_bytes()
    key = hashlib.sha256(
        b"\x00".join([text, cc.encode(), " ".join(_CFLAGS).encode()])
    ).hexdigest()[:16]
    cache = _cache_dir()
    out = cache / f"kernels-{key}.so"
    if out.exists():
        return out
    cache.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, str(source), "-lm"],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, out)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return out


def _bind(lib: ctypes.CDLL) -> None:
    lib.score_block.restype = ctypes.c_longlong
    lib.score_block.argtypes = [
        _i64_p, _i32_p, _i64_p, _i32_p, _i32_p,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_double, ctypes.c_int64,
        _i32_p, _i32_p, _i64_p, _i32_p, ctypes.c_int64,
    ]
    lib.mirror_neighbors.restype = ctypes.c_longlong
    lib.mirror_neighbors.argtypes = [
        _i64_p, _i32_p, ctypes.c_int64, _i64_p, _i32_p,
    ]
    lib.pair_count_reduce.restype = ctypes.c_longlong
    lib.pair_count_reduce.argtypes = [
        _i64_p, _i32_p, ctypes.c_int64, ctypes.c_int64,
        _i64_p, _i64_p, ctypes.c_int64,
    ]
    lib.assign_block.restype = ctypes.c_longlong
    lib.assign_block.argtypes = [
        _i64_p, _i32_p, _i64_p, ctypes.c_int64,
        _i64_p, _i32_p, _i32_p, _i32_p, _f64_p,
        ctypes.c_int64, ctypes.c_double,
        _i32_p, _i32_p, _i64_p, _i32_p,
        _i64_p, _f64_p,
    ]
    lib.merge_component.restype = ctypes.c_longlong
    lib.merge_component.argtypes = [
        ctypes.c_int64, _i64_p,
        ctypes.c_int64, _i64_p, _i64_p, _f64_p,
        _f64_p, ctypes.c_int64, ctypes.c_int64,
        _i64_p, _i64_p, _f64_p, _i64_p,
        ctypes.POINTER(ctypes.c_int64),
    ]


def _as_i64(a: Any) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _as_i32(a: Any) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int32)


def _as_f64(a: Any) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


class _CextKernels:
    """The uniform kernel interface on top of the bound library."""

    name = "cext"

    def __init__(self, lib: ctypes.CDLL, so_path: Path, cc: str) -> None:
        self._lib = lib
        self.info = {"so": str(so_path), "cc": cc}

    def score_block(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        t_indptr: np.ndarray,
        t_indices: np.ndarray,
        sizes: np.ndarray,
        n: int,
        start: int,
        stop: int,
        theta: float,
        overlap: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        indptr = _as_i64(indptr)
        indices = _as_i32(indices)
        t_indptr = _as_i64(t_indptr)
        t_indices = _as_i32(t_indices)
        sizes = _as_i32(sizes)
        rows = stop - start
        acc = np.zeros(n, dtype=np.int32)
        touched = np.empty(n, dtype=np.int32)
        out_indptr = np.empty(rows + 1, dtype=np.int64)
        # average-degree guess; the kernel reports the exact size when
        # this is short and we retry once
        cap = max(int(indices.size) * max(rows, 1) // max(n, 1) + 64, 256)
        while True:
            out_indices = np.empty(cap, dtype=np.int32)
            written = self._lib.score_block(
                indptr, indices, t_indptr, t_indices, sizes,
                n, start, stop, float(theta), int(overlap),
                acc, touched, out_indptr, out_indices, cap,
            )
            if written >= 0:
                return out_indptr, out_indices[:written]
            cap = -written

    def mirror_neighbors(
        self,
        upper_indptr: np.ndarray,
        upper_indices: np.ndarray,
        n: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        upper_indptr = _as_i64(upper_indptr)
        upper_indices = _as_i32(upper_indices)
        full_indptr = np.empty(n + 1, dtype=np.int64)
        full_indices = np.empty(2 * upper_indices.size, dtype=np.int32)
        total = self._lib.mirror_neighbors(
            upper_indptr, upper_indices, n, full_indptr, full_indices,
        )
        if total < 0:
            raise MemoryError("mirror_neighbors: allocation failed")
        return full_indptr, full_indices

    def pair_count_reduce(
        self,
        list_indptr: np.ndarray,
        list_indices: np.ndarray,
        n: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        list_indptr = _as_i64(list_indptr)
        list_indices = _as_i32(list_indices)
        lens = np.diff(list_indptr)
        total = int((lens * (lens - 1) // 2).sum())
        codes = np.empty(total, dtype=np.int64)
        counts = np.empty(total, dtype=np.int64)
        unique = self._lib.pair_count_reduce(
            list_indptr, list_indices, len(list_indptr) - 1, n,
            codes, counts, total,
        )
        if unique < 0:
            raise MemoryError("pair_count_reduce: allocation failed")
        return codes[:unique].copy(), counts[:unique].copy()

    def assign_block(
        self,
        q_indptr: np.ndarray,
        q_items: np.ndarray,
        q_sizes: np.ndarray,
        inv_indptr: np.ndarray,
        inv_reps: np.ndarray,
        rep_sizes: np.ndarray,
        rep_cluster: np.ndarray,
        normalisers: np.ndarray,
        n_clusters: int,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        q_indptr = _as_i64(q_indptr)
        q_items = _as_i32(q_items)
        q_sizes = _as_i64(q_sizes)
        inv_indptr = _as_i64(inv_indptr)
        inv_reps = _as_i32(inv_reps)
        rep_sizes = _as_i32(rep_sizes)
        rep_cluster = _as_i32(rep_cluster)
        normalisers = _as_f64(normalisers)
        b = int(q_indptr.size) - 1
        n_reps = int(rep_sizes.size)
        acc = np.zeros(max(n_reps, 1), dtype=np.int32)
        # one spare slot: the kernel's branchless first-touch write
        # targets touched[n_touched] even for repeat touches
        touched = np.empty(n_reps + 1, dtype=np.int32)
        ccounts = np.zeros(max(int(n_clusters), 1), dtype=np.int64)
        ctouched = np.empty(max(int(n_clusters), 1), dtype=np.int32)
        out_labels = np.empty(max(b, 1), dtype=np.int64)
        out_best = np.empty(max(b, 1), dtype=np.float64)
        self._lib.assign_block(
            q_indptr, q_items, q_sizes, b,
            inv_indptr, inv_reps, rep_sizes, rep_cluster, normalisers,
            int(n_clusters), float(theta),
            acc, touched, ccounts, ctouched,
            out_labels, out_best,
        )
        return out_labels[:b], out_best[:b]

    def merge_component(
        self,
        sizes: np.ndarray,
        pair_lo: np.ndarray,
        pair_hi: np.ndarray,
        pair_count: np.ndarray,
        ptable: np.ndarray,
        naive: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        sizes = _as_i64(sizes)
        pair_lo = _as_i64(pair_lo)
        pair_hi = _as_i64(pair_hi)
        pair_count = _as_f64(pair_count)
        ptable = _as_f64(ptable)
        s = int(sizes.size)
        cap = max(s - 1, 1)
        out_left = np.empty(cap, dtype=np.int64)
        out_right = np.empty(cap, dtype=np.int64)
        out_goodness = np.empty(cap, dtype=np.float64)
        out_sizes = np.empty(cap, dtype=np.int64)
        heap_ops = ctypes.c_int64(0)
        n_merges = self._lib.merge_component(
            s, sizes, int(pair_lo.size), pair_lo, pair_hi, pair_count,
            ptable, int(ptable.size), int(naive),
            out_left, out_right, out_goodness, out_sizes,
            ctypes.byref(heap_ops),
        )
        if n_merges < 0:
            raise MemoryError("merge_component: allocation failed")
        return (
            out_left[:n_merges].copy(),
            out_right[:n_merges].copy(),
            out_goodness[:n_merges].copy(),
            out_sizes[:n_merges].copy(),
            int(heap_ops.value),
        )


def load_kernels() -> Any:
    """Compile (or reuse) the shared object and bind the kernels.

    Raises on any failure; the caller (:func:`repro.native.get_kernels`)
    treats that as "tier unavailable".
    """
    if sys.platform == "win32":  # ctypes build path is POSIX-only
        raise RuntimeError("cext tier not supported on Windows")
    cc = _compiler()
    so_path = _build(_SOURCE, cc)
    lib = ctypes.CDLL(str(so_path))
    _bind(lib)
    return _CextKernels(lib, so_path, cc)


def kernels_namespace(**kwargs: Any) -> SimpleNamespace:  # pragma: no cover
    return SimpleNamespace(**kwargs)
