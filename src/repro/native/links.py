"""The native fused neighbor+link pass (``fit_mode="native"``).

Same shape as :func:`repro.parallel.links.fused_neighbor_links` -- row
blocks fanned across :mod:`repro.parallel.pool` workers, one
:class:`~repro.core.links.LinkTable` at the end -- but each block is
scored by a native kernel instead of the scipy sparse product, and the
Figure 4 pair counting runs as a single native reduction in the parent
instead of the Python ``pair_link_counts`` loop.  Similarity is
symmetric, so the block kernel scores only the upper triangle
(``j > row``, half the accumulate work of the reference product); a
linear-time mirror pass rebuilds the full ascending neighbor lists the
pair counter and degree accounting consume.  Bit-identical by
construction: intersections are the same integer counts (each shared
item contributes exactly +1, whichever triangle it is counted in), the
survivor test is the same exact float64 ``inter / denom >= theta``
division the sparse scorer performs, and pair counting is pure integer
arithmetic either way.

Only the configurations the kernel understands are supported --
transaction-shaped points (or categorical records encoded to
transactions) under builtin Jaccard/overlap similarity with
``theta > 0``.  :func:`native_fit_supported` reports the reason a
configuration is not, so callers can warn once and fall back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.links import LinkTable
from repro.core.neighbors import NeighborGraph
from repro.core.similarity import (
    JaccardSimilarity,
    OverlapSimilarity,
    SimilarityFunction,
)
from repro.obs.registry import MetricsRegistry
from repro.parallel.links import FusedFitResult
from repro.parallel.neighbors import block_tasks, worker_block_size
from repro.parallel.pool import imap_chunked, resolve_workers

__all__ = [
    "TransactionCSR",
    "native_fit_supported",
    "native_neighbor_links",
    "native_transaction_csr",
]


@dataclass
class TransactionCSR:
    """Picklable CSR encoding of a transaction dataset.

    ``indptr``/``indices`` map each transaction to its sorted item
    codes; ``t_indptr``/``t_indices`` are the transpose (item -> the
    ascending transactions containing it), which is what lets the
    kernel accumulate row intersections by walking only the
    transactions that share an item.  Ids are int32 (the kernels
    require ``n < 2**31``; pair codes upstream bound ``n`` far below
    that anyway), halving the bandwidth of the randomly-accessed hot
    arrays; the indptrs stay int64 so totals never overflow.
    """

    indptr: np.ndarray
    indices: np.ndarray
    t_indptr: np.ndarray
    t_indices: np.ndarray
    sizes: np.ndarray
    n: int
    n_items: int
    overlap: int  # 0 = jaccard, 1 = overlap similarity


def _as_transactions(points: Any) -> Any | None:
    """Coerce supported point containers to a TransactionDataset."""
    from repro.data.records import CategoricalDataset
    from repro.data.transactions import Transaction, TransactionDataset

    if isinstance(points, TransactionDataset):
        return points
    if isinstance(points, CategoricalDataset):
        from repro.core.encoding import dataset_to_transactions

        return dataset_to_transactions(points)
    try:
        pts = list(points)
    except TypeError:
        return None
    if pts and isinstance(pts[0], (Transaction, frozenset, set)):
        return TransactionDataset(pts)
    return None


def native_transaction_csr(
    points: Any, similarity: SimilarityFunction | None = None
) -> TransactionCSR | None:
    """Encode points for the native kernel, or ``None`` if unsupported.

    Supported: transaction datasets / sequences of set-like points
    under Jaccard or overlap similarity, and categorical datasets under
    Jaccard (encoded via ``A.v`` items exactly like the blocked
    scorers, so the similarity values match).
    """
    from repro.data.records import CategoricalDataset

    if similarity is None:
        similarity = JaccardSimilarity()
    if isinstance(points, CategoricalDataset):
        if not isinstance(similarity, JaccardSimilarity):
            return None
    elif not isinstance(similarity, (JaccardSimilarity, OverlapSimilarity)):
        return None
    dataset = _as_transactions(points)
    if dataset is None:
        return None
    n = len(dataset)
    if n >= 2**31 or dataset.n_items >= 2**31:
        return None
    n_items = dataset.n_items
    item_index = dataset.item_index
    flat: list[int] = []
    lens: list[int] = []
    for txn in dataset:
        items = txn.items
        lens.append(len(items))
        flat.extend(item_index(item) for item in items)
    sizes = np.asarray(lens, dtype=np.int32)
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(sizes, dtype=np.int64)
    # sort item codes within each row with one global stable argsort of
    # the combined (row, code) key instead of n tiny per-row sorts
    codes = np.asarray(flat, dtype=np.int64)
    if codes.size:
        row_ids64 = np.repeat(np.arange(n, dtype=np.int64), sizes)
        order = np.argsort(row_ids64 * n_items + codes, kind="stable")
        indices = codes[order].astype(np.int32)
    else:
        indices = np.empty(0, dtype=np.int32)
    # transpose: stable sort of (item, transaction) pairs by item --
    # stability keeps each item's transaction list ascending because
    # the rows were emitted in transaction order
    t_counts = np.bincount(indices, minlength=n_items).astype(np.int64)
    t_indptr = np.zeros(n_items + 1, dtype=np.int64)
    np.cumsum(t_counts, out=t_indptr[1:])
    row_ids = np.repeat(np.arange(n, dtype=np.int32), sizes)
    t_indices = row_ids[np.argsort(indices, kind="stable")]
    overlap = int(isinstance(similarity, OverlapSimilarity))
    return TransactionCSR(
        indptr=indptr,
        indices=indices,
        t_indptr=t_indptr,
        t_indices=t_indices,
        sizes=sizes,
        n=n,
        n_items=n_items,
        overlap=overlap,
    )


def native_fit_supported(
    points: Any,
    theta: float,
    similarity: SimilarityFunction | None = None,
) -> tuple[bool, str | None]:
    """Whether the native fused pass can run; ``(ok, reason_if_not)``."""
    from repro.native import native_available

    if not native_available():
        return False, "no native backend available"
    if theta <= 0.0:
        return False, "theta <= 0 links every pair (python path handles it)"
    from repro.data.records import CategoricalDataset

    if similarity is not None and not isinstance(
        similarity, (JaccardSimilarity, OverlapSimilarity)
    ):
        return False, f"similarity {type(similarity).__name__} not native-supported"
    if isinstance(points, CategoricalDataset) and isinstance(
        similarity, OverlapSimilarity
    ):
        return False, "overlap similarity over categorical records unsupported"
    if _as_transactions(points) is None:
        return False, "points are not transaction-shaped"
    return True, None


# -- worker side --------------------------------------------------------------

_NATIVE_STATE: dict[str, Any] = {}


def _init_native_worker(
    csr: TransactionCSR, theta: float, backend: str | None
) -> None:
    from repro.native import get_kernels

    _NATIVE_STATE["csr"] = csr
    _NATIVE_STATE["theta"] = theta
    # On fork-start platforms the parent's probed kernels (and loaded
    # shared object) are inherited; on spawn this re-probes in the
    # child.  The parent probes before fan-out either way, so the cache
    # is warm and the probe cannot flip to a different tier mid-fit.
    _NATIVE_STATE["kernels"] = get_kernels(backend)


def _native_block(
    task: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
    """Upper-triangle neighbor lists for one row block."""
    start, stop = task
    csr: TransactionCSR = _NATIVE_STATE["csr"]
    kernels = _NATIVE_STATE["kernels"]
    t0 = time.perf_counter()
    upper_indptr, upper_indices = kernels.score_block(
        csr.indptr,
        csr.indices,
        csr.t_indptr,
        csr.t_indices,
        csr.sizes,
        csr.n,
        start,
        stop,
        _NATIVE_STATE["theta"],
        csr.overlap,
    )
    local = MetricsRegistry()
    local.inc("fit.native.blocks")
    local.inc("fit.native.rows", stop - start)
    local.observe("fit.native.block_seconds", time.perf_counter() - t0)
    return upper_indptr, upper_indices, local.snapshot()


def native_neighbor_links(
    points: Any,
    theta: float,
    similarity: SimilarityFunction | None = None,
    workers: int | str | None = "auto",
    block_size: int | None = None,
    memory_budget: int | None = None,
    keep_graph: bool = False,
    registry: MetricsRegistry | None = None,
) -> FusedFitResult:
    """The fused fit pass with native block kernels.

    Raises ``ValueError`` for unsupported configurations -- callers are
    expected to consult :func:`native_fit_supported` first and fall
    back to :func:`repro.parallel.links.fused_neighbor_links`.
    """
    from repro.native import available_backend, get_kernels

    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be positive")
    ok, reason = native_fit_supported(points, theta, similarity)
    if not ok:
        raise ValueError(f"native fit unsupported: {reason}")
    # probe (and for the C tier, compile + dlopen) in the parent before
    # fan-out: forked workers inherit the loaded library, spawned ones
    # hit a warm on-disk cache
    backend = available_backend()
    get_kernels(backend)
    csr = native_transaction_csr(points, similarity)
    assert csr is not None  # native_fit_supported vouched for this
    count = resolve_workers(workers)
    n = csr.n
    if block_size is None:
        block_size = worker_block_size(n, count, memory_budget)

    # workers emit per-block upper-triangle lists in task order; stitch
    # them into one global upper CSR by offsetting each block's indptr
    upper_len_blocks: list[np.ndarray] = []
    upper_index_blocks: list[np.ndarray] = []
    for upper_indptr, upper_indices, delta in imap_chunked(
        _native_block,
        block_tasks(n, block_size),
        workers=count,
        initializer=_init_native_worker,
        initargs=(csr, theta, backend),
    ):
        if registry is not None:
            registry.merge(delta)
        upper_len_blocks.append(np.diff(upper_indptr))
        upper_index_blocks.append(upper_indices)

    upper_indptr = np.zeros(n + 1, dtype=np.int64)
    if upper_len_blocks:
        np.cumsum(np.concatenate(upper_len_blocks), out=upper_indptr[1:])
    upper_indices = (
        np.concatenate(upper_index_blocks)
        if upper_index_blocks
        else np.empty(0, dtype=np.int32)
    )

    kernels = get_kernels(backend)
    full_indptr, full_indices = kernels.mirror_neighbors(
        upper_indptr, upper_indices, n
    )
    degrees = np.diff(full_indptr)
    codes, counts = kernels.pair_count_reduce(full_indptr, full_indices, n)
    if registry is not None:
        registry.inc("fit.native.pair_increments", int(counts.sum()))
    links = LinkTable.from_pair_counts(n, codes, counts)
    graph = None
    if keep_graph:
        kept_rows = [
            full_indices[full_indptr[i] : full_indptr[i + 1]].astype(np.int64)
            for i in range(n)
        ]
        graph = NeighborGraph.from_neighbor_lists(
            kept_rows, theta=theta, validate=False
        )
    return FusedFitResult(links=links, degrees=degrees, theta=theta, graph=graph)
