"""Native-speed kernels for the two remaining fit hot loops.

``repro.native`` provides drop-in native implementations of

* the fused neighbor+link block kernel (score a row block of the
  transaction similarity matrix, threshold it, and reduce the
  surviving neighbor lists straight to packed Figure 4 pair counts),
  replacing the scipy-product + ``pair_link_counts`` Python loop of
  :mod:`repro.parallel.links`; and
* the component merge inner loop (the lazy-heap agglomeration of
  :func:`repro.core.merge.component_merge_stream`) on flat typed
  arrays with binary heaps instead of ``heapq`` tuples; and
* the serving assignment hot loop (``assign_block``): candidate
  gather over the :class:`repro.serve.index.AssignmentIndex` inverted
  index, Jaccard threshold test and best-cluster argmax fused into
  one pass per query point.

All are selected through the existing switches -- ``fit_mode="native"``,
``merge_method="native"`` and ``assign_backend="native"`` -- and all
are **bit-identical** to the reference paths: same survivor sets, same
merge history with bitwise equal goodness floats, same ``heap_ops``
accounting, same assignment labels and scores
(property-tested in ``tests/test_native_kernels.py``).

Two backend tiers implement the same kernel interface:

``numba``
    ``@njit`` kernels (:mod:`repro.native.numba_backend`), used when
    numba is importable (``pip install repro[native]``).
``cext``
    A small C file (``kernels.c``) compiled on demand with the system
    C compiler and bound through :mod:`ctypes`
    (:mod:`repro.native.cext`).  No build-time dependency: the shared
    object is built once into a user cache directory keyed by the
    source hash, so steady-state runs pay nothing.

Backend selection (:func:`available_backend`) prefers numba, falls
back to the C extension, and degrades to ``None`` -- callers then run
the existing pure-Python/numpy paths -- when neither tier works.  A
probe *runs* every kernel on a tiny smoke problem before a tier is
declared available, so a broken toolchain can never take down a fit.

Environment overrides:

``REPRO_NATIVE=0`` (or ``off``/``false``/``no``)
    Disable native kernels entirely (forced ``native`` modes then fall
    back with a warning; ``auto`` stays silent).
``REPRO_NATIVE=1`` (or ``on``/``true``/``yes``)
    Let the ``auto`` resolvers promote to native even on the C tier.
    By default ``auto`` only promotes when *numba* imports -- a plain
    checkout without the ``[native]`` extra keeps running the existing
    paths -- while forced ``fit_mode="native"`` / ``merge_method=
    "native"`` use whichever tier is available.
``REPRO_NATIVE_BACKEND=numba|cext``
    Restrict the probe to one tier.
``REPRO_NATIVE_CACHE=<dir>``
    Where the C tier caches compiled shared objects
    (default ``$XDG_CACHE_HOME/repro-native``).
"""

from __future__ import annotations

import os
from typing import Any

__all__ = [
    "available_backend",
    "auto_native",
    "backend_info",
    "get_kernels",
    "native_available",
]

_BACKEND_NAMES = ("numba", "cext")

# probe results, cached per tier: missing = not yet probed,
# None = probed and unusable, object = the kernel namespace
_KERNELS: dict[str, Any | None] = {}


def _env_flag(name: str) -> str | None:
    value = os.environ.get(name)
    if value is None:
        return None
    return value.strip().lower()


def _disabled() -> bool:
    return _env_flag("REPRO_NATIVE") in ("0", "off", "false", "no")


def _forced_backend() -> str | None:
    value = _env_flag("REPRO_NATIVE_BACKEND")
    return value if value in _BACKEND_NAMES else None


def _smoke_test(kernels: Any) -> None:
    """Run every kernel on a tiny problem; raises when the tier is broken.

    This is what makes the probe trustworthy: a tier is advertised only
    after it has actually compiled and produced sane output, so JIT or
    toolchain failures degrade to the Python paths instead of erroring
    mid-fit.
    """
    import numpy as np

    # two transactions sharing 2 of 3 items: jaccard 0.5.  score_block
    # emits only the upper triangle (row 0 -> [1], row 1 -> []);
    # mirror_neighbors rebuilds the full symmetric lists.
    indptr = np.array([0, 3, 6], dtype=np.int64)
    indices = np.array([0, 1, 2, 1, 2, 3], dtype=np.int32)
    t_indptr = np.array([0, 1, 3, 5, 6], dtype=np.int64)
    t_indices = np.array([0, 0, 1, 0, 1, 1], dtype=np.int32)
    sizes = np.array([3, 3], dtype=np.int32)
    upper_indptr, upper_indices = kernels.score_block(
        indptr, indices, t_indptr, t_indices, sizes, 2, 0, 2, 0.5, 0
    )
    if upper_indptr.tolist() != [0, 1, 1] or upper_indices.tolist() != [1]:
        raise RuntimeError("score_block smoke test mismatch")
    full_indptr, full_indices = kernels.mirror_neighbors(
        upper_indptr, upper_indices, 2
    )
    if full_indptr.tolist() != [0, 1, 2] or full_indices.tolist() != [1, 0]:
        raise RuntimeError("mirror_neighbors smoke test mismatch")
    codes, counts = kernels.pair_count_reduce(
        np.array([0, 3], dtype=np.int64),
        np.array([0, 1, 2], dtype=np.int32),
        4,
    )
    if codes.tolist() != [1, 2, 6] or counts.tolist() != [1, 1, 1]:
        raise RuntimeError("pair_count_reduce smoke test mismatch")
    # one pair of singletons, naive goodness: a single merge of count 2
    left, right, goodness, out_sizes, heap_ops = kernels.merge_component(
        np.array([1, 1], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([2.0], dtype=np.float64),
        np.zeros(1, dtype=np.float64),
        1,
    )
    if (
        left.tolist() != [0]
        or right.tolist() != [1]
        or goodness.tolist() != [2.0]
        or out_sizes.tolist() != [2]
    ):
        raise RuntimeError("merge_component smoke test mismatch")
    # two representatives {0,1} (cluster 0) and {1,2} (cluster 1) at
    # theta 0.5: point {0,1} matches rep 0 exactly, the empty point is
    # an outlier, point {2} half-overlaps rep 1
    labels, best = kernels.assign_block(
        np.array([0, 2, 2, 3], dtype=np.int64),   # q_indptr
        np.array([0, 1, 2], dtype=np.int32),      # q_items
        np.array([2, 0, 1], dtype=np.int64),      # q_sizes
        np.array([0, 1, 3, 4], dtype=np.int64),   # inv_indptr
        np.array([0, 0, 1, 1], dtype=np.int32),   # inv_reps
        np.array([2, 2], dtype=np.int32),         # rep_sizes
        np.array([0, 1], dtype=np.int32),         # rep_cluster
        np.array([1.0, 1.0], dtype=np.float64),   # normalisers
        2,
        0.5,
    )
    if labels.tolist() != [0, -1, 1] or best.tolist() != [1.0, 0.0, 1.0]:
        raise RuntimeError("assign_block smoke test mismatch")


def _probe(name: str) -> Any | None:
    if name in _KERNELS:
        return _KERNELS[name]
    kernels: Any | None = None
    try:
        if name == "numba":
            from repro.native import numba_backend

            kernels = numba_backend.load_kernels()
        else:
            from repro.native import cext

            kernels = cext.load_kernels()
        if kernels is not None:
            _smoke_test(kernels)
    except Exception:
        kernels = None
    _KERNELS[name] = kernels
    return kernels


def get_kernels(name: str | None = None) -> Any | None:
    """The kernel namespace of a working backend, or ``None``.

    With ``name=None`` the tiers are probed in preference order
    (numba, then the C extension) honouring the environment overrides;
    a specific ``name`` probes only that tier (the test suite uses this
    to exercise every available backend).
    """
    if _disabled():
        return None
    if name is not None:
        if name not in _BACKEND_NAMES:
            raise ValueError(f"unknown native backend {name!r}")
        return _probe(name)
    forced = _forced_backend()
    order = (forced,) if forced else _BACKEND_NAMES
    for candidate in order:
        kernels = _probe(candidate)
        if kernels is not None:
            return kernels
    return None


def available_backend() -> str | None:
    """Name of the backend :func:`get_kernels` would return, or ``None``."""
    kernels = get_kernels()
    return None if kernels is None else kernels.name


def native_available() -> bool:
    """Whether a forced ``native`` mode has a backend to run on."""
    return get_kernels() is not None


def auto_native() -> bool:
    """Whether the ``auto`` resolvers should promote to native kernels.

    True when a backend is available *and* either numba itself imports
    (the ``[native]`` extra is installed) or ``REPRO_NATIVE`` opts in
    explicitly.  A checkout without the extra therefore keeps its
    ``auto`` behaviour byte-for-byte unless the user asks -- forced
    ``native`` modes still use the C tier.
    """
    if _disabled():
        return False
    if _env_flag("REPRO_NATIVE") in ("1", "on", "true", "yes"):
        return native_available()
    kernels = get_kernels()
    return kernels is not None and kernels.name == "numba"


def backend_info() -> dict[str, Any]:
    """Probe state for benches and manifests (never raises)."""
    if _disabled():
        return {"backend": None, "disabled": True}
    kernels = get_kernels()
    info: dict[str, Any] = {
        "backend": None if kernels is None else kernels.name,
        "disabled": False,
        "auto": auto_native(),
    }
    if kernels is not None:
        detail = getattr(kernels, "info", None)
        if detail:
            info.update(detail)
    return info


def _reset_for_tests() -> None:
    """Forget probe results (the fallback tests flip env vars)."""
    _KERNELS.clear()
