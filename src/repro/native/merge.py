"""Native component agglomeration (``merge_method="native"``).

Replaces the per-component Python inner loop
(:func:`repro.core.merge.component_merge_stream`) with one backend
kernel call per component: the whole lazy-heap agglomeration runs on
flat typed arrays and returns the finished
:class:`~repro.core.merge.MergeStream`, which the unchanged
``_replay_streams`` consumes.  Bit-identicality carries over because
the kernel mirrors the Python loop statement for statement -- the same
``(-goodness, partner)`` tuple order, the same power-table goodness
arithmetic (the table itself is computed Python-side by the exact
scalar ``pow`` of :class:`~repro.core.goodness.PowerTable` and handed
to the kernel), and the same ``heap_ops`` accounting.

Only the built-in goodness measures are supported; custom callables
stay on the Python engines (``resolve_merge_method`` never routes them
here).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.merge import ComponentProblem, MergeStream

__all__ = ["native_component_streams", "native_merge_supported"]

_DUMMY_TABLE = np.zeros(1, dtype=np.float64)


def native_merge_supported(kernel: Any) -> bool:
    """Whether this goodness kernel has a native merge implementation."""
    return kernel is not None and getattr(kernel, "name", None) in (
        "normalized",
        "naive",
    )


def native_component_streams(
    problems: list[ComponentProblem],
    kernel: Any,
    backend: Any,
    registry: Any | None = None,
) -> list[MergeStream]:
    """Agglomerate every component with the native backend.

    Streams come back in ``problems`` order, exactly like the serial
    and pool-parallel Python paths, so ``_replay_streams`` sees the
    same input regardless of engine.
    """
    naive = 1 if kernel.name == "naive" else 0
    streams: list[MergeStream] = []
    for problem in problems:
        if naive:
            ptable = _DUMMY_TABLE
        else:
            # same coverage as kernel.bind(sizes.sum()) on the Python
            # path: every reachable lo+hi index is within 2 * sum
            ptable = kernel.table.ensure(2 * int(problem.sizes.sum())).array()
        left, right, goodness, sizes_out, heap_ops = backend.merge_component(
            problem.sizes,
            problem.pair_lo,
            problem.pair_hi,
            problem.pair_count,
            ptable,
            naive,
        )
        streams.append(
            MergeStream(
                left=left,
                right=right,
                goodness=goodness,
                sizes=sizes_out,
                heap_ops=int(heap_ops),
            )
        )
    if registry is not None:
        registry.inc(
            "fit.cluster.heap_ops", sum(s.heap_ops for s in streams)
        )
    return streams
