"""Connected-component clustering of the neighbor graph (QROCK fast path).

A structural property of ROCK (exploited by the follow-on QROCK
algorithm, Dutta et al. 2005): links are positive only between points
of one connected component of the neighbor graph, so however far the
merge loop runs, ROCK's partition *refines* the component partition --
components are the coarsest clustering links can ever reach, computable
in O(edges) with a union-find, no links, heaps, or goodness needed.

The refinement is an equality whenever every neighbor edge closes a
triangle (then every edge carries at least one link, so adjacent
clusters always have positive cross links and a k=1 run merges each
component completely).  Sparse structures break equality: in a 3-point
path a-b-c, ROCK merges {a, c} (one link through b) and then stops,
because the pairs (a, b) and (c, b) are neighbors with *zero* common
neighbors.  Both the refinement and the triangle-condition equality are
property-tested against the full merge loop (``tests/test_components.py``).

Use this fast path when theta is the only parameter you trust and k is
unknown; use the full ROCK loop when you need a specific k, goodness
ordering, or outlier weeding.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.neighbors import NeighborGraph, compute_neighbor_graph
from repro.core.similarity import SimilarityFunction


class UnionFind:
    """Disjoint-set forest with union by size and path halving."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n
        self.n_components = n

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Join the sets of ``a`` and ``b``; True when they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        return self._size[self.find(x)]

    def components(self) -> list[list[int]]:
        """All components as sorted member lists, largest first."""
        groups: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            groups.setdefault(self.find(x), []).append(x)
        out = [sorted(members) for members in groups.values()]
        out.sort(key=lambda c: (-len(c), c[0]))
        return out


def connected_components(graph: NeighborGraph) -> list[list[int]]:
    """Connected components of a neighbor graph, largest first."""
    uf = UnionFind(graph.n)
    if graph.has_dense:
        # nonzero + mask instead of np.triu: triu materialises a second
        # n x n matrix just to drop the lower half
        rows, cols = np.nonzero(graph.adjacency)
        upper = rows < cols
        for a, b in zip(rows[upper].tolist(), cols[upper].tolist()):
            uf.union(a, b)
    else:
        # sparse-backed graph (blocked path): walk the neighbor lists
        for a, neighbors in enumerate(graph.neighbor_lists()):
            for b in neighbors.tolist():
                if a < b:
                    uf.union(a, b)
    return uf.components()


def qrock(
    points: Any,
    theta: float,
    similarity: SimilarityFunction | None = None,
    min_cluster_size: int = 1,
    neighbor_method: str = "auto",
) -> tuple[list[list[int]], list[int]]:
    """QROCK: clusters = components of the neighbor graph at ``theta``.

    The coarsest clustering a ROCK run at this theta can reach (equal
    to a k=1 ROCK run whenever every neighbor edge closes a triangle;
    see the module docstring).  Returns ``(clusters, outliers)`` where
    clusters smaller than ``min_cluster_size`` are diverted to the
    outlier list.
    """
    if min_cluster_size < 1:
        raise ValueError("min_cluster_size must be at least 1")
    graph = compute_neighbor_graph(
        points, theta, similarity=similarity, method=neighbor_method
    )
    components = connected_components(graph)
    clusters = [c for c in components if len(c) >= min_cluster_size]
    outliers = sorted(p for c in components if len(c) < min_cluster_size for p in c)
    return clusters, outliers
