"""Addressable max-heap (substrate for Section 4.3's local/global heaps).

Figure 3 of the paper maintains, for every cluster ``i``, a local heap
``q[i]`` ordered by goodness, plus a global heap ``Q`` of clusters
ordered by their best goodness.  Merging clusters requires *deleting*
and *re-keying* arbitrary entries -- operations the standard-library
``heapq`` does not support -- so this module implements a binary heap
with a position map giving O(log n) insert, delete, and update-key, and
O(1) peek/membership.

Ordering is deterministic: ties on the key are broken by the entry's
insertion sequence number, so algorithm runs are reproducible.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterator
from typing import Any


class AddressableMaxHeap:
    """A max-heap of unique hashable entries with float keys.

    Entries with larger keys surface first; equal keys surface in
    insertion order (FIFO among ties).
    """

    def __init__(self) -> None:
        # parallel arrays: _entries[i], _keys[i], _seq[i]
        self._entries: list[Hashable] = []
        self._keys: list[float] = []
        self._seq: list[int] = []
        self._pos: dict[Hashable, int] = {}
        self._counter = 0

    @classmethod
    def from_pairs(cls, pairs: "list[tuple[Hashable, float]]") -> "AddressableMaxHeap":
        """Bulk-build in O(n) by heapify.

        Tie-breaking sequence numbers follow the order of ``pairs``, so
        the observable peek/pop behaviour is identical to inserting the
        pairs one at a time.
        """
        heap = cls()
        entries = heap._entries
        keys = heap._keys
        pos = heap._pos
        for entry, key in pairs:
            if entry in pos:
                raise KeyError(f"duplicate entry {entry!r}")
            if isinstance(key, float) and math.isnan(key):
                raise ValueError("heap keys must not be NaN")
            pos[entry] = len(entries)
            entries.append(entry)
            keys.append(float(key))
        heap._seq = list(range(len(entries)))
        heap._counter = len(entries)
        for index in range(len(entries) // 2 - 1, -1, -1):
            heap._sift_down(index)
        return heap

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, entry: Hashable) -> bool:
        return entry in self._pos

    def __iter__(self) -> Iterator[Hashable]:
        """Entries in arbitrary (heap) order."""
        return iter(list(self._entries))

    def key_of(self, entry: Hashable) -> float:
        """The current key of an entry; KeyError when absent."""
        return self._keys[self._pos[entry]]

    # -- mutation ------------------------------------------------------------
    def insert(self, entry: Hashable, key: float) -> None:
        """Insert a new entry.  Raises on duplicates and NaN keys."""
        if entry in self._pos:
            raise KeyError(f"entry {entry!r} already in heap; use update()")
        if isinstance(key, float) and math.isnan(key):
            raise ValueError("heap keys must not be NaN")
        index = len(self._entries)
        self._entries.append(entry)
        self._keys.append(float(key))
        self._seq.append(self._counter)
        self._counter += 1
        self._pos[entry] = index
        self._sift_up(index)

    def update(self, entry: Hashable, key: float) -> None:
        """Change the key of an existing entry (any direction)."""
        if isinstance(key, float) and math.isnan(key):
            raise ValueError("heap keys must not be NaN")
        index = self._pos[entry]
        old = self._keys[index]
        self._keys[index] = float(key)
        if key > old:
            self._sift_up(index)
        elif key < old:
            self._sift_down(index)

    def insert_or_update(self, entry: Hashable, key: float) -> None:
        if entry in self._pos:
            self.update(entry, key)
        else:
            self.insert(entry, key)

    def delete(self, entry: Hashable) -> None:
        """Remove an arbitrary entry; KeyError when absent."""
        index = self._pos.pop(entry)
        last = len(self._entries) - 1
        if index != last:
            self._entries[index] = self._entries[last]
            self._keys[index] = self._keys[last]
            self._seq[index] = self._seq[last]
            self._pos[self._entries[index]] = index
        self._entries.pop()
        self._keys.pop()
        self._seq.pop()
        if index <= last - 1:
            # the moved element may need to go either way
            self._sift_up(index)
            self._sift_down(index)

    def peek(self) -> tuple[Hashable, float]:
        """The (entry, key) with the maximum key, without removal."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        return self._entries[0], self._keys[0]

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return the maximum (entry, key) -- ``extract_max``."""
        entry, key = self.peek()
        self.delete(entry)
        return entry, key

    # -- internals -----------------------------------------------------------
    def _precedes(self, i: int, j: int) -> bool:
        """Does slot i beat slot j (larger key, then earlier insertion)?"""
        if self._keys[i] != self._keys[j]:
            return self._keys[i] > self._keys[j]
        return self._seq[i] < self._seq[j]

    def _swap(self, i: int, j: int) -> None:
        self._entries[i], self._entries[j] = self._entries[j], self._entries[i]
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._seq[i], self._seq[j] = self._seq[j], self._seq[i]
        self._pos[self._entries[i]] = i
        self._pos[self._entries[j]] = j

    def _sift_up(self, index: int) -> None:
        # hot path: comparisons and swaps are inlined
        entries, keys, seq, pos = self._entries, self._keys, self._seq, self._pos
        while index > 0:
            parent = (index - 1) // 2
            ki, kp = keys[index], keys[parent]
            if ki > kp or (ki == kp and seq[index] < seq[parent]):
                entries[index], entries[parent] = entries[parent], entries[index]
                keys[index], keys[parent] = kp, ki
                seq[index], seq[parent] = seq[parent], seq[index]
                pos[entries[index]] = index
                pos[entries[parent]] = parent
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        entries, keys, seq, pos = self._entries, self._keys, self._seq, self._pos
        size = len(entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            best = index
            kb, sb = keys[best], seq[best]
            if left < size:
                kl, sl = keys[left], seq[left]
                if kl > kb or (kl == kb and sl < sb):
                    best, kb, sb = left, kl, sl
            if right < size:
                kr, sr = keys[right], seq[right]
                if kr > kb or (kr == kb and sr < sb):
                    best = right
            if best == index:
                break
            entries[index], entries[best] = entries[best], entries[index]
            keys[index], keys[best] = keys[best], keys[index]
            seq[index], seq[best] = seq[best], seq[index]
            pos[entries[index]] = index
            pos[entries[best]] = best
            index = best

    def check_invariant(self) -> None:
        """Assert the heap property and position-map consistency (tests)."""
        for i in range(1, len(self._entries)):
            parent = (i - 1) // 2
            assert not self._precedes(i, parent), f"heap violated at {i}"
        assert len(self._pos) == len(self._entries)
        for entry, index in self._pos.items():
            assert self._entries[index] == entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressableMaxHeap(size={len(self)})"


def build_heap(pairs: "list[tuple[Any, float]]") -> AddressableMaxHeap:
    """Build a heap from (entry, key) pairs.

    The paper notes heaps build in linear time ([CLR90]); n inserts are
    O(n log n) but the difference is irrelevant at our scales, so this
    convenience keeps the simpler implementation.
    """
    heap = AddressableMaxHeap()
    for entry, key in pairs:
        heap.insert(entry, key)
    return heap
